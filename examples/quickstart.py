#!/usr/bin/env python3
"""Quickstart: run SRLB against a small cluster and compare it with RR.

This is the smallest end-to-end use of the library's public API:

1. describe the testbed (here: 6 servers with 16 Apache workers each),
2. pick the load-balancing configurations to compare,
3. replay the same Poisson workload under each configuration,
4. print response-time statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments import (
    TestbedConfig,
    analytic_saturation_rate,
    rr_policy,
    run_poisson_once,
    sr_policy,
    srdyn_policy,
)
from repro.metrics import format_table


def main() -> None:
    # A small cluster: 6 servers, 2 cores and 16 workers each.
    testbed = TestbedConfig(num_servers=6, workers_per_server=16, cores_per_server=2)

    # The cluster's saturation rate λ₀ for the 100 ms CPU-bound workload,
    # used to express load as the paper's normalized request rate ρ.
    saturation = analytic_saturation_rate(testbed, service_mean=0.1)
    print(f"analytic saturation rate λ₀ ≈ {saturation:.0f} queries/s")

    load_factor = 0.85
    num_queries = 4_000
    policies = [rr_policy(), sr_policy(4), srdyn_policy()]

    rows = []
    for spec in policies:
        result = run_poisson_once(
            testbed,
            spec,
            load_factor=load_factor,
            num_queries=num_queries,
            service_mean=0.1,
        )
        summary = result.summary
        rows.append(
            [
                spec.name,
                summary.mean,
                summary.median,
                summary.p90,
                result.connections_reset,
            ]
        )

    print()
    print(
        format_table(
            ["policy", "mean (s)", "median (s)", "p90 (s)", "resets"],
            rows,
            title=(
                f"Poisson workload, ρ = {load_factor}, {num_queries} queries, "
                f"{testbed.num_servers} servers"
            ),
        )
    )

    rr_mean = rows[0][1]
    sr4_mean = rows[1][1]
    print(
        f"\nSR4 mean response time is {rr_mean / sr4_mean:.2f}x better than RR "
        f"at ρ = {load_factor} (the paper reports up to 2.3x at ρ = 0.88 on "
        "its 12-server testbed)."
    )


if __name__ == "__main__":
    main()
