#!/usr/bin/env python3
"""Wikipedia replay (paper §VI): RR vs SR4 over a diurnal trace.

Generates the synthetic 24-hour Wikipedia trace (diurnal wiki-page rate,
static/wiki mix, memcached-hit / MySQL-miss cost model — see DESIGN.md
§6), replays it at 50 % of peak under RR and SR4, and prints:

* the per-bin wiki-page query rate and median load time (Figure 6),
* the whole-day median and third quartile (the Figure 8 numbers the
  paper quotes in its text).

The day is time-compressed by default so the example finishes quickly;
pass ``--duration 86400`` for a full-length replay.

Run with::

    python examples/wikipedia_replay.py --duration 360
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.experiments import WikipediaReplay, WikipediaReplayConfig
from repro.experiments.figures import render_figure6
from repro.experiments.wikipedia_experiment import make_wikipedia_trace


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--duration",
        type=float,
        default=360.0,
        help="compressed duration of the replayed day in seconds (paper: 86400)",
    )
    parser.add_argument(
        "--replay-fraction",
        type=float,
        default=0.5,
        help="fraction of the trace replayed (paper: 0.5)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = dataclasses.replace(
        WikipediaReplayConfig(), replay_fraction=args.replay_fraction, static_per_wiki=0.5
    ).compressed(duration=args.duration)

    trace = make_wikipedia_trace(config)
    summary = trace.summary()
    print(
        f"synthetic trace: {summary.num_requests} requests over "
        f"{summary.duration:.0f} s (mean {summary.mean_rate:.1f} req/s), "
        f"{summary.kinds.get('wiki', 0)} wiki pages"
    )

    print("replaying under RR and SR4...")
    result = WikipediaReplay(config).run(trace=trace)

    print()
    print(render_figure6(result))

    print()
    for name in result.policies():
        run = result.run(name)
        q1, median, q3 = run.wiki_quartiles()
        print(
            f"{name}: whole-day wiki page load time — median {median:.3f} s, "
            f"third quartile {q3:.3f} s (resets: {run.connections_reset})"
        )
    rr_q3 = result.run("RR").wiki_quartiles()[2]
    sr4_q3 = result.run("SR4").wiki_quartiles()[2]
    print(
        f"\nSR4 improves the third quartile by {rr_q3 / sr4_q3:.2f}x "
        "(the paper reports 0.48 s -> 0.28 s on its testbed)."
    )


if __name__ == "__main__":
    main()
