#!/usr/bin/env python3
"""Writing a custom connection-acceptance policy.

SRLB "does not impose any load balancing policy": the acceptance
decision is a plug-in.  This example defines two custom policies,
registers them with the policy registry, and compares them against the
paper's SR4 and the RR baseline on the same workload:

* ``ProbabilisticBackpressurePolicy`` — accepts with a probability that
  decays with the number of busy workers (a smooth version of SRc);
* ``TwoSignalPolicy`` — combines the fine-grained busy-thread count with
  the coarse CPU-load estimate, accepting only when both are healthy
  (the "coarse-grained information" variant the paper mentions in
  §II-C).

Run with::

    python examples/custom_policy.py
"""

from __future__ import annotations

import random

from repro.core import ApplicationAgent, ConnectionAcceptancePolicy, register_policy
from repro.experiments import (
    PolicySpec,
    TestbedConfig,
    rr_policy,
    run_poisson_once,
    sr_policy,
)
from repro.metrics import format_table


class ProbabilisticBackpressurePolicy(ConnectionAcceptancePolicy):
    """Accept with probability max(0, 1 - busy/limit)."""

    def __init__(self, limit: int = 8, seed: int = 0) -> None:
        self.name = f"prob<{limit}"
        self.limit = limit
        self._rng = random.Random(seed)

    def should_accept(self, agent: ApplicationAgent) -> bool:
        busy = agent.busy_threads()
        acceptance_probability = max(0.0, 1.0 - busy / self.limit)
        return self._rng.random() < acceptance_probability

    def describe(self) -> str:
        return f"accept with probability 1 - busy/{self.limit}"


class TwoSignalPolicy(ConnectionAcceptancePolicy):
    """Accept only when both the thread pool and the CPU look healthy."""

    def __init__(self, max_busy: int = 6, max_load_per_core: float = 2.5) -> None:
        self.name = f"two-signal<{max_busy},{max_load_per_core:g}"
        self.max_busy = max_busy
        self.max_load_per_core = max_load_per_core

    def should_accept(self, agent: ApplicationAgent) -> bool:
        return (
            agent.busy_threads() < self.max_busy
            and agent.estimated_cpu_load() < self.max_load_per_core
        )

    def describe(self) -> str:
        return (
            f"busy threads < {self.max_busy} and runnable workers per core "
            f"< {self.max_load_per_core:g}"
        )


def main() -> None:
    # Make the custom policies available to the experiment harness by name.
    register_policy("prob-backpressure", lambda: ProbabilisticBackpressurePolicy(limit=8))
    register_policy("two-signal", lambda: TwoSignalPolicy(max_busy=6))

    testbed = TestbedConfig()
    load_factor = 0.85
    num_queries = 3_000

    specs = [
        rr_policy(),
        sr_policy(4),
        PolicySpec(name="prob<8", acceptance_policy="prob-backpressure", num_candidates=2),
        PolicySpec(name="two-signal", acceptance_policy="two-signal", num_candidates=2),
    ]

    rows = []
    for spec in specs:
        result = run_poisson_once(
            testbed, spec, load_factor=load_factor, num_queries=num_queries
        )
        summary = result.summary
        rows.append([spec.name, summary.mean, summary.median, summary.p90])

    print(
        format_table(
            ["policy", "mean (s)", "median (s)", "p90 (s)"],
            rows,
            title=f"custom acceptance policies, Poisson workload at ρ = {load_factor}",
        )
    )
    print(
        "\nAny object implementing ConnectionAcceptancePolicy.should_accept() "
        "can be plugged in;\nregister_policy() makes it usable from PolicySpec "
        "by name, one instance per server."
    )


if __name__ == "__main__":
    main()
