#!/usr/bin/env python3
"""Packet-level walkthrough of Service Hunting (the paper's Figure 1).

This example builds the paper's testbed, attaches a packet tap to the
fabric, sends a single query, and prints every packet with its Segment
Routing header — the SYN carrying the candidate list, the refusal or
acceptance at each candidate, the SYN-ACK routed through the load
balancer (which installs the steering state), the steered HTTP request
and the direct response.

To make the refusal path visible, the first candidate is artificially
pre-loaded so that its SR4 policy refuses the new connection.

Run with::

    python examples/service_hunting_walkthrough.py
"""

from __future__ import annotations

from repro.experiments import TestbedConfig, build_testbed, sr_policy
from repro.net import classify_segment, describe
from repro.workload import Request, Trace


def main() -> None:
    testbed_config = TestbedConfig(num_servers=3, workers_per_server=8)
    testbed = build_testbed(testbed_config, sr_policy(4))

    # Pre-load every server's worker pool beyond the SR4 threshold except
    # one, so the walkthrough shows at least one refusal before the final
    # (forced) acceptance.
    for server in testbed.servers[:-1]:
        for _ in range(4):
            slot = server.app.workers.acquire()
            assert slot is not None

    print("Nodes:")
    print(f"  client        : {describe(testbed.client.primary_address)}")
    print(f"  load balancer : {describe(testbed.load_balancer.primary_address)}")
    print(f"  VIP           : {describe(testbed.vip)}")
    for server in testbed.servers:
        print(f"  {server.name:13s} : {describe(server.primary_address)}")
    print()

    step = 0

    def tap(packet, origin, destination):
        nonlocal step
        step += 1
        kind = classify_segment(packet.tcp.flags).upper()
        srh_text = ""
        if packet.srh is not None:
            path = " -> ".join(str(segment) for segment in packet.srh.traversal_order())
            srh_text = f"  SRH[{path}], SegmentsLeft={packet.srh.segments_left}"
        print(
            f"{step:2d}. t={testbed.simulator.now * 1000:7.3f} ms  "
            f"{kind:8s} {origin:10s} -> {destination:10s}{srh_text}"
        )

    testbed.fabric.add_tap(tap)

    query = Request(
        request_id=1, arrival_time=0.0, service_demand=0.05, kind="php", url="/compute.php"
    )
    print("Packet exchange for one query:")
    testbed.run_trace(Trace([query]))

    print()
    outcome = testbed.collector.outcomes()[0]
    print(f"response time observed by the client: {outcome.response_time * 1000:.2f} ms")
    for server in testbed.servers:
        stats = server.hunting.stats
        print(
            f"{server.name}: offers={stats.offers_received}, "
            f"accepted by choice={stats.accepted_by_choice}, "
            f"forced={stats.accepted_forced}, refused={stats.refused}"
        )


if __name__ == "__main__":
    main()
