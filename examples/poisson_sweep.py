#!/usr/bin/env python3
"""Reduced Figure 2: mean response time vs load factor for every policy.

Sweeps the normalized request rate ρ across the paper's range with the
full policy suite (RR, SR4, SR8, SR16, SRdyn) on the paper's 12-server
testbed, and prints the Figure 2 series as a table plus the SR4-vs-RR
improvement factor at the heaviest load.

The defaults are scaled down so the example runs in about a minute; pass
``--queries`` and ``--points`` to approach paper scale (20000 queries,
24 points)::

    python examples/poisson_sweep.py --queries 2000 --points 5
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.experiments import PoissonSweep, PoissonSweepConfig, paper_policy_suite
from repro.experiments.figures import render_figure2
from repro.metrics import format_comparison


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--queries", type=int, default=1_500, help="queries per run (paper: 20000)"
    )
    parser.add_argument(
        "--points", type=int, default=4, help="number of load factors (paper: 24)"
    )
    parser.add_argument(
        "--max-rho", type=float, default=0.88, help="heaviest load factor to sweep"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    load_factors = tuple(
        round(float(value), 3) for value in np.linspace(0.3, args.max_rho, args.points)
    )
    config = PoissonSweepConfig(
        load_factors=load_factors,
        num_queries=args.queries,
        policies=tuple(paper_policy_suite()),
    )

    print(
        f"sweeping {len(load_factors)} load factors x {len(config.policies)} policies, "
        f"{args.queries} queries each..."
    )
    sweep = PoissonSweep(config).run()

    print()
    print(render_figure2(sweep))

    heavy = max(load_factors)
    rr_mean = sweep.run("RR", heavy).mean_response_time
    others = {
        name: sweep.run(name, heavy).mean_response_time
        for name in ("SR4", "SR8", "SR16", "SRdyn")
    }
    print()
    print(format_comparison(f"mean response (s) at rho={heavy}", "RR", rr_mean, others))


if __name__ == "__main__":
    main()
