"""Unit tests for the SRLB load-balancer node.

The load balancer is exercised against a fabric with recording stub
servers, so these tests observe the exact SR headers it emits without
involving the full application-server stack (the end-to-end behaviour is
covered by the integration tests).
"""

import pytest

from repro.core.candidate_selection import RoundRobinCandidateSelector
from repro.core.loadbalancer import LoadBalancerNode
from repro.errors import LoadBalancerError
from repro.net.addressing import IPv6Address
from repro.net.fabric import LANFabric
from repro.net.packet import FlowKey, Packet, TCPFlag, TCPSegment, make_syn
from repro.net.router import NetworkNode
from repro.net.srh import SegmentRoutingHeader


def _addr(text):
    return IPv6Address.parse(text)


CLIENT = _addr("fd00:200::1")
VIP = _addr("fd00:300::1")
LB_ADDRESS = _addr("fd00:400::1")


class StubNode(NetworkNode):
    """Sink node recording everything delivered to it."""

    def __init__(self, simulator, name, address):
        super().__init__(simulator, name)
        self.add_address(address)
        self.received = []

    def handle_packet(self, packet):
        self.received.append(packet)


@pytest.fixture
def lb_setup(simulator):
    fabric = LANFabric(simulator, latency=1e-6)
    servers = [
        StubNode(simulator, f"server-{index}", _addr(f"fd00:100::{index + 1:x}"))
        for index in range(4)
    ]
    client = StubNode(simulator, "client", CLIENT)
    selector = RoundRobinCandidateSelector(num_candidates=2)
    lb = LoadBalancerNode(simulator, "lb", LB_ADDRESS, selector)
    lb.register_vip(VIP, [server.primary_address for server in servers])
    for node in servers + [client]:
        node.attach(fabric)
    lb.attach(fabric)
    return fabric, lb, servers, client


def _client_syn(port=20_000, request_id=1):
    return make_syn(CLIENT, VIP, port, 80, request_id=request_id)


class TestNewFlowDispatch:
    def test_syn_gets_sr_header_with_two_candidates_and_vip(self, simulator, lb_setup):
        fabric, lb, servers, client = lb_setup
        lb.receive(_client_syn())
        simulator.run()
        delivered = [packet for server in servers for packet in server.received]
        assert len(delivered) == 1
        packet = delivered[0]
        assert packet.srh is not None
        traversal = list(packet.srh.traversal_order())
        assert len(traversal) == 3
        assert traversal[-1] == VIP
        assert packet.srh.segments_left == 2
        assert packet.dst == traversal[0]
        assert lb.stats.syn_dispatched == 1

    def test_round_robin_selector_rotates_first_candidate(self, simulator, lb_setup):
        fabric, lb, servers, client = lb_setup
        for port in range(20_000, 20_004):
            lb.receive(_client_syn(port=port))
        simulator.run()
        # With the round-robin selector each server got exactly one SYN.
        assert [len(server.received) for server in servers] == [1, 1, 1, 1]

    def test_first_candidate_offer_stats(self, simulator, lb_setup):
        fabric, lb, servers, client = lb_setup
        for port in range(20_000, 20_008):
            lb.receive(_client_syn(port=port))
        simulator.run()
        assert sum(lb.stats.first_candidate_offers.values()) == 8

    def test_unknown_vip_is_dropped(self, simulator, lb_setup):
        fabric, lb, servers, client = lb_setup
        stray = make_syn(CLIENT, _addr("fd00:300::99"), 20_000, 80)
        lb.receive(stray)
        simulator.run()
        assert lb.stats.unknown_vip_drops == 1
        assert all(not server.received for server in servers)


class TestSteering:
    def _learn_flow(self, simulator, lb, servers, client, port=20_000):
        """Simulate the accepting server's SYN-ACK reaching the LB."""
        server = servers[1]
        srh = SegmentRoutingHeader.from_traversal(
            [server.primary_address, LB_ADDRESS, CLIENT]
        )
        srh.advance()  # the server's own segment is consumed on send
        syn_ack = Packet(
            src=VIP,
            dst=LB_ADDRESS,
            tcp=TCPSegment(src_port=80, dst_port=port, flags=TCPFlag.SYN | TCPFlag.ACK),
            srh=srh,
        )
        lb.receive(syn_ack)
        simulator.run()
        return server

    def test_syn_ack_installs_steering_and_reaches_client(self, simulator, lb_setup):
        fabric, lb, servers, client = lb_setup
        server = self._learn_flow(simulator, lb, servers, client)
        assert lb.stats.acceptances_learned == 1
        assert lb.stats.acceptances_per_server[server.primary_address] == 1
        assert len(client.received) == 1
        forwarded = client.received[0]
        assert forwarded.srh is None
        assert forwarded.dst == CLIENT

    def test_mid_flow_packet_is_steered_to_accepting_server(self, simulator, lb_setup):
        fabric, lb, servers, client = lb_setup
        server = self._learn_flow(simulator, lb, servers, client, port=20_000)
        data = Packet(
            src=CLIENT,
            dst=VIP,
            tcp=TCPSegment(
                src_port=20_000, dst_port=80, flags=TCPFlag.PSH | TCPFlag.ACK, payload_size=100
            ),
        )
        lb.receive(data)
        simulator.run()
        steered = server.received[-1]
        assert steered.srh is not None
        assert list(steered.srh.traversal_order()) == [server.primary_address, VIP]
        assert steered.srh.segments_left == 1
        assert lb.stats.steering_packets == 1

    def test_mid_flow_packet_without_state_gets_reset(self, simulator, lb_setup):
        fabric, lb, servers, client = lb_setup
        orphan = Packet(
            src=CLIENT,
            dst=VIP,
            tcp=TCPSegment(
                src_port=30_000, dst_port=80, flags=TCPFlag.PSH | TCPFlag.ACK, payload_size=100
            ),
        )
        lb.receive(orphan)
        simulator.run()
        assert lb.stats.steering_misses == 1
        assert lb.stats.resets_sent == 1
        assert client.received[-1].tcp.has(TCPFlag.RST)

    def test_acceptance_share(self, simulator, lb_setup):
        fabric, lb, servers, client = lb_setup
        self._learn_flow(simulator, lb, servers, client, port=20_000)
        self._learn_flow(simulator, lb, servers, client, port=20_001)
        share = lb.acceptance_share()
        assert share[servers[1].primary_address] == pytest.approx(1.0)


class TestBackendManagement:
    def test_register_requires_servers(self, simulator):
        lb = LoadBalancerNode(
            simulator, "lb", LB_ADDRESS, RoundRobinCandidateSelector(num_candidates=1)
        )
        with pytest.raises(LoadBalancerError):
            lb.register_vip(VIP, [])

    def test_add_and_remove_backend(self, simulator, lb_setup):
        fabric, lb, servers, client = lb_setup
        extra = _addr("fd00:100::99")
        lb.add_backend(VIP, extra)
        assert extra in lb.backends_for(VIP)
        assert lb.remove_backend(VIP, extra) is True
        assert lb.remove_backend(VIP, extra) is False

    def test_cannot_empty_a_vip_pool(self, simulator):
        lb = LoadBalancerNode(
            simulator, "lb", LB_ADDRESS, RoundRobinCandidateSelector(num_candidates=1)
        )
        only = _addr("fd00:100::1")
        lb.register_vip(VIP, [only])
        with pytest.raises(LoadBalancerError):
            lb.remove_backend(VIP, only)

    def test_unregistered_vip_rejected(self, simulator):
        lb = LoadBalancerNode(
            simulator, "lb", LB_ADDRESS, RoundRobinCandidateSelector(num_candidates=1)
        )
        with pytest.raises(LoadBalancerError):
            lb.backends_for(VIP)

    def test_vips_property(self, simulator, lb_setup):
        fabric, lb, servers, client = lb_setup
        assert lb.vips == [VIP]


class TestHousekeeping:
    def test_flow_expiry_task_removes_idle_entries(self, simulator, lb_setup):
        fabric, lb, servers, client = lb_setup
        lb.flow_table.learn(
            FlowKey(CLIENT, 20_000, VIP, 80),
            servers[0].primary_address,
            now=simulator.now,
        )
        lb.start_housekeeping(interval=1.0)
        simulator.schedule_at(lb.flow_table.idle_timeout + 5.0, lb.stop_housekeeping)
        simulator.run()
        assert len(lb.flow_table) == 0
