"""Unit tests for IPv6 addressing, prefixes and allocators."""

import pytest

from repro.errors import AddressError
from repro.net.addressing import (
    AddressAllocator,
    CLIENT_PREFIX,
    IPv6Address,
    IPv6Prefix,
    SERVER_PREFIX,
    VIP_PREFIX,
    default_allocators,
    describe,
    is_virtual_ip,
)


class TestIPv6Address:
    def test_parse_full_form(self):
        address = IPv6Address.parse("2001:0db8:0000:0000:0000:0000:0000:0001")
        assert str(address) == "2001:db8::1"

    def test_parse_compressed_form(self):
        assert IPv6Address.parse("2001:db8::1").value == 0x20010DB8000000000000000000000001

    def test_parse_all_zero(self):
        assert IPv6Address.parse("::").value == 0

    def test_parse_loopback(self):
        assert str(IPv6Address.parse("::1")) == "::1"

    def test_parse_trailing_compression(self):
        assert IPv6Address.parse("fd00::").value == 0xFD00 << 112

    def test_roundtrip_formatting(self):
        for text in ("fd00:100::1", "::1", "2001:db8::", "fe80::1:2:3:4"):
            assert str(IPv6Address.parse(text)) == text

    def test_parse_rejects_double_compression(self):
        with pytest.raises(AddressError):
            IPv6Address.parse("2001::db8::1")

    def test_parse_rejects_too_many_groups(self):
        with pytest.raises(AddressError):
            IPv6Address.parse("1:2:3:4:5:6:7:8:9")

    def test_parse_rejects_bad_group(self):
        with pytest.raises(AddressError):
            IPv6Address.parse("2001:db8::zzzz")

    def test_parse_rejects_empty(self):
        with pytest.raises(AddressError):
            IPv6Address.parse("")

    def test_value_out_of_range_rejected(self):
        with pytest.raises(AddressError):
            IPv6Address(1 << 128)
        with pytest.raises(AddressError):
            IPv6Address(-1)

    def test_addresses_are_ordered_and_hashable(self):
        a = IPv6Address.parse("fd00::1")
        b = IPv6Address.parse("fd00::2")
        assert a < b
        assert len({a, b, IPv6Address.parse("fd00::1")}) == 2

    def test_addition(self):
        assert IPv6Address.parse("fd00::1") + 4 == IPv6Address.parse("fd00::5")

    def test_addition_overflow_rejected(self):
        with pytest.raises(AddressError):
            IPv6Address((1 << 128) - 1) + 1

    def test_is_within(self):
        assert IPv6Address.parse("fd00:100::42").is_within(SERVER_PREFIX)
        assert not IPv6Address.parse("fd00:200::42").is_within(SERVER_PREFIX)


class TestIPv6Prefix:
    def test_parse(self):
        prefix = IPv6Prefix.parse("fd00:100::/32")
        assert prefix.length == 32
        assert str(prefix) == "fd00:100::/32"

    def test_contains(self):
        prefix = IPv6Prefix.parse("fd00:100::/32")
        assert prefix.contains(IPv6Address.parse("fd00:100::1"))
        assert prefix.contains(IPv6Address.parse("fd00:100:ffff::1"))
        assert not prefix.contains(IPv6Address.parse("fd00:101::1"))

    def test_zero_length_prefix_contains_everything(self):
        prefix = IPv6Prefix.parse("::/0")
        assert prefix.contains(IPv6Address.parse("2001:db8::1"))

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            IPv6Prefix(IPv6Address.parse("fd00:100::1"), 32)

    def test_invalid_length_rejected(self):
        with pytest.raises(AddressError):
            IPv6Prefix(IPv6Address.parse("fd00::"), 129)

    def test_missing_slash_rejected(self):
        with pytest.raises(AddressError):
            IPv6Prefix.parse("fd00:100::")

    def test_address_at(self):
        prefix = IPv6Prefix.parse("fd00:100::/32")
        assert prefix.address_at(5) == IPv6Address.parse("fd00:100::5")

    def test_address_at_out_of_range(self):
        prefix = IPv6Prefix.parse("fd00:100::/127")
        with pytest.raises(AddressError):
            prefix.address_at(2)


class TestAllocator:
    def test_sequential_allocation(self):
        allocator = AddressAllocator(IPv6Prefix.parse("fd00:100::/32"))
        first = allocator.allocate()
        second = allocator.allocate()
        assert first == IPv6Address.parse("fd00:100::1")
        assert second == IPv6Address.parse("fd00:100::2")

    def test_allocate_many(self):
        allocator = AddressAllocator(IPv6Prefix.parse("fd00:100::/32"))
        addresses = list(allocator.allocate_many(12))
        assert len(set(addresses)) == 12
        assert all(address.is_within(SERVER_PREFIX) for address in addresses)

    def test_default_allocators_cover_all_roles(self):
        allocators = default_allocators()
        assert set(allocators) == {"server", "client", "vip", "lb"}
        assert allocators["vip"].allocate().is_within(VIP_PREFIX)
        assert allocators["client"].allocate().is_within(CLIENT_PREFIX)


class TestRoleHelpers:
    def test_is_virtual_ip(self):
        assert is_virtual_ip(IPv6Address.parse("fd00:300::1"))
        assert not is_virtual_ip(IPv6Address.parse("fd00:100::1"))

    def test_describe_labels_roles(self):
        assert describe(IPv6Address.parse("fd00:100::1")).startswith("server:")
        assert describe(IPv6Address.parse("fd00:300::1")).startswith("vip:")
        assert describe(None) == "<none>"
        assert describe(IPv6Address.parse("2001:db8::1")) == "2001:db8::1"
