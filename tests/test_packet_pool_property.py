"""Property test: a recycled packet is indistinguishable from a fresh one.

The :class:`~repro.net.packet.PacketPool` claims that re-running the
constructor on a carcass resets *every* observable field, no matter what
the packet went through during its previous life.  This test drives a
pooled packet through arbitrary mutation sequences (attach/detach SRH,
destination reassignment, flow-key cache reads, SRH advancement), kills
and recycles it, and then checks the reincarnation field-for-field
against a never-pooled packet built from the same arguments.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addressing import IPv6Address
from repro.net.packet import Packet, PacketPool, TCPFlag, TCPSegment
from repro.net.srh import SegmentRoutingHeader

#: Small address universe; collisions between the lives are the point.
addresses = st.integers(min_value=1, max_value=12).map(
    lambda value: IPv6Address(0x2001_0DB8 << 96 | value)
)
ports = st.integers(min_value=1, max_value=65535)
flags = st.sampled_from(
    [TCPFlag.SYN, TCPFlag.SYN | TCPFlag.ACK, TCPFlag.ACK, TCPFlag.RST,
     TCPFlag.PSH | TCPFlag.ACK]
)

#: One mutation step of a packet's first life.
operations = st.one_of(
    st.tuples(st.just("attach_srh"), st.lists(addresses, min_size=2, max_size=4)),
    st.tuples(st.just("detach_srh"), st.none()),
    st.tuples(st.just("set_dst"), addresses),
    st.tuples(st.just("read_flow_key"), st.none()),
    st.tuples(st.just("advance_srh"), st.none()),
)


def _packet_args(src, dst, src_port, dst_port, flag, payload, created_at):
    return dict(
        src=src,
        dst=dst,
        tcp=TCPSegment(
            src_port=src_port, dst_port=dst_port, flags=flag, payload_size=payload
        ),
        created_at=created_at,
    )


def _apply(packet, ops):
    """Run one mutation sequence; invalid steps are skipped, not errors."""
    for name, arg in ops:
        if name == "attach_srh":
            packet.attach_srh(SegmentRoutingHeader.from_traversal(arg))
        elif name == "detach_srh":
            packet.detach_srh()
        elif name == "set_dst":
            packet.dst = arg
        elif name == "read_flow_key":
            packet.flow_key()
        elif name == "advance_srh" and packet.srh is not None:
            if packet.srh.segments_left > 0:
                packet.advance_srh()


def _assert_field_for_field(pooled, fresh):
    assert pooled.src == fresh.src
    assert pooled.dst == fresh.dst
    assert pooled.srh == fresh.srh
    assert pooled.hop_limit == fresh.hop_limit
    assert pooled.created_at == fresh.created_at
    assert pooled.in_flight == fresh.in_flight is False
    assert pooled.tcp == fresh.tcp
    assert pooled.flow_key() == fresh.flow_key()
    # The cached key must describe the *current* life, not the previous
    # one: recompute from scratch and compare.
    rebuilt = Packet(
        src=pooled.src,
        dst=pooled.dst,
        tcp=pooled.tcp,
        created_at=pooled.created_at,
        packet_id=pooled.packet_id,
    )
    assert pooled.flow_key() == rebuilt.flow_key()


@given(
    first_life=st.tuples(addresses, addresses, ports, ports, flags,
                         st.integers(min_value=0, max_value=4000)),
    ops=st.lists(operations, max_size=8),
    second_life=st.tuples(addresses, addresses, ports, ports, flags,
                          st.integers(min_value=0, max_value=4000)),
)
@settings(max_examples=120, deadline=None)
def test_recycled_packet_equals_fresh_packet(first_life, ops, second_life):
    pool = PacketPool()

    src, dst, sport, dport, flag, payload = first_life
    packet = pool.acquire(**_packet_args(src, dst, sport, dport, flag, payload, 1.0))
    _apply(packet, ops)
    pool.release(packet)

    src, dst, sport, dport, flag, payload = second_life
    args = _packet_args(src, dst, sport, dport, flag, payload, 2.5)
    pooled = pool.acquire(**args)
    assert pooled is packet  # the carcass really was recycled
    fresh = Packet(**args)
    _assert_field_for_field(pooled, fresh)
    # Ids keep drawing from the same global counter: consecutive draws.
    assert fresh.packet_id == pooled.packet_id + 1


@given(
    life=st.tuples(addresses, addresses, ports, ports, flags,
                   st.integers(min_value=0, max_value=4000)),
    ops=st.lists(operations, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_released_carcass_holds_no_references(life, ops):
    pool = PacketPool()
    src, dst, sport, dport, flag, payload = life
    packet = pool.acquire(**_packet_args(src, dst, sport, dport, flag, payload, 0.0))
    _apply(packet, ops)
    pool.release(packet)
    assert packet.tcp is None
    assert packet.srh is None
    assert packet._flow_key is None
