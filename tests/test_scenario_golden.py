"""Golden bit-identity tests for the scenario-framework port.

``tests/data/scenario_golden.json`` holds fingerprints (full-precision
float reprs and SHA-256 hashes of float64 series) captured from the
*pre-refactor* experiment code — the bespoke per-family sweep drivers
that predate :mod:`repro.experiments.scenario`.  These tests re-run the
same configurations through the framework, with ``jobs=1`` and
``jobs=2``, and require byte-for-byte identical mean-response series,
CDFs, and churn observations.

If one of these fails, the scenario port (or a later change to the
shared pipeline) altered experiment *results*, not just structure —
which the refactor explicitly promises never to do.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.config import (
    ChurnEvent,
    PoissonSweepConfig,
    ResilienceConfig,
    TestbedConfig,
    WikipediaReplayConfig,
    rr_policy,
    sr_policy,
)
from repro.experiments.poisson_experiment import PoissonSweep
from repro.experiments.resilience_experiment import run_resilience_comparison
from repro.experiments.wikipedia_experiment import WikipediaReplay

GOLDEN_PATH = Path(__file__).parent / "data" / "scenario_golden.json"

#: The exact testbed the fingerprints were captured on.
SMALL_TESTBED = TestbedConfig(
    num_servers=4, workers_per_server=8, cores_per_server=2, backlog_capacity=16
)

JOBS = (1, 2)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def _series_hash(values) -> str:
    """SHA-256 of the float64 byte representation — bitwise, not approx."""
    return hashlib.sha256(
        np.asarray(values, dtype=np.float64).tobytes()
    ).hexdigest()


class TestPoissonGolden:
    @pytest.fixture(scope="class", params=JOBS)
    def sweep(self, request):
        config = PoissonSweepConfig(
            testbed=SMALL_TESTBED,
            load_factors=(0.4, 0.75),
            num_queries=250,
            policies=(rr_policy(), sr_policy(4)),
        )
        return PoissonSweep(config).run(jobs=request.param)

    @pytest.mark.parametrize("policy", ["RR", "SR4"])
    def test_mean_response_series_bitwise(self, golden, sweep, policy):
        expected = golden["poisson"][policy]["mean_series"]
        got = [[rho, repr(mean)] for rho, mean in sweep.mean_response_series(policy)]
        assert got == expected

    @pytest.mark.parametrize("policy", ["RR", "SR4"])
    @pytest.mark.parametrize("rho", [0.4, 0.75])
    def test_response_times_and_cdf_bitwise(self, golden, sweep, policy, rho):
        expected = golden["poisson"][policy]
        run = sweep.run(policy, rho)
        assert _series_hash(run.response_times()) == expected["response_times"][repr(rho)]
        cdf = np.asarray(run.collector.cdf()).ravel()
        assert _series_hash(cdf) == expected["cdf"][repr(rho)]


class TestWikipediaGolden:
    @pytest.fixture(scope="class", params=JOBS)
    def replay(self, request):
        config = WikipediaReplayConfig(testbed=SMALL_TESTBED).compressed(
            duration=60.0
        )
        return WikipediaReplay(config).run(jobs=request.param)

    def test_trace_summary_bitwise(self, golden, replay):
        expected = golden["wikipedia"]["trace_summary"]
        got = {key: repr(value) for key, value in replay.trace_summary.items()}
        assert got == expected

    @pytest.mark.parametrize("policy", ["RR", "SR4"])
    def test_series_bitwise(self, golden, replay, policy):
        expected = golden["wikipedia"][policy]
        run = replay.run(policy)
        assert _series_hash(run.wiki_response_times()) == expected["wiki_response_times"]
        assert (
            _series_hash([v for pair in run.median_series() for v in pair])
            == expected["median_series"]
        )
        assert (
            _series_hash([v for pair in run.rate_series() for v in pair])
            == expected["rate_series"]
        )
        assert run.requests_served == expected["requests_served"]
        assert run.connections_reset == expected["connections_reset"]


class TestAutoscaleGolden:
    @pytest.fixture(scope="class", params=JOBS)
    def result(self, request):
        from repro.experiments.autoscale_experiment import (
            AUTOSCALE_SCENARIO,
            run_autoscale,
        )

        return run_autoscale(
            AUTOSCALE_SCENARIO.smoke_config(), jobs=request.param
        )

    @pytest.mark.parametrize("mode", ["static", "reactive", "predictive"])
    def test_run_results_bitwise(self, golden, result, mode):
        expected = golden["autoscale"][mode]
        run = result.run(mode)
        assert _series_hash(run.collector.response_times()) == expected["response_times"]
        assert repr(run.capacity_seconds) == expected["capacity_seconds"]
        capacity_steps = [
            [repr(time), repr(value)] for time, value in run.capacity.series()
        ]
        assert capacity_steps == expected["capacity_steps"]
        events = [
            [repr(event.time), event.action, event.servers_before, event.servers_after]
            for event in run.capacity.events
        ]
        assert events == expected["scaling_events"]
        assert [repr(d) for d in run.capacity.drain_durations] == expected[
            "drain_durations"
        ]
        assert run.requests_served == expected["requests_served"]
        assert run.connections_reset == expected["connections_reset"]


class TestHeavyTailGolden:
    @pytest.fixture(scope="class", params=JOBS)
    def comparison(self, request):
        from repro.experiments.heavy_tail_experiment import (
            HEAVY_TAIL_SCENARIO,
            run_heavy_tail,
        )

        return run_heavy_tail(
            HEAVY_TAIL_SCENARIO.smoke_config(), jobs=request.param
        )

    def test_user_concentration_bitwise(self, golden, comparison):
        expected = golden["heavy-tail"]["users"]
        users = comparison.users
        assert users.num_requests == expected["num_requests"]
        assert users.num_sessions == expected["num_sessions"]
        assert users.num_heavy == expected["num_heavy"]
        assert users.distinct_users == expected["distinct_users"]
        assert repr(users.top_user_share) == expected["top_user_share"]
        assert users.max_user_requests == expected["max_user_requests"]

    @pytest.mark.parametrize("policy", ["RR", "SR4", "SRdyn"])
    def test_run_results_bitwise(self, golden, comparison, policy):
        from repro.workload.requests import KIND_HEAVY, KIND_SESSION

        expected = golden["heavy-tail"][policy]
        run = comparison.run(policy)
        assert _series_hash(run.collector.response_times()) == expected["response_times"]
        assert repr(run.summary.mean) == expected["mean"]
        assert repr(run.summary.p99) == expected["p99"]
        assert repr(run.kind_summary(KIND_SESSION).p99) == expected["p99_session"]
        assert repr(run.kind_summary(KIND_HEAVY).p99) == expected["p99_heavy"]
        totals = run.collector.totals
        assert totals.completed == expected["completed"]
        assert totals.failed == expected["failed"]
        assert run.queries_hung == expected["queries_hung"]
        assert run.requests_served == expected["requests_served"]
        assert run.connections_reset == expected["connections_reset"]
        assert run.affinity_hits == expected["affinity_hits"]
        assert run.affinity_fallbacks == expected["affinity_fallbacks"]


class TestAdversarialGolden:
    @pytest.fixture(scope="class", params=JOBS)
    def comparison(self, request):
        from repro.experiments.adversarial_experiment import (
            ADVERSARIAL_SCENARIO,
            run_adversarial,
        )

        return run_adversarial(
            ADVERSARIAL_SCENARIO.smoke_config(), jobs=request.param
        )

    @pytest.mark.parametrize(
        "mode", ["baseline", "syn-flood", "hash-collision", "gray-failure"]
    )
    def test_run_results_bitwise(self, golden, comparison, mode):
        expected = golden["adversarial"][mode]
        run = comparison.run(mode)
        assert _series_hash(run.collector.response_times()) == expected["response_times"]
        assert repr(run.summary.mean) == expected["mean"]
        assert repr(run.summary.p99) == expected["p99"]
        assert repr(run.completion_rate) == expected["completion_rate"]
        assert run.requests_served == expected["requests_served"]
        assert run.connections_reset == expected["connections_reset"]
        assert run.connections_timed_out == expected["connections_timed_out"]
        assert run.queries_hung == expected["queries_hung"]
        assert run.steering_misses == expected["steering_misses"]
        assert run.recovery_hunts == expected["recovery_hunts"]
        assert run.attack_syns_sent == expected["attack_syns_sent"]
        got_bucket = (
            None
            if run.attack_bucket_share is None
            else repr(run.attack_bucket_share)
        )
        assert got_bucket == expected["attack_bucket_share"]
        assert run.flow_entries_created == expected["flow_entries_created"]
        assert run.flow_entries_expired == expected["flow_entries_expired"]
        assert run.flow_entries_live == expected["flow_entries_live"]
        got_delay = (
            None if run.quarantine_delay is None else repr(run.quarantine_delay)
        )
        assert got_delay == expected["quarantine_delay"]
        assert list(run.quarantined) == expected["quarantined"]

    def test_collision_concentrates_on_one_bucket(self, comparison):
        # Acceptance criterion: the offline 5-tuple search must land at
        # least 90% of attack flows on the targeted ECMP bucket when
        # checked against the *live* router.
        run = comparison.run("hash-collision")
        assert run.attack_bucket_share is not None
        assert run.attack_bucket_share >= 0.9

    def test_legit_traffic_survives_attacks(self, comparison):
        # The attacks degrade but must not extinguish legitimate
        # service: under either flood at least 40% of legitimate
        # queries still complete, and the gray-failure mode (with the
        # watchdog quarantining the slow server) stays lossless.
        assert comparison.run("baseline").completion_rate == 1.0
        assert comparison.run("syn-flood").completion_rate >= 0.4
        assert comparison.run("hash-collision").completion_rate >= 0.4
        assert comparison.run("gray-failure").completion_rate == 1.0


class TestChaosGolden:
    @pytest.fixture(scope="class", params=JOBS)
    def comparison(self, request):
        from repro.experiments.chaos_experiment import (
            CHAOS_SCENARIO,
            run_chaos,
        )

        return run_chaos(CHAOS_SCENARIO.smoke_config(), jobs=request.param)

    @pytest.mark.parametrize("mode", ["baseline", "loss", "flap", "jitter"])
    def test_run_results_bitwise(self, golden, comparison, mode):
        expected = golden["chaos"][mode]
        run = comparison.run(mode)
        assert run.fingerprint == expected["fingerprint"]
        assert run.collector.totals.completed == expected["completed"]
        assert run.collector.totals.failed == expected["failed"]
        assert run.requests_served == expected["requests_served"]
        assert run.connections_reset == expected["connections_reset"]
        assert run.connections_shed == expected["connections_shed"]
        assert run.queries_retried == expected["queries_retried"]
        assert run.queries_gave_up == expected["queries_gave_up"]
        assert run.queries_swept == expected["queries_swept"]
        assert run.syn_retransmits == expected["syn_retransmits"]
        assert run.fault_packets_seen == expected["fault_packets_seen"]
        assert run.fault_packets_dropped == expected["fault_packets_dropped"]
        assert run.fault_dropped_loss == expected["fault_dropped_loss"]
        assert run.fault_dropped_burst == expected["fault_dropped_burst"]
        assert run.fault_dropped_corrupted == expected["fault_dropped_corrupted"]
        assert run.fault_dropped_link_down == expected["fault_dropped_link_down"]
        assert run.fault_delayed_jitter == expected["fault_delayed_jitter"]
        assert run.fault_reordered == expected["fault_reordered"]
        assert repr(run.summary.mean) == expected["mean"]
        assert repr(run.summary.p99) == expected["p99"]

    def test_baseline_is_bit_identical_to_no_fault_plane(self, comparison):
        # The ``baseline`` cell installs the pipeline with every injector
        # disabled; it must fingerprint identically to a run with no
        # pipeline installed at all.
        from repro.experiments.chaos_experiment import (
            CHAOS_SCENARIO,
            _build_chaos_platform,
            make_chaos_trace,
            outcome_fingerprint,
        )

        config = CHAOS_SCENARIO.smoke_config()
        testbed = _build_chaos_platform(config, "baseline")
        testbed.run_trace(make_chaos_trace(config))
        bare = outcome_fingerprint(testbed.collector)
        assert comparison.run("baseline").fingerprint == bare

    def test_loss_cell_recovers_queries(self, comparison):
        # Acceptance criterion: under the 1% loss cell the client's
        # retransmission/retry path must recover at least 99% of the
        # queries, and every query that did not complete must be
        # accounted for by the give-up counter (no silent leaks).
        run = comparison.run("loss")
        assert run.completion_rate >= 0.99
        assert run.queries_gave_up == run.collector.totals.failed
        assert (
            run.collector.totals.completed + run.collector.totals.failed
            == run.config.num_queries
        )

    def test_fault_drop_counters_reconcile(self, comparison):
        # Every drop is counted once in the unified total and once in
        # exactly one reason counter, for every cell.
        for mode in comparison.modes():
            run = comparison.run(mode)
            assert run.fault_packets_dropped == (
                run.fault_dropped_loss
                + run.fault_dropped_burst
                + run.fault_dropped_corrupted
                + run.fault_dropped_link_down
            )


class TestResilienceGolden:
    @pytest.fixture(scope="class", params=JOBS)
    def comparison(self, request):
        config = ResilienceConfig(
            testbed=TestbedConfig(
                num_servers=6,
                workers_per_server=8,
                num_load_balancers=4,
                request_spread=1.5,
                request_chunks=4,
            ),
            load_factor=0.6,
            num_queries=500,
            service_mean=0.05,
            churn=(ChurnEvent(at_fraction=0.5),),
        )
        return run_resilience_comparison(config, jobs=request.param)

    @pytest.mark.parametrize("scheme", ["random", "consistent-hash"])
    def test_churn_results_bitwise(self, golden, comparison, scheme):
        expected = golden["resilience"][scheme]
        run = comparison.run(scheme)
        assert run.broken_flows == expected["broken_flows"]
        assert run.in_flight_at_churn == expected["in_flight_at_churn"]
        assert run.recovery_hunts == expected["recovery_hunts"]
        assert run.steering_misses == expected["steering_misses"]
        assert _series_hash(run.collector.response_times()) == expected["response_times"]
        observations = [
            [repr(obs.at_time), obs.instance, sorted(obs.in_flight_ids)]
            for obs in run.observations
        ]
        assert observations == expected["observations"]
