"""Golden bit-identity tests for the scenario-framework port.

``tests/data/scenario_golden.json`` holds fingerprints (full-precision
float reprs and SHA-256 hashes of float64 series) captured from the
*pre-refactor* experiment code — the bespoke per-family sweep drivers
that predate :mod:`repro.experiments.scenario`.  These tests re-run the
same configurations through the framework, with ``jobs=1`` and
``jobs=2``, and require byte-for-byte identical mean-response series,
CDFs, and churn observations.

If one of these fails, the scenario port (or a later change to the
shared pipeline) altered experiment *results*, not just structure —
which the refactor explicitly promises never to do.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.config import (
    ChurnEvent,
    PoissonSweepConfig,
    ResilienceConfig,
    TestbedConfig,
    WikipediaReplayConfig,
    rr_policy,
    sr_policy,
)
from repro.experiments.poisson_experiment import PoissonSweep
from repro.experiments.resilience_experiment import run_resilience_comparison
from repro.experiments.wikipedia_experiment import WikipediaReplay

GOLDEN_PATH = Path(__file__).parent / "data" / "scenario_golden.json"

#: The exact testbed the fingerprints were captured on.
SMALL_TESTBED = TestbedConfig(
    num_servers=4, workers_per_server=8, cores_per_server=2, backlog_capacity=16
)

JOBS = (1, 2)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def _series_hash(values) -> str:
    """SHA-256 of the float64 byte representation — bitwise, not approx."""
    return hashlib.sha256(
        np.asarray(values, dtype=np.float64).tobytes()
    ).hexdigest()


class TestPoissonGolden:
    @pytest.fixture(scope="class", params=JOBS)
    def sweep(self, request):
        config = PoissonSweepConfig(
            testbed=SMALL_TESTBED,
            load_factors=(0.4, 0.75),
            num_queries=250,
            policies=(rr_policy(), sr_policy(4)),
        )
        return PoissonSweep(config).run(jobs=request.param)

    @pytest.mark.parametrize("policy", ["RR", "SR4"])
    def test_mean_response_series_bitwise(self, golden, sweep, policy):
        expected = golden["poisson"][policy]["mean_series"]
        got = [[rho, repr(mean)] for rho, mean in sweep.mean_response_series(policy)]
        assert got == expected

    @pytest.mark.parametrize("policy", ["RR", "SR4"])
    @pytest.mark.parametrize("rho", [0.4, 0.75])
    def test_response_times_and_cdf_bitwise(self, golden, sweep, policy, rho):
        expected = golden["poisson"][policy]
        run = sweep.run(policy, rho)
        assert _series_hash(run.response_times()) == expected["response_times"][repr(rho)]
        cdf = np.asarray(run.collector.cdf()).ravel()
        assert _series_hash(cdf) == expected["cdf"][repr(rho)]


class TestWikipediaGolden:
    @pytest.fixture(scope="class", params=JOBS)
    def replay(self, request):
        config = WikipediaReplayConfig(testbed=SMALL_TESTBED).compressed(
            duration=60.0
        )
        return WikipediaReplay(config).run(jobs=request.param)

    def test_trace_summary_bitwise(self, golden, replay):
        expected = golden["wikipedia"]["trace_summary"]
        got = {key: repr(value) for key, value in replay.trace_summary.items()}
        assert got == expected

    @pytest.mark.parametrize("policy", ["RR", "SR4"])
    def test_series_bitwise(self, golden, replay, policy):
        expected = golden["wikipedia"][policy]
        run = replay.run(policy)
        assert _series_hash(run.wiki_response_times()) == expected["wiki_response_times"]
        assert (
            _series_hash([v for pair in run.median_series() for v in pair])
            == expected["median_series"]
        )
        assert (
            _series_hash([v for pair in run.rate_series() for v in pair])
            == expected["rate_series"]
        )
        assert run.requests_served == expected["requests_served"]
        assert run.connections_reset == expected["connections_reset"]


class TestAutoscaleGolden:
    @pytest.fixture(scope="class", params=JOBS)
    def result(self, request):
        from repro.experiments.autoscale_experiment import (
            AUTOSCALE_SCENARIO,
            run_autoscale,
        )

        return run_autoscale(
            AUTOSCALE_SCENARIO.smoke_config(), jobs=request.param
        )

    @pytest.mark.parametrize("mode", ["static", "reactive", "predictive"])
    def test_run_results_bitwise(self, golden, result, mode):
        expected = golden["autoscale"][mode]
        run = result.run(mode)
        assert _series_hash(run.collector.response_times()) == expected["response_times"]
        assert repr(run.capacity_seconds) == expected["capacity_seconds"]
        capacity_steps = [
            [repr(time), repr(value)] for time, value in run.capacity.series()
        ]
        assert capacity_steps == expected["capacity_steps"]
        events = [
            [repr(event.time), event.action, event.servers_before, event.servers_after]
            for event in run.capacity.events
        ]
        assert events == expected["scaling_events"]
        assert [repr(d) for d in run.capacity.drain_durations] == expected[
            "drain_durations"
        ]
        assert run.requests_served == expected["requests_served"]
        assert run.connections_reset == expected["connections_reset"]


class TestResilienceGolden:
    @pytest.fixture(scope="class", params=JOBS)
    def comparison(self, request):
        config = ResilienceConfig(
            testbed=TestbedConfig(
                num_servers=6,
                workers_per_server=8,
                num_load_balancers=4,
                request_spread=1.5,
                request_chunks=4,
            ),
            load_factor=0.6,
            num_queries=500,
            service_mean=0.05,
            churn=(ChurnEvent(at_fraction=0.5),),
        )
        return run_resilience_comparison(config, jobs=request.param)

    @pytest.mark.parametrize("scheme", ["random", "consistent-hash"])
    def test_churn_results_bitwise(self, golden, comparison, scheme):
        expected = golden["resilience"][scheme]
        run = comparison.run(scheme)
        assert run.broken_flows == expected["broken_flows"]
        assert run.in_flight_at_churn == expected["in_flight_at_churn"]
        assert run.recovery_hunts == expected["recovery_hunts"]
        assert run.steering_misses == expected["steering_misses"]
        assert _series_hash(run.collector.response_times()) == expected["response_times"]
        observations = [
            [repr(obs.at_time), obs.instance, sorted(obs.in_flight_ids)]
            for obs in run.observations
        ]
        assert observations == expected["observations"]
