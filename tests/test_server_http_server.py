"""Unit tests for the Apache-like HTTP application instance."""

import pytest

from repro.errors import ServerError
from repro.net.addressing import IPv6Address
from repro.net.packet import FlowKey
from repro.server.cpu import ProcessorSharingCPU
from repro.server.http_server import HTTPServerInstance


class FakeTransport:
    """Records the messages the application instance asks to send."""

    def __init__(self):
        self.syn_acks = []
        self.resets = []
        self.responses = []

    def send_syn_ack(self, connection):
        self.syn_acks.append(connection)

    def send_reset(self, connection):
        self.resets.append(connection)

    def send_response(self, connection, payload_size):
        self.responses.append((connection, payload_size))


def _flow_key(port: int) -> FlowKey:
    return FlowKey(
        IPv6Address.parse("fd00:200::1"),
        port,
        IPv6Address.parse("fd00:300::1"),
        80,
    )


def _make_server(simulator, num_workers=2, backlog=2, demand=0.1, cores=2):
    cpu = ProcessorSharingCPU(simulator, num_cores=cores)
    server = HTTPServerInstance(
        simulator=simulator,
        name="apache-test",
        cpu=cpu,
        num_workers=num_workers,
        backlog_capacity=backlog,
        demand_lookup=lambda request_id: demand,
    )
    transport = FakeTransport()
    server.bind_transport(transport)
    return server, transport


class TestConnectionAdmission:
    def test_syn_produces_syn_ack(self, simulator):
        server, transport = _make_server(simulator)
        server.handle_connection_request(_flow_key(1000), request_id=1)
        assert len(transport.syn_acks) == 1
        assert server.open_connections == 1

    def test_backlog_overflow_produces_reset(self, simulator):
        # 2 workers + backlog 2: the worker pool drains the backlog as
        # connections arrive, so room runs out after 4 connections.
        server, transport = _make_server(simulator, num_workers=2, backlog=2)
        for port in range(1000, 1005):
            server.handle_connection_request(_flow_key(port), request_id=port)
        assert len(transport.resets) == 1
        assert server.stats.connections_reset == 1
        assert len(transport.syn_acks) == 4

    def test_missing_transport_raises(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        server = HTTPServerInstance(
            simulator, "no-transport", cpu, num_workers=1, demand_lookup=lambda r: 0.1
        )
        with pytest.raises(ServerError):
            server.handle_connection_request(_flow_key(1000), request_id=1)


class TestServiceLifecycle:
    def test_request_is_served_and_answered(self, simulator):
        server, transport = _make_server(simulator, demand=0.25)
        key = _flow_key(1000)
        server.handle_connection_request(key, request_id=1)
        assert server.handle_request_data(key, request_id=1) is True
        simulator.run()
        assert len(transport.responses) == 1
        assert server.stats.requests_served == 1
        assert simulator.now == pytest.approx(0.25, abs=1e-9)
        assert server.busy_threads == 0
        assert server.open_connections == 0

    def test_busy_threads_while_serving(self, simulator):
        server, transport = _make_server(simulator, demand=1.0)
        key = _flow_key(1000)
        server.handle_connection_request(key, request_id=1)
        server.handle_request_data(key, request_id=1)
        assert server.busy_threads == 1

    def test_request_data_for_unknown_flow_is_ignored(self, simulator):
        server, transport = _make_server(simulator)
        assert server.handle_request_data(_flow_key(9999), request_id=1) is False

    def test_connection_waits_for_worker(self, simulator):
        # One worker, two connections: the second is served after the first.
        server, transport = _make_server(simulator, num_workers=1, backlog=4, demand=0.5)
        first, second = _flow_key(1000), _flow_key(1001)
        server.handle_connection_request(first, request_id=1)
        server.handle_connection_request(second, request_id=2)
        server.handle_request_data(first, request_id=1)
        server.handle_request_data(second, request_id=2)
        assert server.busy_threads == 1
        assert server.backlog.depth == 1
        simulator.run()
        assert simulator.now == pytest.approx(1.0, abs=1e-9)
        assert server.stats.requests_served == 2

    def test_request_before_worker_assignment_starts_on_accept(self, simulator):
        server, transport = _make_server(simulator, num_workers=1, backlog=4, demand=0.2)
        first, second = _flow_key(1000), _flow_key(1001)
        server.handle_connection_request(first, request_id=1)
        server.handle_request_data(first, request_id=1)
        # The second connection's request arrives while it is still queued.
        server.handle_connection_request(second, request_id=2)
        server.handle_request_data(second, request_id=2)
        simulator.run()
        assert server.stats.requests_served == 2

    def test_processor_sharing_stretches_concurrent_requests(self, simulator):
        # 4 concurrent 0.5 s requests on a 2-core box -> 1.0 s each.
        server, transport = _make_server(simulator, num_workers=8, backlog=8, demand=0.5, cores=2)
        for index in range(4):
            key = _flow_key(1000 + index)
            server.handle_connection_request(key, request_id=index)
            server.handle_request_data(key, request_id=index)
        simulator.run()
        assert simulator.now == pytest.approx(1.0, abs=1e-9)

    def test_demand_lookup_required(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        server = HTTPServerInstance(simulator, "no-demand", cpu, num_workers=1)
        server.bind_transport(FakeTransport())
        key = _flow_key(1000)
        server.handle_connection_request(key, request_id=1)
        with pytest.raises(ServerError):
            server.handle_request_data(key, request_id=1)

    def test_non_positive_demand_rejected(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        server = HTTPServerInstance(
            simulator, "bad-demand", cpu, num_workers=1, demand_lookup=lambda r: 0.0
        )
        server.bind_transport(FakeTransport())
        key = _flow_key(1000)
        server.handle_connection_request(key, request_id=1)
        with pytest.raises(ServerError):
            server.handle_request_data(key, request_id=1)

    def test_connection_for_flow(self, simulator):
        server, transport = _make_server(simulator)
        key = _flow_key(1000)
        server.handle_connection_request(key, request_id=1)
        connection = server.connection_for_flow(key)
        assert connection is not None
        assert connection.request_id == 1
        assert server.connection_for_flow(_flow_key(2000)) is None

    def test_stats_accumulate(self, simulator):
        server, transport = _make_server(simulator, num_workers=4, backlog=8, demand=0.1)
        for index in range(3):
            key = _flow_key(1000 + index)
            server.handle_connection_request(key, request_id=index)
            server.handle_request_data(key, request_id=index)
        simulator.run()
        assert server.stats.connections_received == 3
        assert server.stats.requests_served == 3
        assert server.stats.total_service_demand == pytest.approx(0.3)
        assert server.stats.peak_concurrent_connections == 3


class TestRequestTimeout:
    def test_abandoned_connection_frees_its_worker(self, simulator):
        server, transport = _make_server(simulator, num_workers=1)
        server.request_timeout = 2.0
        server.handle_connection_request(_flow_key(1000), request_id=1)
        assert server.busy_threads == 1
        simulator.run()  # the request payload never arrives
        assert server.stats.connections_timed_out == 1
        assert len(transport.resets) == 1
        assert server.busy_threads == 0
        assert server.open_connections == 0

    def test_timely_request_is_not_timed_out(self, simulator):
        server, transport = _make_server(simulator, num_workers=1, demand=0.05)
        server.request_timeout = 2.0
        server.handle_connection_request(_flow_key(1000), request_id=1)
        simulator.schedule_at(
            1.0, lambda: server.handle_request_data(_flow_key(1000), 1), label="data"
        )
        simulator.run()
        assert server.stats.connections_timed_out == 0
        assert transport.resets == []
        assert len(transport.responses) == 1

    def test_freed_worker_picks_up_the_backlog(self, simulator):
        server, transport = _make_server(simulator, num_workers=1, backlog=2)
        server.request_timeout = 1.0
        # First connection never sends its request; the second does.
        server.handle_connection_request(_flow_key(1000), request_id=1)
        server.handle_connection_request(_flow_key(1001), request_id=2)
        server.handle_request_data(_flow_key(1001), 2)
        simulator.run()
        assert server.stats.connections_timed_out == 1
        assert len(transport.responses) == 1  # the second connection served

    def test_invalid_timeout_rejected(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        with pytest.raises(ServerError):
            HTTPServerInstance(
                simulator, "bad", cpu, num_workers=1,
                demand_lookup=lambda r: 0.1, request_timeout=0.0,
            )


class TestLoadShedding:
    def _shed_server(self, simulator, num_workers=1, backlog=4, shed=2):
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        server = HTTPServerInstance(
            simulator=simulator,
            name="shed-test",
            cpu=cpu,
            num_workers=num_workers,
            backlog_capacity=backlog,
            demand_lookup=lambda request_id: 1.0,
            shed_watermark=shed,
        )
        transport = FakeTransport()
        server.bind_transport(transport)
        return server, transport

    def test_sheds_above_the_watermark(self, simulator):
        # 1 worker, backlog 4, shed at depth 2: the first connection
        # grabs the worker, the next two fill the backlog to the
        # watermark, the fourth is shed even though the backlog still
        # has room.
        server, transport = self._shed_server(simulator)
        for port in range(1000, 1004):
            server.handle_connection_request(_flow_key(port), request_id=port)
        assert server.stats.connections_shed == 1
        assert server.stats.connections_reset == 0
        assert len(transport.resets) == 1
        assert len(transport.syn_acks) == 3

    def test_below_the_watermark_admits_normally(self, simulator):
        server, transport = self._shed_server(simulator)
        for port in range(1000, 1003):
            server.handle_connection_request(_flow_key(port), request_id=port)
        assert server.stats.connections_shed == 0
        assert transport.resets == []
        assert len(transport.syn_acks) == 3

    def test_shed_is_not_counted_as_overflow(self, simulator):
        # Watermark equal to capacity: shedding fires exactly where the
        # overflow reset would, and claims the drop for itself.
        server, transport = self._shed_server(simulator, backlog=2, shed=2)
        for port in range(1000, 1005):
            server.handle_connection_request(_flow_key(port), request_id=port)
        assert server.stats.connections_shed == 2
        assert server.stats.connections_reset == 0

    def test_no_watermark_keeps_overflow_semantics(self, simulator):
        server, transport = _make_server(simulator, num_workers=1, backlog=2)
        for port in range(1000, 1005):
            server.handle_connection_request(_flow_key(port), request_id=port)
        assert server.stats.connections_shed == 0
        assert server.stats.connections_reset == 2

    def test_invalid_watermark_rejected(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        with pytest.raises(ServerError):
            HTTPServerInstance(
                simulator, "bad-shed", cpu, num_workers=1,
                demand_lookup=lambda r: 0.1, shed_watermark=0,
            )
