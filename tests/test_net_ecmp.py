"""Tests for the per-packet ECMP edge router (:mod:`repro.net.ecmp`)."""

import pytest

from repro.errors import RoutingError
from repro.net.addressing import IPv6Address
from repro.net.ecmp import EcmpEdgeRouter, five_tuple_key
from repro.net.fabric import LANFabric
from repro.net.packet import FlowKey, Packet, TCPFlag, TCPSegment, make_syn
from repro.net.router import NetworkNode


def _addr(text):
    return IPv6Address.parse(text)


STEERING = _addr("fd00:400::1")
VIP = _addr("fd00:300::1")
CLIENT = _addr("fd00:200::1")


def _flow(port, src=CLIENT, dst=VIP):
    return FlowKey(src, port, dst, 80)


class SinkNode(NetworkNode):
    """Next hop that records every packet handed to it."""

    def __init__(self, simulator, name):
        super().__init__(simulator, name)
        self.seen = []

    def handle_packet(self, packet):
        self.seen.append(packet)


def _router(simulator, num_hops=4, scheme="rendezvous"):
    router = EcmpEdgeRouter(simulator, "edge", STEERING, hash_scheme=scheme)
    hops = [SinkNode(simulator, f"hop-{index}") for index in range(num_hops)]
    for hop in hops:
        router.add_next_hop(hop)
    return router, hops


class TestHashingStability:
    def test_same_flow_always_maps_to_the_same_hop(self, simulator):
        router, _ = _router(simulator)
        for port in range(200):
            flow = _flow(port)
            assert router.next_hop_for(flow) is router.next_hop_for(flow)

    def test_flows_spread_over_all_hops(self, simulator):
        router, hops = _router(simulator)
        owners = {router.next_hop_for(_flow(port)).name for port in range(500)}
        assert owners == {hop.name for hop in hops}

    def test_rendezvous_spread_is_roughly_uniform(self, simulator):
        router, hops = _router(simulator)
        counts = {hop.name: 0 for hop in hops}
        for port in range(2_000):
            counts[router.next_hop_for(_flow(port)).name] += 1
        for count in counts.values():
            assert 0.15 < count / 2_000 < 0.35  # 1/4 each, generous slack

    def test_forward_and_reverse_tuples_hash_independently(self, simulator):
        router, _ = _router(simulator)
        differing = sum(
            1
            for port in range(400)
            if router.next_hop_for(_flow(port))
            is not router.next_hop_for(_flow(port).reversed())
        )
        # With 4 hops, ~3/4 of reverse tuples land elsewhere.
        assert differing > 200


class TestMembershipDisruption:
    def test_rendezvous_removal_remaps_only_the_victims_flows(self, simulator):
        router, hops = _router(simulator, num_hops=5, scheme="rendezvous")
        flows = [_flow(port) for port in range(2_000)]
        before = {flow: router.next_hop_for(flow).name for flow in flows}
        victim = hops[2].name
        assert router.remove_next_hop(victim)
        after = {flow: router.next_hop_for(flow).name for flow in flows}
        moved_without_reason = [
            flow for flow in flows if before[flow] != victim and before[flow] != after[flow]
        ]
        # HRW property: flows not owned by the victim never move.
        assert moved_without_reason == []
        assert all(after[flow] != victim for flow in flows)

    def test_modulo_removal_remaps_most_flows(self, simulator):
        router, hops = _router(simulator, num_hops=5, scheme="modulo")
        flows = [_flow(port) for port in range(2_000)]
        before = {flow: router.next_hop_for(flow).name for flow in flows}
        router.remove_next_hop(hops[2].name)
        after = {flow: router.next_hop_for(flow).name for flow in flows}
        remapped = sum(1 for flow in flows if before[flow] != after[flow])
        # The naive scheme renumbers the list: ~4/5 of flows move.
        assert remapped / len(flows) > 0.5

    def test_addition_is_counted_and_duplicates_rejected(self, simulator):
        router, hops = _router(simulator, num_hops=2)
        assert router.stats.membership_changes == 2
        with pytest.raises(RoutingError):
            router.add_next_hop(hops[0])
        assert not router.remove_next_hop("nope")

    def test_empty_group_rejected(self, simulator):
        router = EcmpEdgeRouter(simulator, "edge", STEERING)
        with pytest.raises(RoutingError):
            router.next_hop_for(_flow(1))
        assert router.owner_of_forward_flow(_flow(1)) is None

    def test_unknown_scheme_rejected(self, simulator):
        with pytest.raises(RoutingError):
            EcmpEdgeRouter(simulator, "edge", STEERING, hash_scheme="magic")


class TestForwarding:
    def test_vip_packets_are_spread_and_counted(self, simulator):
        fabric = LANFabric(simulator, latency=1e-6)
        router, hops = _router(simulator)
        router.register_vip(VIP)
        router.attach(fabric)
        for port in range(1024, 1074):
            fabric.send(make_syn(CLIENT, VIP, port, 80))
        simulator.run()
        assert router.stats.forward_packets == 50
        assert sum(len(hop.seen) for hop in hops) == 50
        assert sum(router.stats.per_next_hop.values()) == 50

    def test_steering_packets_use_the_return_tuple(self, simulator):
        fabric = LANFabric(simulator, latency=1e-6)
        router, hops = _router(simulator)
        router.register_vip(VIP)
        router.attach(fabric)
        packet = Packet(
            src=VIP,
            dst=STEERING,
            tcp=TCPSegment(src_port=80, dst_port=2048, flags=TCPFlag.SYN | TCPFlag.ACK),
        )
        expected = router.next_hop_for(packet.flow_key())
        fabric.send(packet)
        simulator.run()
        assert router.stats.return_packets == 1
        assert expected.seen == [packet]

    def test_unknown_destination_is_dropped(self, simulator):
        fabric = LANFabric(simulator, latency=1e-6)
        router, _ = _router(simulator)
        router.attach(fabric)
        router.receive(make_syn(CLIENT, STEERING + 99, 1024, 80))
        assert router.stats.packets_dropped == 1

    def test_five_tuple_key_includes_protocol_and_both_endpoints(self):
        key = five_tuple_key(_flow(1234))
        assert key.startswith("tcp|")
        assert str(CLIENT) in key and str(VIP) in key and "1234" in key
