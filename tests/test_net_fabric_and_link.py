"""Unit tests for the LAN fabric, links and routing tables."""

import pytest

from repro.errors import NetworkError, RoutingError
from repro.net.addressing import IPv6Address, IPv6Prefix
from repro.net.fabric import LANFabric
from repro.net.link import Link
from repro.net.packet import make_syn
from repro.net.router import LocalSIDTable, NetworkNode, RoutingTable


class RecordingNode(NetworkNode):
    """Test node that records every packet it receives."""

    def __init__(self, simulator, name):
        super().__init__(simulator, name)
        self.received = []

    def handle_packet(self, packet):
        self.received.append(packet)


def _addr(text):
    return IPv6Address.parse(text)


@pytest.fixture
def fabric_setup(simulator):
    fabric = LANFabric(simulator, latency=0.001)
    a = RecordingNode(simulator, "a")
    a.add_address(_addr("fd00:100::1"))
    b = RecordingNode(simulator, "b")
    b.add_address(_addr("fd00:100::2"))
    a.attach(fabric)
    b.attach(fabric)
    return fabric, a, b


class TestRoutingTable:
    def test_longest_prefix_match_wins(self):
        table = RoutingTable()
        table.add_route(IPv6Prefix.parse("fd00::/16"), "coarse")
        table.add_route(IPv6Prefix.parse("fd00:100::/32"), "fine")
        assert table.lookup(_addr("fd00:100::1")) == "fine"
        assert table.lookup(_addr("fd00:200::1")) == "coarse"

    def test_lookup_miss_raises(self):
        table = RoutingTable()
        with pytest.raises(RoutingError):
            table.lookup(_addr("2001:db8::1"))

    def test_lookup_or_none(self):
        table = RoutingTable()
        assert table.lookup_or_none(_addr("2001:db8::1")) is None

    def test_replacing_a_route(self):
        table = RoutingTable()
        prefix = IPv6Prefix.parse("fd00:100::/32")
        table.add_route(prefix, "old")
        table.add_route(prefix, "new")
        assert table.lookup(_addr("fd00:100::1")) == "new"
        assert len(table) == 1

    def test_remove_route(self):
        table = RoutingTable()
        prefix = IPv6Prefix.parse("fd00:100::/32")
        table.add_route(prefix, "x")
        assert table.remove_route(prefix) is True
        assert table.remove_route(prefix) is False

    def test_routes_listed_most_specific_first(self):
        table = RoutingTable()
        table.add_route(IPv6Prefix.parse("fd00::/16"), "coarse")
        table.add_route(IPv6Prefix.parse("fd00:100::/32"), "fine")
        assert [route.next_hop for route in table.routes()] == ["fine", "coarse"]


class TestLocalSIDTable:
    def test_register_and_lookup(self):
        table = LocalSIDTable()
        table.register(_addr("fd00:100::1"), lambda packet: True)
        assert _addr("fd00:100::1") in table
        assert table.lookup(_addr("fd00:100::1")) is not None
        assert table.lookup(_addr("fd00:100::2")) is None

    def test_unregister(self):
        table = LocalSIDTable()
        table.register(_addr("fd00:100::1"), lambda packet: True)
        table.unregister(_addr("fd00:100::1"))
        assert len(table) == 0


class TestLANFabric:
    def test_delivery_by_exact_address(self, simulator, fabric_setup):
        fabric, a, b = fabric_setup
        packet = make_syn(a.primary_address, b.primary_address, 1000, 80)
        a.send(packet)
        simulator.run()
        assert len(b.received) == 1
        assert b.packets_received == 1
        assert a.packets_sent == 1

    def test_delivery_takes_latency(self, simulator, fabric_setup):
        fabric, a, b = fabric_setup
        arrival_times = []
        original = b.handle_packet
        b.handle_packet = lambda packet: (arrival_times.append(simulator.now), original(packet))
        a.send(make_syn(a.primary_address, b.primary_address, 1000, 80))
        simulator.run()
        assert arrival_times == [pytest.approx(0.001)]

    def test_prefix_advertisement_routes_unknown_addresses(self, simulator, fabric_setup):
        fabric, a, b = fabric_setup
        fabric.advertise_prefix(IPv6Prefix.parse("fd00:300::/32"), b)
        a.send(make_syn(a.primary_address, _addr("fd00:300::77"), 1000, 80))
        simulator.run()
        assert len(b.received) == 1

    def test_exact_binding_wins_over_prefix(self, simulator, fabric_setup):
        fabric, a, b = fabric_setup
        fabric.advertise_prefix(IPv6Prefix.parse("fd00:100::/32"), b)
        # fd00:100::1 is bound exactly to node a, so a self-addressed
        # packet from b must go to a even though the prefix points at b.
        b.send(make_syn(b.primary_address, a.primary_address, 1000, 80))
        simulator.run()
        assert len(a.received) == 1

    def test_unroutable_packet_is_dropped_and_counted(self, simulator, fabric_setup):
        fabric, a, b = fabric_setup
        a.send(make_syn(a.primary_address, _addr("2001:db8::1"), 1000, 80))
        simulator.run()
        assert fabric.stats.packets_dropped_no_route == 1
        assert b.received == []

    def test_strict_fabric_raises_on_unroutable(self, simulator):
        fabric = LANFabric(simulator, strict=True)
        node = RecordingNode(simulator, "only")
        node.add_address(_addr("fd00:100::1"))
        node.attach(fabric)
        with pytest.raises(RoutingError):
            node.send(make_syn(node.primary_address, _addr("2001:db8::1"), 1000, 80))

    def test_duplicate_address_binding_rejected(self, simulator, fabric_setup):
        fabric, a, b = fabric_setup
        with pytest.raises(RoutingError):
            fabric.bind_address(a.primary_address, b)

    def test_duplicate_node_name_rejected(self, simulator, fabric_setup):
        fabric, a, b = fabric_setup
        impostor = RecordingNode(simulator, "a")
        impostor.add_address(_addr("fd00:100::99"))
        with pytest.raises(RoutingError):
            impostor.attach(fabric)

    def test_taps_observe_deliveries(self, simulator, fabric_setup):
        fabric, a, b = fabric_setup
        seen = []
        fabric.add_tap(lambda packet, origin, destination: seen.append((origin, destination)))
        a.send(make_syn(a.primary_address, b.primary_address, 1000, 80))
        simulator.run()
        assert seen == [("a", "b")]

    def test_stats_per_node(self, simulator, fabric_setup):
        fabric, a, b = fabric_setup
        for _ in range(3):
            a.send(make_syn(a.primary_address, b.primary_address, 1000, 80))
        simulator.run()
        assert fabric.stats.deliveries_per_node["b"] == 3
        assert fabric.stats.packets_delivered == 3

    def test_node_lookup_by_name(self, fabric_setup):
        fabric, a, b = fabric_setup
        assert fabric.node("a") is a
        with pytest.raises(RoutingError):
            fabric.node("missing")

    def test_send_unattached_node_raises(self, simulator):
        node = RecordingNode(simulator, "lonely")
        node.add_address(_addr("fd00:100::1"))
        with pytest.raises(RoutingError):
            node.send(make_syn(node.primary_address, _addr("fd00:100::2"), 1000, 80))


class TestLink:
    def test_infinite_bandwidth_delivers_after_latency(self, simulator):
        a = RecordingNode(simulator, "a")
        b = RecordingNode(simulator, "b")
        link = Link(simulator, a, b, latency=0.002)
        packet = make_syn(_addr("fd00::1"), _addr("fd00::2"), 1000, 80)
        assert link.transmit(a, packet) is True
        simulator.run()
        assert len(b.received) == 1
        assert simulator.now == pytest.approx(0.002)

    def test_serialization_delay_with_finite_bandwidth(self, simulator):
        a = RecordingNode(simulator, "a")
        b = RecordingNode(simulator, "b")
        # 1 Mbit/s: a 60-byte packet takes 480 microseconds to serialize.
        link = Link(simulator, a, b, latency=0.0, bandwidth_bps=1e6)
        link.transmit(a, make_syn(_addr("fd00::1"), _addr("fd00::2"), 1000, 80))
        simulator.run()
        assert simulator.now == pytest.approx(60 * 8 / 1e6)

    def test_queue_overflow_drops(self, simulator):
        a = RecordingNode(simulator, "a")
        b = RecordingNode(simulator, "b")
        link = Link(simulator, a, b, latency=0.0, bandwidth_bps=1e3, queue_capacity=2)
        results = [
            link.transmit(a, make_syn(_addr("fd00::1"), _addr("fd00::2"), 1000, 80))
            for _ in range(4)
        ]
        assert results == [True, True, False, False]
        assert link.stats[1].packets_dropped == 2

    def test_other_end(self, simulator):
        a = RecordingNode(simulator, "a")
        b = RecordingNode(simulator, "b")
        link = Link(simulator, a, b)
        assert link.other_end(a) is b
        assert link.other_end(b) is a
        stranger = RecordingNode(simulator, "c")
        with pytest.raises(NetworkError):
            link.other_end(stranger)

    def test_foreign_sender_rejected(self, simulator):
        a = RecordingNode(simulator, "a")
        b = RecordingNode(simulator, "b")
        c = RecordingNode(simulator, "c")
        link = Link(simulator, a, b)
        with pytest.raises(NetworkError):
            link.transmit(c, make_syn(_addr("fd00::1"), _addr("fd00::2"), 1000, 80))


class TestDetachAccounting:
    """The unified drop counters of the ISSUE's accounting satellite."""

    def test_fabric_detach_midflight_counts_sink_detached(
        self, simulator, fabric_setup
    ):
        fabric, a, b = fabric_setup
        a.send(make_syn(a.primary_address, b.primary_address, 1000, 80))
        # The packet is in flight (latency 1 ms); the sink detaches
        # before it lands.
        fabric.detach_node(b)
        simulator.run()
        assert b.received == []
        assert fabric.stats.packets_dropped_sink_detached == 1
        assert fabric.stats.packets_dropped_no_route == 0

    def test_fabric_send_after_detach_is_no_route(self, simulator, fabric_setup):
        fabric, a, b = fabric_setup
        target = b.primary_address
        fabric.detach_node(b)
        a.send(make_syn(a.primary_address, target, 1000, 80))
        simulator.run()
        # The address is unbound at send time, so the drop is a routing
        # miss, not a detached sink (documented in docs/architecture.md).
        assert fabric.stats.packets_dropped_no_route == 1
        assert fabric.stats.packets_dropped_sink_detached == 0

    def test_fabric_packets_dropped_is_the_unified_total(
        self, simulator, fabric_setup
    ):
        fabric, a, b = fabric_setup
        target = b.primary_address
        a.send(make_syn(a.primary_address, b.primary_address, 1000, 80))
        fabric.detach_node(b)
        a.send(make_syn(a.primary_address, target, 1000, 80))
        simulator.run()
        assert fabric.stats.packets_dropped == 2

    def test_fabric_reattach_makes_the_sink_live_again(
        self, simulator, fabric_setup
    ):
        fabric, a, b = fabric_setup
        fabric.detach_node(b)
        b.attach(fabric)
        a.send(make_syn(a.primary_address, b.primary_address, 1000, 80))
        simulator.run()
        assert len(b.received) == 1
        assert fabric.stats.packets_dropped_sink_detached == 0

    def test_fabric_detach_unknown_node_rejected(self, simulator, fabric_setup):
        fabric, a, b = fabric_setup
        stranger = RecordingNode(simulator, "stranger")
        with pytest.raises(NetworkError):
            fabric.detach_node(stranger)

    def test_link_send_after_detach_counts_sink_detached(self, simulator):
        a = RecordingNode(simulator, "a")
        b = RecordingNode(simulator, "b")
        link = Link(simulator, a, b, latency=0.001)
        link.detach(b)
        assert link.transmit(a, make_syn(_addr("fd00::1"), _addr("fd00::2"), 1000, 80)) is False
        stats = link.stats[1]
        assert stats.packets_dropped == 1
        assert stats.packets_dropped_sink_detached == 1
        assert stats.packets_dropped_queue_full == 0

    def test_link_detach_midflight_drops_on_arrival(self, simulator):
        a = RecordingNode(simulator, "a")
        b = RecordingNode(simulator, "b")
        link = Link(simulator, a, b, latency=0.001)
        assert link.transmit(a, make_syn(_addr("fd00::1"), _addr("fd00::2"), 1000, 80)) is True
        link.detach(b)
        simulator.run()
        assert b.received == []
        assert link.stats[1].packets_dropped_sink_detached == 1

    def test_link_queue_full_and_detached_counted_separately(self, simulator):
        a = RecordingNode(simulator, "a")
        b = RecordingNode(simulator, "b")
        link = Link(simulator, a, b, latency=0.0, bandwidth_bps=1e3, queue_capacity=1)
        syn = lambda: make_syn(_addr("fd00::1"), _addr("fd00::2"), 1000, 80)
        link.transmit(a, syn())
        link.transmit(a, syn())  # tail-drop
        link.detach(b)
        link.transmit(a, syn())  # detached at send time
        simulator.run()
        stats = link.stats[1]
        assert stats.packets_dropped_queue_full == 1
        # One send-time drop plus the in-flight packet dropped on arrival.
        assert stats.packets_dropped_sink_detached == 2
        assert stats.packets_dropped == 3

    def test_link_detach_foreign_node_rejected(self, simulator):
        a = RecordingNode(simulator, "a")
        b = RecordingNode(simulator, "b")
        link = Link(simulator, a, b)
        with pytest.raises(NetworkError):
            link.detach(RecordingNode(simulator, "c"))
