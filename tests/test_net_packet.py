"""Unit tests for the packet and TCP-segment value objects."""

import pytest

from repro.errors import NetworkError
from repro.net.addressing import IPv6Address
from repro.net.packet import (
    IPV6_HEADER_SIZE,
    TCP_HEADER_SIZE,
    FlowKey,
    Packet,
    TCPFlag,
    TCPSegment,
    make_syn,
    reply_ports,
)
from repro.net.srh import SegmentRoutingHeader


def _addr(text: str) -> IPv6Address:
    return IPv6Address.parse(text)


class TestTCPSegment:
    def test_flag_queries(self):
        segment = TCPSegment(src_port=1000, dst_port=80, flags=TCPFlag.SYN | TCPFlag.ACK)
        assert segment.has(TCPFlag.SYN)
        assert segment.has(TCPFlag.ACK)
        assert not segment.has(TCPFlag.RST)

    def test_invalid_ports_rejected(self):
        with pytest.raises(NetworkError):
            TCPSegment(src_port=0, dst_port=80)
        with pytest.raises(NetworkError):
            TCPSegment(src_port=1000, dst_port=70000)

    def test_negative_payload_rejected(self):
        with pytest.raises(NetworkError):
            TCPSegment(src_port=1000, dst_port=80, payload_size=-1)

    def test_size_includes_payload(self):
        segment = TCPSegment(src_port=1000, dst_port=80, payload_size=100)
        assert segment.size_bytes() == TCP_HEADER_SIZE + 100


class TestFlowKey:
    def test_reversed_swaps_endpoints(self):
        key = FlowKey(_addr("fd00:200::1"), 1234, _addr("fd00:300::1"), 80)
        reverse = key.reversed()
        assert reverse.src_address == _addr("fd00:300::1")
        assert reverse.src_port == 80
        assert reverse.dst_address == _addr("fd00:200::1")
        assert reverse.dst_port == 1234

    def test_double_reverse_is_identity(self):
        key = FlowKey(_addr("fd00:200::1"), 1234, _addr("fd00:300::1"), 80)
        assert key.reversed().reversed() == key

    def test_hashable(self):
        key = FlowKey(_addr("fd00:200::1"), 1234, _addr("fd00:300::1"), 80)
        same = FlowKey(_addr("fd00:200::1"), 1234, _addr("fd00:300::1"), 80)
        assert len({key, same}) == 1


class TestPacket:
    def test_make_syn(self):
        packet = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80, request_id=7)
        assert packet.tcp.has(TCPFlag.SYN)
        assert packet.tcp.request_id == 7
        assert packet.dst == _addr("fd00:300::1")

    def test_flow_key_uses_final_destination_with_srh(self):
        packet = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        srh = SegmentRoutingHeader.from_traversal(
            [_addr("fd00:100::1"), _addr("fd00:100::2"), _addr("fd00:300::1")]
        )
        packet.attach_srh(srh)
        key = packet.flow_key()
        assert key.dst_address == _addr("fd00:300::1")
        assert packet.dst == _addr("fd00:100::1")

    def test_attach_srh_points_destination_at_active_segment(self):
        packet = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        srh = SegmentRoutingHeader.from_traversal(
            [_addr("fd00:100::1"), _addr("fd00:300::1")]
        )
        packet.attach_srh(srh)
        assert packet.dst == _addr("fd00:100::1")

    def test_advance_srh_updates_destination(self):
        packet = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        packet.attach_srh(
            SegmentRoutingHeader.from_traversal(
                [_addr("fd00:100::1"), _addr("fd00:100::2"), _addr("fd00:300::1")]
            )
        )
        packet.advance_srh()
        assert packet.dst == _addr("fd00:100::2")

    def test_set_segments_left_updates_destination(self):
        packet = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        packet.attach_srh(
            SegmentRoutingHeader.from_traversal(
                [_addr("fd00:100::1"), _addr("fd00:100::2"), _addr("fd00:300::1")]
            )
        )
        packet.set_segments_left(0)
        assert packet.dst == _addr("fd00:300::1")

    def test_advance_without_srh_raises(self):
        packet = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        with pytest.raises(NetworkError):
            packet.advance_srh()

    def test_constructor_enforces_active_segment_invariant(self):
        srh = SegmentRoutingHeader.from_traversal(
            [_addr("fd00:100::1"), _addr("fd00:300::1")]
        )
        with pytest.raises(NetworkError):
            Packet(
                src=_addr("fd00:200::1"),
                dst=_addr("fd00:300::1"),  # wrong: active segment is fd00:100::1
                tcp=TCPSegment(src_port=1, dst_port=80),
                srh=srh,
            )

    def test_detach_srh_keeps_destination(self):
        packet = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        packet.attach_srh(
            SegmentRoutingHeader.from_traversal(
                [_addr("fd00:100::1"), _addr("fd00:300::1")]
            )
        )
        packet.detach_srh()
        assert packet.srh is None
        assert packet.dst == _addr("fd00:100::1")

    def test_hop_limit_decrements_and_expires(self):
        packet = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        packet.hop_limit = 2
        packet.decrement_hop_limit()
        with pytest.raises(NetworkError):
            packet.decrement_hop_limit()

    def test_size_includes_srh(self):
        packet = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        base = packet.size_bytes()
        packet.attach_srh(
            SegmentRoutingHeader.from_traversal(
                [_addr("fd00:100::1"), _addr("fd00:300::1")]
            )
        )
        assert packet.size_bytes() > base
        assert base == IPV6_HEADER_SIZE + TCP_HEADER_SIZE

    def test_copy_gets_new_id_and_independent_srh(self):
        packet = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        packet.attach_srh(
            SegmentRoutingHeader.from_traversal(
                [_addr("fd00:100::1"), _addr("fd00:100::2"), _addr("fd00:300::1")]
            )
        )
        clone = packet.copy()
        assert clone.packet_id != packet.packet_id
        packet.advance_srh()
        assert clone.srh.segments_left == 2

    def test_unique_packet_ids(self):
        first = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        second = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        assert first.packet_id != second.packet_id

    def test_reply_ports(self):
        packet = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        assert reply_ports(packet) == (80, 1234)

    def test_describe_mentions_flags_and_endpoints(self):
        packet = make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)
        text = packet.describe()
        assert "SYN" in text
        assert "fd00:200::1" in text


def _fresh_flow_key(packet: Packet) -> FlowKey:
    """Compute the flow key from first principles, bypassing the cache."""
    return FlowKey(
        src_address=packet.src,
        src_port=packet.tcp.src_port,
        dst_address=packet.final_destination,
        dst_port=packet.tcp.dst_port,
    )


class TestFlowKeyCache:
    """``Packet.flow_key()`` is cached; every sanctioned mutation must
    leave it equal to a freshly computed key."""

    def _packet(self) -> Packet:
        return make_syn(_addr("fd00:200::1"), _addr("fd00:300::1"), 1234, 80)

    def _srh(self) -> SegmentRoutingHeader:
        return SegmentRoutingHeader.from_traversal(
            [_addr("fd00:100::1"), _addr("fd00:100::2"), _addr("fd00:300::1")]
        )

    def test_repeated_calls_return_the_same_object(self):
        packet = self._packet()
        assert packet.flow_key() is packet.flow_key()

    def test_attach_srh_invalidates(self):
        packet = self._packet()
        before = packet.flow_key()
        packet.attach_srh(
            SegmentRoutingHeader.from_traversal(
                [_addr("fd00:100::1"), _addr("fd00:300::2")]
            )
        )
        assert packet.flow_key() == _fresh_flow_key(packet)
        assert packet.flow_key().dst_address == _addr("fd00:300::2")
        assert packet.flow_key() != before

    def test_advance_and_set_segments_left_preserve_the_key(self):
        packet = self._packet()
        packet.attach_srh(self._srh())
        key = packet.flow_key()
        packet.advance_srh()
        assert packet.flow_key() == _fresh_flow_key(packet) == key
        packet.set_segments_left(0)
        assert packet.flow_key() == _fresh_flow_key(packet) == key

    def test_detach_srh_invalidates(self):
        packet = self._packet()
        packet.attach_srh(self._srh())
        assert packet.flow_key().dst_address == _addr("fd00:300::1")
        packet.detach_srh()  # dst is now the mid-chain active segment
        assert packet.flow_key() == _fresh_flow_key(packet)
        assert packet.flow_key().dst_address == _addr("fd00:100::1")

    def test_dst_assignment_invalidates(self):
        packet = self._packet()
        assert packet.flow_key().dst_address == _addr("fd00:300::1")
        packet.dst = _addr("fd00:200::9")
        assert packet.flow_key() == _fresh_flow_key(packet)
        assert packet.flow_key().dst_address == _addr("fd00:200::9")

    def test_copy_is_cache_independent(self):
        packet = self._packet()
        packet.attach_srh(self._srh())
        packet.flow_key()  # warm the cache before copying
        clone = packet.copy()
        assert clone.flow_key() == _fresh_flow_key(clone)
        # Mutating the original must not leak into the clone's key.
        packet.detach_srh()
        packet.dst = _addr("fd00:200::9")
        assert clone.flow_key() == _fresh_flow_key(clone)
        assert clone.flow_key().dst_address == _addr("fd00:300::1")
        assert packet.flow_key().dst_address == _addr("fd00:200::9")

    def test_copy_without_warm_cache_computes_its_own_key(self):
        packet = self._packet()
        clone = packet.copy()
        packet.dst = _addr("fd00:200::9")
        assert clone.flow_key() == _fresh_flow_key(clone)
        assert clone.flow_key().dst_address == _addr("fd00:300::1")
