"""Tests for the LB-churn resilience experiment family."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ChurnEvent, ResilienceConfig, TestbedConfig
from repro.experiments.resilience_experiment import (
    make_resilience_trace,
    render_resilience_table,
    resilience_saturation_rate,
    run_resilience_comparison,
    run_resilience_once,
)


def _small_config(**overrides):
    defaults = dict(
        testbed=TestbedConfig(
            num_servers=6,
            workers_per_server=8,
            num_load_balancers=4,
            request_spread=1.5,
            request_chunks=4,
        ),
        load_factor=0.6,
        num_queries=800,
        service_mean=0.05,
    )
    defaults.update(overrides)
    return ResilienceConfig(**defaults)


class TestConfigValidation:
    def test_needs_a_tier(self):
        with pytest.raises(ExperimentError):
            ResilienceConfig(testbed=TestbedConfig(num_load_balancers=1))

    def test_churn_event_bounds(self):
        with pytest.raises(ExperimentError):
            ChurnEvent(at_fraction=0.0)
        with pytest.raises(ExperimentError):
            ChurnEvent(at_fraction=0.5, action="explode")

    def test_overkilling_churn_schedule_rejected_at_config_time(self):
        with pytest.raises(ExperimentError):
            _small_config(
                testbed=TestbedConfig(
                    num_load_balancers=2,
                    request_spread=1.5,
                    request_chunks=4,
                ),
                churn=(
                    ChurnEvent(at_fraction=0.3),
                    ChurnEvent(at_fraction=0.6),
                ),
            )

    def test_adds_can_fund_later_kills(self):
        config = _small_config(
            testbed=TestbedConfig(
                num_load_balancers=2,
                request_spread=1.5,
                request_chunks=4,
            ),
            churn=(
                ChurnEvent(at_fraction=0.2, action="add"),
                ChurnEvent(at_fraction=0.4),
                ChurnEvent(at_fraction=0.6),
            ),
        )
        assert len(config.churn) == 3

    def test_testbed_rejects_bad_tier_fields(self):
        with pytest.raises(ExperimentError):
            TestbedConfig(num_load_balancers=0)
        with pytest.raises(ExperimentError):
            TestbedConfig(ecmp_hash="crc32")
        with pytest.raises(ExperimentError):
            TestbedConfig(request_spread=-1.0)
        with pytest.raises(ExperimentError):
            TestbedConfig(request_chunks=0)

    def test_saturation_is_worker_bound_under_spread(self):
        testbed = TestbedConfig(request_spread=2.0, request_chunks=5)
        rate = resilience_saturation_rate(testbed, service_mean=0.1)
        assert rate == pytest.approx(testbed.total_workers / 2.1)

    def test_saturation_is_cpu_bound_without_spread(self):
        testbed = TestbedConfig()
        rate = resilience_saturation_rate(testbed, service_mean=0.1)
        assert rate == pytest.approx(testbed.total_cores / 0.1)


class TestResilienceRuns:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_resilience_comparison(_small_config())

    def test_consistent_hash_breaks_under_five_percent(self, comparison):
        run = comparison.run("consistent-hash")
        assert run.in_flight_at_churn > 0
        assert run.broken_fraction < 0.05
        assert run.recovery_hunts > 0
        assert run.queries_hung == 0

    def test_random_breaks_a_macroscopic_fraction(self, comparison):
        run = comparison.run("random")
        consistent = comparison.run("consistent-hash")
        assert run.broken_fraction > consistent.broken_fraction
        assert run.broken_flows > 0
        assert run.queries_hung == 0

    def test_kill_observation_is_recorded(self, comparison):
        for scheme in comparison.schemes():
            observations = comparison.run(scheme).observations
            assert len(observations) == 1
            assert observations[0].event.action == "kill"
            assert observations[0].instance.startswith("lb-")
            assert observations[0].flow_entries_lost > 0

    def test_table_reports_every_scheme(self, comparison):
        table = render_resilience_table(comparison)
        assert "random" in table
        assert "consistent-hash" in table
        assert "broken %" in table

    def test_same_workload_across_schemes(self, comparison):
        totals = [
            comparison.run(scheme).collector.totals.total
            + comparison.run(scheme).queries_hung
            for scheme in comparison.schemes()
        ]
        assert all(total == totals[0] for total in totals)


class TestChurnVariants:
    def test_instance_addition_mid_run(self):
        config = _small_config(
            num_queries=500,
            selection_schemes=("consistent-hash",),
            churn=(
                ChurnEvent(at_fraction=0.4, action="kill"),
                ChurnEvent(at_fraction=0.6, action="add"),
            ),
        )
        run = run_resilience_once(config, "consistent-hash")
        assert len(run.observations) == 2
        assert run.observations[1].event.action == "add"
        assert run.broken_fraction < 0.05
        assert run.queries_hung == 0

    def test_named_victim(self):
        config = _small_config(
            num_queries=400,
            selection_schemes=("consistent-hash",),
            churn=(ChurnEvent(at_fraction=0.5, instance="lb-1"),),
        )
        run = run_resilience_once(config, "consistent-hash")
        assert run.observations[0].instance == "lb-1"

    def test_trace_is_deterministic(self):
        config = _small_config()
        first = make_resilience_trace(config)
        second = make_resilience_trace(config)
        assert [r.arrival_time for r in first] == [r.arrival_time for r in second]
