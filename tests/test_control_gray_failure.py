"""Unit tests for the gray-failure injector and quarantine watchdog.

The scenario-level behaviour (quarantine through the real lifecycle,
graceful mid-flow drain) is pinned in ``test_adversarial_regression.py``;
these tests exercise the two control pieces in isolation against stub
servers, where every timing and threshold edge is cheap to hit.
"""

import pytest

from repro.control.gray_failure import (
    GrayFailureInjector,
    GrayFailureWatchdog,
    QuarantineEvent,
)
from repro.errors import ExperimentError


class _FakeCPU:
    def __init__(self, speed=1.0):
        self.speed = speed
        self.history = []

    def set_speed(self, speed):
        self.speed = speed
        self.history.append(speed)


class _FakeApp:
    def __init__(self):
        self.busy_threads = 0
        self.cpu = _FakeCPU()


class _FakeServer:
    def __init__(self, name):
        self.name = name
        self.draining = False
        self.app = _FakeApp()


class TestGrayFailureInjector:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(degraded_factor=0.0),
            dict(degraded_factor=1.0),
            dict(start_at=-1.0),
            dict(duration=0.0),
            dict(jitter_amplitude=1.0),
            dict(jitter_amplitude=0.3, jitter_interval=0.0),
        ],
    )
    def test_invalid_parameters_are_refused(self, simulator, kwargs):
        with pytest.raises(ExperimentError):
            GrayFailureInjector(simulator, _FakeServer("s"), **kwargs)

    def test_degrade_and_restore_window(self, simulator):
        server = _FakeServer("victim")
        injector = GrayFailureInjector(
            simulator, server, degraded_factor=0.25, start_at=2.0, duration=3.0
        )
        injector.start()
        simulator.run(until=1.9)
        assert not injector.active
        assert server.app.cpu.speed == 1.0
        simulator.run(until=2.5)
        assert injector.active
        assert injector.degraded_at == 2.0
        assert server.app.cpu.speed == pytest.approx(0.25)
        simulator.run(until=6.0)
        assert not injector.active
        assert injector.restored_at == 5.0
        assert server.app.cpu.speed == 1.0

    def test_degradation_scales_the_nominal_speed(self, simulator):
        server = _FakeServer("fast")
        server.app.cpu.speed = 2.0
        injector = GrayFailureInjector(
            simulator, server, degraded_factor=0.5, start_at=0.0
        )
        injector.start()
        simulator.run()
        assert injector.active
        assert server.app.cpu.speed == pytest.approx(1.0)

    def test_square_wave_jitter_is_deterministic(self, simulator):
        server = _FakeServer("victim")
        injector = GrayFailureInjector(
            simulator,
            server,
            degraded_factor=0.4,
            start_at=0.0,
            duration=2.05,
            jitter_amplitude=0.3,
            jitter_interval=0.5,
        )
        injector.start()
        simulator.run(until=3.0)
        # degrade, then wobbles at 0.5s steps, then the restore.
        wobbles = server.app.cpu.history[1:-1]
        expected = [
            0.4 * (1.3 if phase % 2 else 0.7)
            for phase in range(1, len(wobbles) + 1)
        ]
        assert wobbles == pytest.approx(expected)
        assert server.app.cpu.history[-1] == 1.0
        # No wobble survives the restore.
        assert injector._jitter_task is None

    def test_restore_without_degrade_is_a_noop(self, simulator):
        server = _FakeServer("victim")
        injector = GrayFailureInjector(simulator, server, start_at=5.0)
        injector.restore()
        assert server.app.cpu.speed == 1.0
        assert injector.restored_at is None


class TestGrayFailureWatchdog:
    def _fleet(self, busy_counts):
        servers = [_FakeServer(f"server-{i}") for i in range(len(busy_counts))]
        for server, count in zip(servers, busy_counts):
            server.app.busy_threads = count
        return servers

    def _watchdog(self, simulator, servers, **kwargs):
        params = dict(interval=0.5, min_busy=2, consecutive=3)
        params.update(kwargs)
        return GrayFailureWatchdog(
            simulator, servers=lambda: servers, **params
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(interval=0.0),
            dict(slow_factor=1.0),
            dict(min_busy=0),
            dict(consecutive=0),
            dict(max_quarantines=0),
        ],
    )
    def test_invalid_parameters_are_refused(self, simulator, kwargs):
        with pytest.raises(ExperimentError):
            self._watchdog(simulator, [], **kwargs)

    def test_persistent_outlier_is_quarantined(self, simulator):
        servers = self._fleet([8, 1, 1, 1])
        seen = []
        watchdog = self._watchdog(
            simulator, servers, on_quarantine=seen.append
        )
        watchdog.start()
        simulator.run(until=2.0)
        watchdog.stop()
        assert watchdog.quarantined == ("server-0",)
        assert seen == [servers[0]]
        event = watchdog.events[0]
        assert isinstance(event, QuarantineEvent)
        assert event.server == "server-0"
        assert event.busy_threads == 8
        assert event.fleet_median == 1.0
        assert event.strikes == 3
        assert event.time == pytest.approx(1.5)

    def test_a_compliant_tick_resets_the_strikes(self, simulator):
        servers = self._fleet([8, 1, 1, 1])
        watchdog = self._watchdog(simulator, servers)
        watchdog.start()
        # Two strikes, then the server recovers before the third.
        simulator.schedule_at(
            1.1, lambda: setattr(servers[0].app, "busy_threads", 1)
        )
        simulator.run(until=2.0)
        watchdog.stop()
        assert watchdog.quarantined == ()
        assert watchdog.events == []

    def test_an_idle_fleet_never_trips_min_busy(self, simulator):
        servers = self._fleet([1, 0, 0, 0])
        watchdog = self._watchdog(simulator, servers, min_busy=2)
        watchdog.start()
        simulator.run(until=5.0)
        watchdog.stop()
        assert watchdog.quarantined == ()

    def test_max_quarantines_caps_the_damage(self, simulator):
        servers = self._fleet([9, 9, 1, 1, 1])
        watchdog = self._watchdog(simulator, servers, max_quarantines=1)
        watchdog.start()
        simulator.run(until=3.0)
        watchdog.stop()
        assert len(watchdog.quarantined) == 1

    def test_draining_and_quarantined_servers_are_skipped(self, simulator):
        servers = self._fleet([8, 8, 1, 1])
        servers[1].draining = True
        watchdog = self._watchdog(simulator, servers)
        watchdog.start()
        simulator.run(until=2.0)
        watchdog.stop()
        # Only the non-draining outlier was quarantined, and once
        # quarantined it stops being compared (no duplicate events).
        assert watchdog.quarantined == ("server-0",)
        assert len(watchdog.events) == 1

    def test_a_tiny_fleet_is_left_alone(self, simulator):
        servers = self._fleet([9])
        watchdog = self._watchdog(simulator, servers)
        watchdog.start()
        simulator.run(until=2.0)
        watchdog.stop()
        assert watchdog.ticks > 0
        assert watchdog.quarantined == ()
