"""Tests for the ``srlb-repro`` command-line interface."""

import pytest

from repro.cli import _policy_spec_from_name, build_parser, main
from repro.errors import ReproError


class TestPolicyNameParsing:
    def test_rr(self):
        spec = _policy_spec_from_name("RR")
        assert spec.num_candidates == 1

    def test_srdyn(self):
        assert _policy_spec_from_name("SRdyn").acceptance_policy == "SRdyn"

    def test_static_threshold(self):
        spec = _policy_spec_from_name("SR8")
        assert spec.acceptance_policy == "SR8"
        assert spec.num_candidates == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError):
            _policy_spec_from_name("bogus")


class TestParser:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_poisson_defaults(self):
        args = build_parser().parse_args(["poisson"])
        assert args.queries == 3_000
        assert args.servers == 12

    def test_figure_requires_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])


class TestCommands:
    def test_calibrate_analytic_only(self, capsys):
        exit_code = main(["calibrate", "--servers", "6"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "analytic saturation rate" in captured.out
        assert "120.0" in captured.out  # 6 servers x 2 cores / 0.1 s

    def test_poisson_small_run(self, capsys):
        exit_code = main(
            [
                "poisson",
                "--servers", "4",
                "--workers", "8",
                "--queries", "150",
                "--rho", "0.5",
                "--policy", "RR",
                "--policy", "SR4",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "RR" in captured.out and "SR4" in captured.out
        assert "mean (s)" in captured.out

    def test_figure_3_small_run(self, capsys):
        exit_code = main(
            ["figure", "3", "--servers", "4", "--workers", "8", "--queries", "150"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 3" in captured.out

    def test_unknown_figure_number_is_an_error(self, capsys):
        exit_code = main(["figure", "42", "--queries", "10"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err

    def test_wikipedia_small_run(self, capsys):
        exit_code = main(
            [
                "wikipedia",
                "--servers", "6",
                "--workers", "8",
                "--duration", "40",
                "--static-per-wiki", "0.2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 6" in captured.out
        assert "whole-day median" in captured.out

    def test_resilience_defaults(self):
        args = build_parser().parse_args(["resilience"])
        assert args.lbs == 4
        assert args.ecmp_hash == "rendezvous"

    def test_resilience_small_run(self, capsys):
        exit_code = main(
            [
                "resilience",
                "--servers", "6",
                "--workers", "8",
                "--queries", "500",
                "--spread", "1.0",
                "--chunks", "3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "LB-churn resilience" in captured.out
        assert "consistent-hash" in captured.out
        assert "kill lb-" in captured.out


class TestJobsValidation:
    def test_negative_jobs_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["poisson", "--jobs", "-2"])
        assert excinfo.value.code == 2
        captured = capsys.readouterr()
        assert "--jobs" in captured.err
        assert "must be >= 0" in captured.err

    def test_non_integer_jobs_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["wikipedia", "--jobs", "many"])
        assert excinfo.value.code == 2
        assert "expected an integer" in capsys.readouterr().err

    def test_zero_and_positive_jobs_are_accepted(self):
        assert build_parser().parse_args(["poisson", "--jobs", "0"]).jobs == 0
        assert build_parser().parse_args(["poisson", "--jobs", "4"]).jobs == 4

    def test_jobs_help_distinguishes_partitions(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scale", "--help"])
        text = capsys.readouterr().out
        assert "inter-run fan-out" in text
        assert "intra-run" in text

    def test_nonpositive_partitions_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["scale", "--partitions", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_jobs_times_partitions_over_cpu_budget_is_an_error(
        self, capsys, monkeypatch
    ):
        import repro.cli as cli

        monkeypatch.setattr(cli.os, "cpu_count", lambda: 4)
        exit_code = main(
            ["scale", "--queries", "100", "--jobs", "3", "--partitions", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "6 worker processes" in captured.err
        assert "4 CPU(s)" in captured.err

    def test_jobs_zero_resolves_to_all_cores_for_the_budget(
        self, capsys, monkeypatch
    ):
        import repro.cli as cli

        monkeypatch.setattr(cli.os, "cpu_count", lambda: 2)
        exit_code = main(
            ["scale", "--queries", "100", "--jobs", "0", "--partitions", "2"]
        )
        assert exit_code == 2
        assert "worker processes" in capsys.readouterr().err

    def test_budget_within_cpus_is_accepted(self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli.os, "cpu_count", lambda: 8)
        cli._check_parallelism_budget(jobs=2, partitions=4)  # no raise
        cli._check_parallelism_budget(jobs=1, partitions=64)  # partitions alone OK
        cli._check_parallelism_budget(jobs=64, partitions=1)  # jobs alone OK


class TestScenarioCommands:
    def test_scenarios_lists_the_registry(self, capsys):
        exit_code = main(["scenarios"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in (
            "poisson",
            "wikipedia",
            "resilience",
            "flash-crowd",
            "heterogeneous-fleet",
            "autoscale",
            "heavy-tail",
            "adversarial",
            "scale",
        ):
            assert name in captured.out

    def test_scale_small_run(self, capsys):
        exit_code = main(
            [
                "scale",
                "--servers", "4",
                "--workers", "8",
                "--queries", "400",
                "--partitions", "1",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "partitioned replay" in captured.out
        assert "fingerprint" in captured.out

    def test_scenarios_json_is_machine_readable(self, capsys):
        import json

        exit_code = main(["scenarios", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        catalogue = json.loads(captured.out)
        by_name = {entry["name"]: entry for entry in catalogue}
        assert set(by_name) >= {
            "poisson",
            "wikipedia",
            "resilience",
            "flash-crowd",
            "heterogeneous-fleet",
            "autoscale",
            "heavy-tail",
            "adversarial",
        }
        for entry in catalogue:
            assert entry["description"]
            assert entry["cells"], f"{entry['name']} lists no cells"
            assert all(isinstance(cell, str) for cell in entry["cells"])
        assert by_name["autoscale"]["cells"] == [
            "static",
            "reactive",
            "predictive",
        ]
        assert by_name["adversarial"]["cells"] == [
            "baseline",
            "syn-flood",
            "hash-collision",
            "gray-failure",
        ]

    def test_scenarios_json_schema_covers_every_registered_spec(self, capsys):
        # The machine-readable catalogue is the integration surface for
        # external tooling: every registered spec must appear, with
        # exactly the documented keys, in registration order.
        import json

        from repro.experiments import registry

        exit_code = main(["scenarios", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        catalogue = json.loads(captured.out)
        assert [entry["name"] for entry in catalogue] == registry.names()
        for entry in catalogue:
            assert set(entry) == {"name", "description", "cells"}
            spec = registry.get(entry["name"])
            assert entry["description"] == spec.title
            expected_cells = [
                str(cell.key) for cell in spec.cells(spec.default_config())
            ]
            assert entry["cells"] == expected_cells

    def test_autoscale_small_run(self, capsys):
        exit_code = main(
            [
                "autoscale",
                "--workers", "8",
                "--cores", "1",
                "--min-servers", "2",
                "--max-servers", "4",
                "--mean-load", "0.4",
                "--load-amplitude", "0.25",
                "--period", "40",
                "--duration", "40",
                "--time-factor", "1.0",
                "--slo-p99", "5",
                "--mode", "static",
                "--mode", "reactive",
                "--jobs", "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Autoscale" in captured.out
        assert "capacity-s" in captured.out
        assert "static" in captured.out and "reactive" in captured.out
        assert "provisioned servers" in captured.out

    def test_heavy_tail_small_run(self, capsys):
        exit_code = main(
            [
                "heavy-tail",
                "--servers", "2",
                "--workers", "4",
                "--cores", "1",
                "--arrivals", "80",
                "--users", "500",
                "--policy", "RR",
                "--policy", "SR4",
                "--jobs", "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Heavy-tailed sessions" in captured.out
        assert "RR" in captured.out and "SR4" in captured.out
        assert "affine" in captured.out

    def test_adversarial_small_run(self, capsys):
        exit_code = main(
            [
                "adversarial",
                "--servers", "4",
                "--workers", "8",
                "--cores", "1",
                "--lbs", "2",
                "--queries", "150",
                "--mode", "baseline",
                "--mode", "hash-collision",
                "--flood-sources", "4",
                "--collision-flows", "32",
                "--jobs", "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Adversarial traffic" in captured.out
        assert "baseline" in captured.out and "hash-collision" in captured.out
        # The collision search concentrates the flood onto one bucket.
        assert "100.0%" in captured.out

    def test_flash_crowd_small_run(self, capsys):
        exit_code = main(
            [
                "flash-crowd",
                "--servers", "4",
                "--workers", "8",
                "--policy", "RR",
                "--policy", "SR4",
                "--baseline-duration", "6",
                "--spike-duration", "3",
                "--recovery-duration", "6",
                "--bin-width", "3",
                "--jobs", "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Flash crowd" in captured.out
        assert "spike mean (s)" in captured.out
        assert "RR" in captured.out and "SR4" in captured.out

    def test_heterogeneous_fleet_small_run(self, capsys):
        exit_code = main(
            [
                "heterogeneous-fleet",
                "--fast", "2",
                "--slow", "3",
                "--workers", "8",
                "--queries", "200",
                "--rho", "0.7",
                "--policy", "RR",
                "--policy", "SR4",
                "--jobs", "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Heterogeneous fleet" in captured.out
        assert "fast share" in captured.out and "fairness" in captured.out

    def test_heterogeneous_fleet_bad_tier_is_an_error(self, capsys):
        exit_code = main(
            ["heterogeneous-fleet", "--fast", "0", "--queries", "10"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err
