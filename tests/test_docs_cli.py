"""Doc-vs-CLI consistency: ``docs/cli.md`` must cover the real parser.

The test introspects :func:`repro.cli.build_parser` and fails when a
sub-command or a long option exists in the code but is not mentioned in
the documentation page, so the docs cannot silently rot as the CLI
grows.
"""

from __future__ import annotations

import argparse
from pathlib import Path

import pytest

from repro.cli import build_parser

DOC_PATH = Path(__file__).resolve().parents[1] / "docs" / "cli.md"


@pytest.fixture(scope="module")
def doc_text() -> str:
    assert DOC_PATH.exists(), f"missing CLI documentation: {DOC_PATH}"
    return DOC_PATH.read_text(encoding="utf-8")


def _subcommands(parser: argparse.ArgumentParser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    raise AssertionError("the CLI parser has no sub-commands")


def test_every_subcommand_is_documented(doc_text):
    for name in _subcommands(build_parser()):
        assert f"`{name}`" in doc_text, (
            f"sub-command {name!r} is not documented in docs/cli.md"
        )


def test_every_long_option_is_documented(doc_text):
    for name, subparser in _subcommands(build_parser()).items():
        for action in subparser._actions:
            for option in action.option_strings:
                if not option.startswith("--") or option == "--help":
                    continue
                assert option in doc_text, (
                    f"option {option!r} of sub-command {name!r} is not "
                    "documented in docs/cli.md"
                )


def test_shared_testbed_options_are_documented(doc_text):
    for option in ("--servers", "--workers", "--cores", "--seed", "--version"):
        assert option in doc_text


def test_doc_mentions_no_stale_subcommand(doc_text):
    """Headings in the doc must correspond to real sub-commands."""
    real = set(_subcommands(build_parser()))
    for line in doc_text.splitlines():
        if line.startswith("## `") and "`" in line[4:]:
            documented = line[4:].split("`", 1)[0]
            if documented.startswith("srlb-repro") or documented.startswith("--"):
                continue
            assert documented in real, (
                f"docs/cli.md documents {documented!r}, which is not a "
                "sub-command of the CLI"
            )
