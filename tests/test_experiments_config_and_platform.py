"""Unit tests for experiment configuration, calibration and the testbed builder."""

import dataclasses

import pytest

from repro.errors import ExperimentError, WorkloadError
from repro.experiments.calibration import analytic_saturation_rate
from repro.experiments.config import (
    HIGH_LOAD_FACTOR,
    LIGHT_LOAD_FACTOR,
    PAPER_LOAD_FACTORS,
    PoissonSweepConfig,
    PolicySpec,
    TestbedConfig,
    WikipediaReplayConfig,
    paper_policy_suite,
    rr_policy,
    sr_policy,
    srdyn_policy,
)
from repro.experiments.platform import build_testbed
from repro.experiments.poisson_experiment import make_poisson_trace
from repro.net.addressing import VIP_PREFIX


class TestTestbedConfig:
    def test_paper_defaults(self):
        config = TestbedConfig()
        assert config.num_servers == 12
        assert config.workers_per_server == 32
        assert config.cores_per_server == 2
        assert config.backlog_capacity == 128
        assert config.total_cores == 24
        assert config.total_workers == 384

    def test_with_seed(self):
        assert TestbedConfig().with_seed(9).seed == 9

    def test_invalid_values_rejected(self):
        with pytest.raises(ExperimentError):
            TestbedConfig(num_servers=0)
        with pytest.raises(ExperimentError):
            TestbedConfig(workers_per_server=0)
        with pytest.raises(ExperimentError):
            TestbedConfig(backlog_capacity=0)


class TestPolicySpecs:
    def test_paper_suite_names(self):
        names = [spec.name for spec in paper_policy_suite()]
        assert names == ["RR", "SR4", "SR8", "SR16", "SRdyn"]

    def test_rr_uses_single_candidate(self):
        spec = rr_policy()
        assert spec.num_candidates == 1
        assert spec.acceptance_policy == "always"

    def test_sr_policy(self):
        spec = sr_policy(8)
        assert spec.num_candidates == 2
        assert spec.acceptance_policy == "SR8"

    def test_srdyn_policy(self):
        assert srdyn_policy().acceptance_policy == "SRdyn"

    def test_invalid_specs_rejected(self):
        with pytest.raises(ExperimentError):
            PolicySpec(name="", acceptance_policy="SR4")
        with pytest.raises(ExperimentError):
            PolicySpec(name="x", acceptance_policy="SR4", num_candidates=0)
        with pytest.raises(ExperimentError):
            sr_policy(-1)


class TestSweepConfigs:
    def test_paper_load_factors(self):
        assert len(PAPER_LOAD_FACTORS) == 24
        assert all(0 < rho < 1 for rho in PAPER_LOAD_FACTORS)
        assert HIGH_LOAD_FACTOR in PAPER_LOAD_FACTORS
        assert 0 < LIGHT_LOAD_FACTOR < 1

    def test_poisson_defaults(self):
        config = PoissonSweepConfig()
        assert config.num_queries == 20_000
        assert config.service_mean == pytest.approx(0.1)
        assert len(config.policies) == 5

    def test_poisson_scaled_copy(self):
        config = PoissonSweepConfig().scaled(num_queries=500, load_factors=[0.5])
        assert config.num_queries == 500
        assert config.load_factors == (0.5,)

    def test_poisson_invalid(self):
        with pytest.raises(ExperimentError):
            PoissonSweepConfig(load_factors=())
        with pytest.raises(ExperimentError):
            PoissonSweepConfig(num_queries=0)
        with pytest.raises(ExperimentError):
            PoissonSweepConfig(load_factors=(0.0,))

    def test_wikipedia_defaults(self):
        config = WikipediaReplayConfig()
        assert config.duration == pytest.approx(86_400.0)
        assert config.replay_fraction == pytest.approx(0.5)
        assert config.bin_width == pytest.approx(600.0)

    def test_wikipedia_compressed_scales_bin_width(self):
        config = WikipediaReplayConfig().compressed(duration=8_640.0)
        assert config.duration == pytest.approx(8_640.0)
        assert config.bin_width == pytest.approx(60.0)

    def test_wikipedia_invalid(self):
        with pytest.raises(ExperimentError):
            WikipediaReplayConfig(duration=0.0)
        with pytest.raises(ExperimentError):
            WikipediaReplayConfig(replay_fraction=1.5)


class TestCalibration:
    def test_analytic_rate_matches_capacity(self):
        assert analytic_saturation_rate(TestbedConfig(), 0.1) == pytest.approx(240.0)

    def test_analytic_rate_scales_with_servers(self):
        small = dataclasses.replace(TestbedConfig(), num_servers=6)
        assert analytic_saturation_rate(small, 0.1) == pytest.approx(120.0)


class TestBuildTestbed:
    def test_testbed_shape(self, small_testbed_config):
        testbed = build_testbed(small_testbed_config, sr_policy(4))
        assert len(testbed.servers) == small_testbed_config.num_servers
        assert testbed.vip.is_within(VIP_PREFIX)
        assert testbed.load_balancer.backends_for(testbed.vip) == [
            server.primary_address for server in testbed.servers
        ]
        assert testbed.client.vip == testbed.vip

    def test_each_server_gets_its_own_policy_instance(self, small_testbed_config):
        testbed = build_testbed(small_testbed_config, srdyn_policy())
        policies = {id(server.policy) for server in testbed.servers}
        assert len(policies) == small_testbed_config.num_servers

    def test_rr_spec_uses_single_candidate_selector(self, small_testbed_config):
        testbed = build_testbed(small_testbed_config, rr_policy())
        assert testbed.load_balancer.selector.num_candidates == 1

    def test_sr_spec_uses_two_candidates(self, small_testbed_config):
        testbed = build_testbed(small_testbed_config, sr_policy(4))
        assert testbed.load_balancer.selector.num_candidates == 2

    def test_run_trace_serves_every_request(self, small_testbed_config):
        testbed = build_testbed(small_testbed_config, sr_policy(4))
        trace = make_poisson_trace(
            load_factor=0.3,
            num_queries=100,
            saturation_rate=analytic_saturation_rate(small_testbed_config, 0.05),
            service_mean=0.05,
            workload_seed=3,
        )
        testbed.run_trace(trace)
        assert testbed.collector.totals.completed == 100
        assert testbed.total_requests_served() == 100
        assert testbed.total_resets() == 0

    def test_load_sampler_records_samples(self, small_testbed_config):
        testbed = build_testbed(small_testbed_config, sr_policy(4))
        sampler = testbed.attach_load_sampler(interval=0.1)
        trace = make_poisson_trace(
            load_factor=0.3,
            num_queries=50,
            saturation_rate=analytic_saturation_rate(small_testbed_config, 0.05),
            service_mean=0.05,
            workload_seed=3,
        )
        testbed.run_trace(trace)
        assert len(sampler) > 0
        assert all(len(row) == small_testbed_config.num_servers for row in sampler.samples)

    def test_reattaching_load_sampler_stops_the_previous_task(self, small_testbed_config):
        """Regression: a second ``attach_load_sampler`` used to leak the
        first PeriodicTask, which kept rescheduling forever, so the
        event heap never drained and ``run_trace`` hung."""
        testbed = build_testbed(small_testbed_config, sr_policy(4))
        first = testbed.attach_load_sampler(interval=0.1)
        second = testbed.attach_load_sampler(interval=0.1)
        assert second is not first
        assert testbed.load_sampler is second
        trace = make_poisson_trace(
            load_factor=0.3,
            num_queries=20,
            saturation_rate=analytic_saturation_rate(small_testbed_config, 0.05),
            service_mean=0.05,
            workload_seed=3,
        )
        # With the leaked task this call never returned; now the heap
        # drains, only the second sampler records, and the first stays
        # frozen where the re-attach stopped it.
        testbed.run_trace(trace)
        assert len(second) > 0
        assert len(first) == 0

    def test_run_trace_rejects_second_trace_with_conflicting_ids(
        self, small_testbed_config
    ):
        """Generated traces number their requests 1..N, so replaying a
        *different* trace on the same testbed would make servers look up
        the first trace's CPU demands; the catalog guard rejects it."""
        saturation = analytic_saturation_rate(small_testbed_config, 0.05)
        trace_kwargs = dict(
            load_factor=0.3,
            num_queries=10,
            saturation_rate=saturation,
            service_mean=0.05,
        )
        testbed = build_testbed(small_testbed_config, sr_policy(4))
        testbed.run_trace(make_poisson_trace(workload_seed=3, **trace_kwargs))
        with pytest.raises(WorkloadError):
            testbed.run_trace(make_poisson_trace(workload_seed=4, **trace_kwargs))

    def test_server_busy_counts_shape(self, small_testbed_config):
        testbed = build_testbed(small_testbed_config, sr_policy(4))
        assert testbed.server_busy_counts() == [0] * small_testbed_config.num_servers

    def test_deterministic_given_seed(self, small_testbed_config):
        trace_kwargs = dict(
            load_factor=0.5,
            num_queries=200,
            saturation_rate=analytic_saturation_rate(small_testbed_config, 0.05),
            service_mean=0.05,
            workload_seed=11,
        )
        results = []
        for _ in range(2):
            testbed = build_testbed(small_testbed_config, sr_policy(4))
            testbed.run_trace(make_poisson_trace(**trace_kwargs))
            results.append(tuple(sorted(testbed.collector.response_times())))
        assert results[0] == results[1]
