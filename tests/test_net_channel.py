"""Unit tests for the delivery-channel layer (:mod:`repro.net.channel`)."""

import math
import multiprocessing

import pytest

from repro.errors import NetworkError
from repro.net.channel import (
    BatchFrame,
    CollectingSender,
    InProcessChannel,
    MergedItem,
    PipeChannelReceiver,
    PipeChannelSender,
    drain_receivers,
    merge_frames,
)


class FakeSink:
    def __init__(self):
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


class TestInProcessChannel:
    def test_delivers_after_delay(self, simulator):
        sink = FakeSink()
        channel = InProcessChannel(simulator)
        channel.deliver(sink, "pkt", 0.25, "deliver->sink")
        simulator.run()
        assert sink.received == ["pkt"]
        assert simulator.now == pytest.approx(0.25)

    def test_is_one_schedule_call_with_the_given_label(self, simulator):
        # The bit-identity guarantee: one scheduling call per delivery,
        # with the caller's label, so event ordering matches the
        # historical direct-receive scheduling exactly.  Deliveries go
        # through the simulator's handle-free fast path.
        calls = []
        original = simulator._schedule_delivery

        def spying(delay, action, label=""):
            calls.append((delay, label))
            return original(delay, action, label)

        simulator._schedule_delivery = spying
        InProcessChannel(simulator).deliver(FakeSink(), "pkt", 0.5, "my-label")
        assert calls == [(0.5, "my-label")]

    def test_guard_true_delivers(self, simulator):
        sink = FakeSink()
        InProcessChannel(simulator).deliver(sink, "pkt", 0.1, "x", lambda: True)
        simulator.run()
        assert sink.received == ["pkt"]

    def test_guard_false_drops(self, simulator):
        sink = FakeSink()
        InProcessChannel(simulator).deliver(sink, "pkt", 0.1, "x", lambda: False)
        simulator.run()
        assert sink.received == []

    def test_guard_runs_at_delivery_time_not_send_time(self, simulator):
        sink = FakeSink()
        state = {"alive": True}
        InProcessChannel(simulator).deliver(
            sink, "pkt", 1.0, "x", lambda: state["alive"]
        )
        # Flip the state after the send but before the delay elapses.
        simulator.schedule_in(0.5, lambda: state.update(alive=False))
        simulator.run()
        assert sink.received == []


class TestFrameSenders:
    @pytest.fixture(params=["collecting", "pipe"])
    def sender_and_frames(self, request):
        if request.param == "collecting":
            sender = CollectingSender(partition=3)
            return sender, lambda: list(sender.frames)
        receive_end, send_end = multiprocessing.Pipe(duplex=False)
        sender = PipeChannelSender(send_end, partition=3)
        receiver = PipeChannelReceiver(receive_end)

        def frames():
            collected = []
            while receive_end.poll(0):
                collected.append(receiver.recv())
            return collected

        return sender, frames

    def test_flush_emits_staged_items_in_order(self, sender_and_frames):
        sender, frames = sender_and_frames
        sender.stage(1.0, "a")
        sender.stage(2.0, "b")
        sender.flush(5.0)
        (frame,) = frames()
        assert frame == BatchFrame(3, 5.0, ((1.0, "a"), (2.0, "b")))
        assert not frame.final

    def test_empty_flush_is_a_null_message(self, sender_and_frames):
        sender, frames = sender_and_frames
        sender.flush(5.0)
        (frame,) = frames()
        assert frame.items == ()
        assert frame.window_end == 5.0

    def test_close_sends_the_sentinel_with_summary(self, sender_and_frames):
        sender, frames = sender_and_frames
        sender.flush(5.0)
        sender.stage(6.0, "late")
        sender.close(summary={"events": 7})
        _, sentinel = frames()
        assert sentinel.final
        assert math.isinf(sentinel.window_end)
        assert sentinel.items == ((6.0, "late"),)
        assert sentinel.summary == {"events": 7}

    def test_close_is_idempotent(self, sender_and_frames):
        sender, frames = sender_and_frames
        sender.close()
        sender.close()
        assert len(frames()) == 1

    def test_staging_behind_the_watermark_rejected(self, sender_and_frames):
        sender, _ = sender_and_frames
        sender.flush(5.0)
        with pytest.raises(NetworkError):
            sender.stage(5.0, "too-old")

    def test_watermark_may_not_move_backwards(self, sender_and_frames):
        sender, _ = sender_and_frames
        sender.flush(5.0)
        with pytest.raises(NetworkError):
            sender.flush(4.0)

    def test_closed_sender_rejects_stage_and_flush(self, sender_and_frames):
        sender, _ = sender_and_frames
        sender.close()
        with pytest.raises(NetworkError):
            sender.stage(1.0, "x")
        with pytest.raises(NetworkError):
            sender.flush(2.0)


class TestMergeFrames:
    def test_orders_by_time_then_partition_then_seq(self):
        frames = [
            BatchFrame(1, 10.0, ((2.0, "b1"), (4.0, "b2"))),
            BatchFrame(0, 10.0, ((2.0, "a1"), (3.0, "a2"))),
        ]
        merged = merge_frames(frames)
        assert [item.payload for item in merged] == ["a1", "b1", "a2", "b2"]
        assert merged[0] == MergedItem(2.0, 0, 0, "a1")

    def test_equal_times_within_a_partition_keep_emission_order(self):
        frames = [BatchFrame(0, 10.0, ((1.0, "first"), (1.0, "second")))]
        assert [item.payload for item in merge_frames(frames)] == [
            "first",
            "second",
        ]

    def test_cross_partition_interleaving_is_irrelevant(self):
        a1 = BatchFrame(0, 5.0, ((1.0, "a1"),))
        a2 = BatchFrame(0, 10.0, ((6.0, "a2"),))
        b1 = BatchFrame(1, 5.0, ((2.0, "b1"),))
        b2 = BatchFrame(1, 10.0, ((7.0, "b2"),))
        reference = merge_frames([a1, a2, b1, b2])
        assert merge_frames([b1, a1, b2, a2]) == reference
        assert merge_frames([a1, b1, a2, b2]) == reference

    def test_out_of_order_watermarks_within_a_partition_rejected(self):
        frames = [BatchFrame(0, 10.0, ()), BatchFrame(0, 5.0, ())]
        with pytest.raises(NetworkError):
            merge_frames(frames)

    def test_seq_counts_across_frames(self):
        frames = [
            BatchFrame(0, 5.0, ((1.0, "x"),)),
            BatchFrame(0, 10.0, ((6.0, "y"),)),
        ]
        merged = merge_frames(frames)
        assert [(item.seq, item.payload) for item in merged] == [(0, "x"), (1, "y")]


class TestPipePlumbing:
    def test_receiver_rejects_foreign_payloads(self):
        receive_end, send_end = multiprocessing.Pipe(duplex=False)
        send_end.send("not-a-frame")
        with pytest.raises(NetworkError):
            PipeChannelReceiver(receive_end).recv()

    def test_drain_receivers_collects_until_every_sentinel(self):
        ends = [multiprocessing.Pipe(duplex=False) for _ in range(2)]
        senders = [
            PipeChannelSender(send_end, partition)
            for partition, (_, send_end) in enumerate(ends)
        ]
        receivers = [PipeChannelReceiver(receive_end) for receive_end, _ in ends]
        senders[0].stage(1.0, "a")
        senders[0].flush(5.0)
        senders[1].close(summary={"pod": 1})
        senders[0].close()
        frames = drain_receivers(receivers)
        assert sorted(
            (frame.partition, frame.final) for frame in frames
        ) == [(0, False), (0, True), (1, True)]

    def test_drain_receivers_raises_on_eof_before_sentinel(self):
        receive_end, send_end = multiprocessing.Pipe(duplex=False)
        send_end.close()
        with pytest.raises(NetworkError):
            drain_receivers([PipeChannelReceiver(receive_end)])
