"""Regression tests for the adversarial scenario's resource hygiene.

A SYN flood is only interesting if the victim *recovers*: after the
attack flows' half-open connections time out and idle housekeeping
reclaims their flow-table entries, no server thread, connection record,
or steering entry may still be held by attack state.  And a gray
failure must be survivable mid-flow: quarantining the degraded server
goes through the same graceful drain as a scale-down, so established
connections complete without resets (the promise pinned for crash-style
churn in ``test_control_drain_midflow.py``).
"""

import pytest

from repro.errors import WorkloadError
from repro.experiments.adversarial_experiment import (
    _attach_flood,
    _attach_gray_failure,
    _build_adversarial_platform,
    make_adversarial_trace,
)
from repro.experiments.config import AdversarialConfig, TestbedConfig


def _small_config(**overrides):
    defaults = dict(
        testbed=TestbedConfig(
            num_servers=4,
            workers_per_server=8,
            cores_per_server=2,
            backlog_capacity=16,
            num_load_balancers=2,
            flow_idle_timeout=5.0,
            request_timeout=2.0,
        ),
        num_queries=200,
        flood_sources=6,
        collision_flows=48,
        watchdog_interval=0.2,
        watchdog_consecutive=2,
    )
    defaults.update(overrides)
    return AdversarialConfig(**defaults)


def _run_mode(config, mode):
    """Run one attack mode like ``run_adversarial_once`` but keep the
    testbed for post-mortem inspection."""
    trace = make_adversarial_trace(config)
    testbed = _build_adversarial_platform(config, mode)
    tier = testbed.lb_tier
    for instance in tier.instances:
        instance.start_housekeeping(config.housekeeping_interval)

    def stop_housekeeping():
        for instance in tier.instances:
            instance.stop_housekeeping()

    testbed.at_horizon(stop_housekeeping)
    attacker = watchdog = None
    if mode in ("syn-flood", "hash-collision"):
        attacker = _attach_flood(testbed, config, mode, trace)
    elif mode == "gray-failure":
        watchdog = _attach_gray_failure(testbed, config, trace)
    testbed.run_trace(trace)
    return testbed, trace, attacker, watchdog


@pytest.mark.parametrize("mode", ["syn-flood", "hash-collision"])
def test_flood_leaks_no_flow_table_or_server_state(mode):
    config = _small_config()
    testbed, trace, attacker, _ = _run_mode(config, mode)
    assert attacker.syns_sent > 0

    # Every half-open attack connection timed out by the horizon: no
    # worker is still pinned and no connection record survives.
    for server in testbed.servers:
        assert server.app.busy_threads == 0
        assert server.app.open_connections == 0
        assert server.app.scoreboard.busy_count == 0
        assert server.app.backlog.depth == 0
    assert sum(
        server.app.stats.connections_timed_out for server in testbed.servers
    ) > 0

    # Accepted attack connections did install flow-table entries on top
    # of the completed legit flows (colliding flows reuse 5-tuples, so
    # entries dedupe; strictly more than the legit count is the bound).
    tier = testbed.lb_tier
    created = sum(
        instance.flow_table.stats.entries_created for instance in tier.instances
    )
    assert created > testbed.collector.totals.completed

    # ...but one idle-timeout later every entry is reclaimable: nothing
    # the attack created is pinned forever.
    deadline = testbed.simulator.now + config.testbed.flow_idle_timeout + 1.0
    for instance in tier.instances:
        instance.flow_table.expire_idle(deadline)
        assert len(instance.flow_table) == 0
        stats = instance.flow_table.stats
        assert stats.entries_created == stats.entries_expired + stats.entries_evicted


def test_housekeeping_reclaims_attack_entries_in_run():
    # In-run idle housekeeping (not just the post-mortem sweep above)
    # must already have expired attack entries: the attack window ends
    # well before the horizon, so their idle timers lapse in-run.
    config = _small_config()
    testbed, _, _, _ = _run_mode(config, "syn-flood")
    expired = sum(
        instance.flow_table.stats.entries_expired
        for instance in testbed.lb_tier.instances
    )
    assert expired > 0


def test_gray_failure_quarantine_drains_mid_flow_without_resets():
    # The scenario's smoke config: its trace is long enough for the
    # watchdog's consecutive-strike detection to fit inside the
    # degradation window (the golden fingerprints pin the same run).
    from repro.experiments.adversarial_experiment import ADVERSARIAL_SCENARIO

    config = ADVERSARIAL_SCENARIO.smoke_config()
    trace = make_adversarial_trace(config)
    testbed = _build_adversarial_platform(config, "gray-failure")
    victim = testbed.servers[0]
    tier = testbed.lb_tier
    for instance in tier.instances:
        instance.start_housekeeping(config.housekeeping_interval)
    testbed.at_horizon(
        lambda: [i.stop_housekeeping() for i in tier.instances]
    )
    watchdog = _attach_gray_failure(testbed, config, trace)
    testbed.run_trace(trace)

    # The watchdog quarantined exactly the degraded server...
    assert watchdog.quarantined == ("server-0",)
    assert len(watchdog.events) == 1
    event = watchdog.events[0]
    assert event.server == "server-0"
    assert event.time >= trace.duration * config.attack_start_fraction

    # ...which went through a *graceful* drain: it is quiescent, its
    # replacement is active, and no connection anywhere was reset.
    assert victim.draining
    assert victim.quiescent
    assert victim.app.open_connections == 0
    # The victim left every backend pool, and its replacement joined
    # them, so the *serving* fleet is back at full strength.
    for instance in tier.instances:
        backends = instance.backends_for(testbed.vip)
        assert victim.primary_address not in backends
        assert len(backends) == config.testbed.num_servers
    assert testbed.total_resets() == 0
    assert sum(server.stray_data_resets for server in testbed.servers) == 0

    # Legitimate traffic survived lossless.
    assert testbed.collector.totals.failed == 0
    assert testbed.collector.totals.completed == config.num_queries
    assert testbed.client.in_flight == 0


def test_retire_server_refuses_a_second_drain():
    config = _small_config()
    testbed = _build_adversarial_platform(config, "baseline")
    victim = testbed.servers[0]
    pools_before = {
        instance.name: list(instance.backends_for(testbed.vip))
        for instance in testbed.lb_tier.instances
    }
    testbed.retire_server(victim)
    assert victim.draining
    with pytest.raises(WorkloadError, match="already draining"):
        testbed.retire_server(victim)
    # The refused second drain changed nothing: the pools lost the
    # victim exactly once and kept everyone else.
    for instance in testbed.lb_tier.instances:
        got = list(instance.backends_for(testbed.vip))
        expected = [
            address
            for address in pools_before[instance.name]
            if address != victim.primary_address
        ]
        assert got == expected
