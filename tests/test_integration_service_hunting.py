"""Integration tests: the full Service Hunting packet exchange.

These tests replay the exact scenario of the paper's Figure 1 on a real
testbed built by the experiment harness, observing every packet on the
fabric, and assert on the sequence of SR headers: SYN with the candidate
list, refusal/forwarding, SYN-ACK through the load balancer, steering of
the request, and direct return of the response.
"""

import pytest

from repro.experiments.config import sr_policy
from repro.experiments.platform import build_testbed
from repro.net.tcp import classify_segment
from repro.workload.requests import Request
from repro.workload.trace import Trace


@pytest.fixture
def traced_testbed(small_testbed_config):
    """A small testbed with a packet tap recording every delivery."""
    testbed = build_testbed(small_testbed_config, sr_policy(4))
    log = []

    def tap(packet, origin, destination):
        log.append(
            {
                "kind": classify_segment(packet.tcp.flags),
                "origin": origin,
                "destination": destination,
                "srh": None
                if packet.srh is None
                else [str(s) for s in packet.srh.traversal_order()],
                "segments_left": None if packet.srh is None else packet.srh.segments_left,
                "request_id": packet.tcp.request_id,
            }
        )

    testbed.fabric.add_tap(tap)
    return testbed, log


def _single_request_trace():
    return Trace(
        [Request(request_id=900_001, arrival_time=0.0, service_demand=0.05, kind="php")]
    )


class TestSingleQueryExchange:
    def test_packet_sequence_matches_figure_1(self, traced_testbed):
        testbed, log = traced_testbed
        testbed.run_trace(_single_request_trace())

        kinds = [entry["kind"] for entry in log]
        # SYN client->LB, SYN with SRH LB->first candidate (possibly then
        # to second candidate), SYN-ACK server->LB, SYN-ACK LB->client,
        # data client->LB, data LB->server, response server->client.
        assert kinds[0] == "syn"
        assert kinds.count("syn-ack") == 2
        assert kinds.count("data") >= 3
        assert kinds[-1] == "data"          # the response is the last packet
        assert "rst" not in kinds

    def test_syn_carries_candidates_then_vip(self, traced_testbed):
        testbed, log = traced_testbed
        testbed.run_trace(_single_request_trace())
        dispatched = next(
            entry for entry in log if entry["kind"] == "syn" and entry["srh"] is not None
        )
        assert len(dispatched["srh"]) == 3
        assert dispatched["srh"][-1] == str(testbed.vip)
        assert dispatched["segments_left"] == 2
        server_addresses = {str(server.primary_address) for server in testbed.servers}
        assert set(dispatched["srh"][:2]) <= server_addresses

    def test_syn_ack_traverses_load_balancer_and_names_the_acceptor(self, traced_testbed):
        testbed, log = traced_testbed
        testbed.run_trace(_single_request_trace())
        syn_ack_to_lb = next(
            entry for entry in log if entry["kind"] == "syn-ack" and entry["destination"] == "lb"
        )
        acceptor = syn_ack_to_lb["srh"][0]
        accepted_counts = testbed.acceptance_counts()
        accepting_server = next(
            server for server in testbed.servers if str(server.primary_address) == acceptor
        )
        assert accepted_counts[accepting_server.name] == 1
        # The copy forwarded to the client has no SR header any more.
        syn_ack_to_client = next(
            entry
            for entry in log
            if entry["kind"] == "syn-ack" and entry["destination"] == "client"
        )
        assert syn_ack_to_client["srh"] is None

    def test_request_data_is_steered_to_the_accepting_server(self, traced_testbed):
        testbed, log = traced_testbed
        testbed.run_trace(_single_request_trace())
        syn_ack_to_lb = next(
            entry for entry in log if entry["kind"] == "syn-ack" and entry["destination"] == "lb"
        )
        acceptor = syn_ack_to_lb["srh"][0]
        steered = next(
            entry
            for entry in log
            if entry["kind"] == "data" and entry["origin"] == "lb"
        )
        assert steered["srh"] == [acceptor, str(testbed.vip)]
        assert steered["segments_left"] == 1

    def test_response_returns_directly_to_the_client(self, traced_testbed):
        testbed, log = traced_testbed
        testbed.run_trace(_single_request_trace())
        response = log[-1]
        assert response["destination"] == "client"
        assert response["origin"].startswith("server-")
        assert response["srh"] is None

    def test_flow_table_learned_exactly_one_flow(self, traced_testbed):
        testbed, log = traced_testbed
        testbed.run_trace(_single_request_trace())
        assert testbed.load_balancer.stats.acceptances_learned == 1
        assert testbed.load_balancer.stats.steering_misses == 0
        assert testbed.collector.totals.completed == 1


class TestRefusalPath:
    def test_loaded_first_candidate_is_skipped(self, small_testbed_config):
        """With SR0 every optional offer is refused: the second candidate serves."""
        testbed = build_testbed(small_testbed_config, sr_policy(0))
        testbed.run_trace(_single_request_trace())
        refused = sum(server.hunting.stats.refused for server in testbed.servers)
        forced = sum(server.hunting.stats.accepted_forced for server in testbed.servers)
        assert refused == 1
        assert forced == 1
        assert testbed.collector.totals.completed == 1

    def test_always_accept_never_refuses(self, small_testbed_config):
        testbed = build_testbed(small_testbed_config, sr_policy(1_000))
        testbed.run_trace(_single_request_trace())
        refused = sum(server.hunting.stats.refused for server in testbed.servers)
        by_choice = sum(server.hunting.stats.accepted_by_choice for server in testbed.servers)
        assert refused == 0
        assert by_choice == 1
