"""Doc-vs-harness consistency: ``docs/performance.md`` must match reality.

Same spirit as ``test_docs_cli.py``: the performance page documents the
perf harness (`make perf`, `BENCH_PERF.json`, the benchmark cells), so
these tests introspect the Makefile, the benchmark driver and the
committed trajectory file and fail when the documentation drifts.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
DOC_PATH = REPO_ROOT / "docs" / "performance.md"
BENCH_PATH = REPO_ROOT / "benchmarks" / "bench_perf_hotpath.py"
REPORT_PATH = REPO_ROOT / "BENCH_PERF.json"

#: The perf cells the harness defines; the doc must describe every one.
PERF_CELLS = (
    "poisson-high-load",
    "wikipedia-slice",
    "resilience-churn",
    "scale-partitioned",
    "telemetry-overhead",
)

#: Record slots kept per (profile, cell) in BENCH_PERF.json.
PERF_SLOTS = ("pre_pr", "baseline", "latest")


@pytest.fixture(scope="module")
def doc_text() -> str:
    assert DOC_PATH.exists(), f"missing performance documentation: {DOC_PATH}"
    return DOC_PATH.read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def makefile_text() -> str:
    return (REPO_ROOT / "Makefile").read_text(encoding="utf-8")


def test_documented_make_targets_exist(doc_text, makefile_text):
    for target in re.findall(r"`make ([a-z-]+)`", doc_text):
        assert re.search(rf"^{re.escape(target)}:", makefile_text, re.M), (
            f"docs/performance.md mentions `make {target}`, which is not "
            "a Makefile target"
        )


def test_perf_targets_are_documented(doc_text):
    for target in ("make perf", "make perf-smoke"):
        assert f"`{target}`" in doc_text


def test_every_perf_cell_is_documented(doc_text):
    bench_text = BENCH_PATH.read_text(encoding="utf-8")
    for cell in PERF_CELLS:
        assert f'"{cell}"' in bench_text, (
            f"cell {cell!r} is not defined by benchmarks/bench_perf_hotpath.py"
        )
        assert f"`{cell}`" in doc_text, (
            f"perf cell {cell!r} is not documented in docs/performance.md"
        )


def test_doc_mentions_no_stale_cell(doc_text):
    """Cells named in the doc's table must exist in the harness."""
    bench_text = BENCH_PATH.read_text(encoding="utf-8")
    for line in doc_text.splitlines():
        match = re.match(r"\| `([a-z0-9-]+)` \|", line)
        if match:
            cell = match.group(1)
            assert f'"{cell}"' in bench_text, (
                f"docs/performance.md documents cell {cell!r}, which the "
                "perf harness does not define"
            )


def test_bench_perf_json_is_committed_with_baseline_and_methodology():
    assert REPORT_PATH.exists(), (
        "BENCH_PERF.json must be committed (run `make perf` and "
        "`benchmarks/bench_perf_hotpath.py --write baseline`)"
    )
    data = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
    assert data.get("metric") == "events_per_sec"
    assert data.get("methodology"), "BENCH_PERF.json must describe its methodology"
    profiles = data.get("profiles", {})
    for profile in ("full", "smoke"):
        assert profile in profiles, f"BENCH_PERF.json lacks the {profile!r} profile"
        for cell in PERF_CELLS:
            records = profiles[profile].get(cell, {})
            assert "baseline" in records, (
                f"BENCH_PERF.json lacks a committed baseline for "
                f"({profile}, {cell})"
            )
            for slot, record in records.items():
                assert slot in PERF_SLOTS
                assert record["events_per_sec"] > 0


def test_doc_documents_every_slot(doc_text):
    for slot in PERF_SLOTS:
        assert f"`{slot}`" in doc_text, (
            f"BENCH_PERF.json slot {slot!r} is not documented in "
            "docs/performance.md"
        )


def test_readme_has_a_performance_section():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "## Performance" in readme
    assert "BENCH_PERF.json" in readme
    assert "docs/performance.md" in readme
