"""Unit tests for the Service Hunting decision engine (Algorithms 1 and 2)."""

import pytest

from repro.core.agent import ApplicationAgent, StaticLoadView
from repro.core.policies import (
    AlwaysAcceptPolicy,
    DynamicThresholdPolicy,
    NeverAcceptPolicy,
    StaticThresholdPolicy,
)
from repro.core.service_hunting import (
    HuntingDecision,
    ServiceHuntingProcessor,
    build_steering_reply_path,
)
from repro.errors import SegmentRoutingError
from repro.net.addressing import IPv6Address
from repro.net.packet import make_syn
from repro.net.srh import SegmentRoutingHeader


def _addr(text):
    return IPv6Address.parse(text)


CLIENT = _addr("fd00:200::1")
VIP = _addr("fd00:300::1")
LB = _addr("fd00:400::1")
SERVER1 = _addr("fd00:100::1")
SERVER2 = _addr("fd00:100::2")
SERVER3 = _addr("fd00:100::3")


def _hunting_packet(candidates):
    """A SYN carrying a Service Hunting SR list (candidates then VIP)."""
    packet = make_syn(CLIENT, VIP, 20_000, 80, request_id=1)
    packet.attach_srh(SegmentRoutingHeader.from_traversal(list(candidates) + [VIP]))
    return packet


def _processor(policy, busy=0, slots=32):
    agent = ApplicationAgent(StaticLoadView(busy=busy, slots=slots))
    return ServiceHuntingProcessor(policy, agent)


class TestOptionalDecision:
    def test_accept_sets_segments_left_to_zero(self):
        processor = _processor(StaticThresholdPolicy(4), busy=2)
        packet = _hunting_packet([SERVER1, SERVER2])
        decision = processor.process(packet)
        assert decision is HuntingDecision.ACCEPT
        assert packet.srh.segments_left == 0
        assert packet.dst == VIP
        assert processor.stats.accepted_by_choice == 1

    def test_refuse_forwards_to_second_candidate(self):
        processor = _processor(StaticThresholdPolicy(4), busy=10)
        packet = _hunting_packet([SERVER1, SERVER2])
        decision = processor.process(packet)
        assert decision is HuntingDecision.FORWARD
        assert packet.dst == SERVER2
        assert packet.srh.segments_left == 1
        assert processor.stats.refused == 1

    def test_forced_accept_at_last_candidate(self):
        processor = _processor(NeverAcceptPolicy(), busy=32)
        packet = _hunting_packet([SERVER1, SERVER2])
        processor.process(packet)          # refused at the first candidate
        decision = processor.process(packet)  # second candidate must accept
        assert decision is HuntingDecision.ACCEPT
        assert packet.dst == VIP
        assert processor.stats.accepted_forced == 1

    def test_policy_not_consulted_on_forced_accept(self):
        class ExplodingPolicy(NeverAcceptPolicy):
            def should_accept(self, agent):
                raise AssertionError("must not be consulted at SegmentsLeft == 1")

        processor = _processor(ExplodingPolicy())
        packet = _hunting_packet([SERVER2])  # single candidate: SegmentsLeft == 1
        assert processor.process(packet) is HuntingDecision.ACCEPT

    def test_three_candidate_list_walks_through_refusals(self):
        packet = _hunting_packet([SERVER1, SERVER2, SERVER3])
        refusing = _processor(StaticThresholdPolicy(1), busy=5)
        assert refusing.process(packet) is HuntingDecision.FORWARD
        assert packet.dst == SERVER2
        assert refusing.process(packet) is HuntingDecision.FORWARD
        assert packet.dst == SERVER3
        assert refusing.process(packet) is HuntingDecision.ACCEPT
        assert packet.dst == VIP

    def test_not_applicable_without_srh(self):
        processor = _processor(AlwaysAcceptPolicy())
        packet = make_syn(CLIENT, VIP, 20_000, 80)
        assert processor.process(packet) is HuntingDecision.NOT_APPLICABLE

    def test_not_applicable_when_exhausted(self):
        processor = _processor(AlwaysAcceptPolicy())
        packet = _hunting_packet([SERVER1])
        processor.process(packet)
        assert packet.srh.exhausted
        assert processor.process(packet) is HuntingDecision.NOT_APPLICABLE


class TestStatsAndReset:
    def test_acceptance_ratio_counts_only_optional_offers(self):
        processor = _processor(StaticThresholdPolicy(4), busy=0)
        for _ in range(3):
            processor.process(_hunting_packet([SERVER1, SERVER2]))
        # One forced accept must not affect the optional ratio.
        processor.process(_hunting_packet([SERVER1]))
        assert processor.stats.optional_acceptance_ratio == pytest.approx(1.0)
        assert processor.stats.accepted_total == 4

    def test_reset_clears_stats_and_policy(self):
        policy = DynamicThresholdPolicy(initial_threshold=1, window_size=5)
        processor = _processor(policy, busy=32)
        for _ in range(12):
            processor.process(_hunting_packet([SERVER1, SERVER2]))
        processor.reset()
        assert processor.stats.offers_received == 0
        assert policy.threshold == 1

    def test_offers_received_counts_everything(self):
        processor = _processor(StaticThresholdPolicy(4), busy=0)
        processor.process(_hunting_packet([SERVER1, SERVER2]))
        processor.process(_hunting_packet([SERVER1]))
        assert processor.stats.offers_received == 2


class TestDynamicPolicyEndToEnd:
    def test_dynamic_policy_adapts_through_the_processor(self):
        policy = DynamicThresholdPolicy(initial_threshold=1, window_size=10)
        agent_view = StaticLoadView(busy=20, slots=32)
        processor = ServiceHuntingProcessor(policy, ApplicationAgent(agent_view))
        for _ in range(60):
            processor.process(_hunting_packet([SERVER1, SERVER2]))
        # Every optional offer was refused, so SRdyn must have raised c.
        assert policy.threshold > 1


class TestSteeringReplyPath:
    def test_path_order(self):
        path = build_steering_reply_path(SERVER2, LB, CLIENT)
        assert path == [SERVER2, LB, CLIENT]

    def test_lb_equal_client_rejected(self):
        with pytest.raises(SegmentRoutingError):
            build_steering_reply_path(SERVER2, CLIENT, CLIENT)
