"""Unit tests for candidate selection schemes and Maglev consistent hashing."""

import numpy as np
import pytest

from repro.core.candidate_selection import (
    ConsistentHashCandidateSelector,
    RandomCandidateSelector,
    RoundRobinCandidateSelector,
    SingleRandomSelector,
    make_selector,
)
from repro.core.consistent_hash import MaglevTable, flow_hash_key
from repro.errors import SelectionError
from repro.net.addressing import IPv6Address
from repro.net.packet import FlowKey


def _servers(count):
    return [IPv6Address.parse(f"fd00:100::{index + 1:x}") for index in range(count)]


def _flow(port):
    return FlowKey(
        IPv6Address.parse("fd00:200::1"), port, IPv6Address.parse("fd00:300::1"), 80
    )


@pytest.fixture
def selection_rng():
    return np.random.default_rng(99)


class TestRandomCandidateSelector:
    def test_returns_requested_number_of_distinct_candidates(self, selection_rng):
        selector = RandomCandidateSelector(selection_rng, num_candidates=2)
        servers = _servers(12)
        for port in range(100):
            candidates = selector.select(_flow(port), servers)
            assert len(candidates) == 2
            assert len(set(candidates)) == 2
            assert all(candidate in servers for candidate in candidates)

    def test_covers_the_whole_pool(self, selection_rng):
        selector = RandomCandidateSelector(selection_rng, num_candidates=2)
        servers = _servers(12)
        seen = set()
        for port in range(2_000):
            seen.update(selector.select(_flow(port), servers))
        assert seen == set(servers)

    def test_first_choice_roughly_uniform(self, selection_rng):
        selector = RandomCandidateSelector(selection_rng, num_candidates=2)
        servers = _servers(4)
        counts = {server: 0 for server in servers}
        trials = 8_000
        for port in range(trials):
            counts[selector.select(_flow(port), servers)[0]] += 1
        for count in counts.values():
            assert count == pytest.approx(trials / 4, rel=0.15)

    def test_pool_smaller_than_candidates_rejected(self, selection_rng):
        selector = RandomCandidateSelector(selection_rng, num_candidates=3)
        with pytest.raises(SelectionError):
            selector.select(_flow(1), _servers(2))

    def test_empty_pool_rejected(self, selection_rng):
        selector = RandomCandidateSelector(selection_rng, num_candidates=1)
        with pytest.raises(SelectionError):
            selector.select(_flow(1), [])

    def test_invalid_candidate_count_rejected(self, selection_rng):
        with pytest.raises(SelectionError):
            RandomCandidateSelector(selection_rng, num_candidates=0)


class TestSingleRandomSelector:
    def test_one_candidate_named_rr(self, selection_rng):
        selector = SingleRandomSelector(selection_rng)
        assert selector.num_candidates == 1
        assert selector.name == "RR"
        assert len(selector.select(_flow(1), _servers(12))) == 1


class TestRoundRobinSelector:
    def test_rotates_through_pool(self):
        selector = RoundRobinCandidateSelector(num_candidates=2)
        servers = _servers(4)
        first = selector.select(_flow(1), servers)
        second = selector.select(_flow(2), servers)
        assert first == [servers[0], servers[1]]
        assert second == [servers[1], servers[2]]

    def test_wraps_around(self):
        selector = RoundRobinCandidateSelector(num_candidates=2)
        servers = _servers(3)
        for _ in range(2):
            selector.select(_flow(1), servers)
        third = selector.select(_flow(1), servers)
        assert third == [servers[2], servers[0]]


class TestConsistentHashSelector:
    def test_same_flow_gets_same_candidates(self):
        selector = ConsistentHashCandidateSelector(num_candidates=2, table_size=251)
        servers = _servers(12)
        flow = _flow(1234)
        assert selector.select(flow, servers) == selector.select(flow, servers)

    def test_different_flows_spread_over_servers(self):
        selector = ConsistentHashCandidateSelector(num_candidates=2, table_size=251)
        servers = _servers(12)
        first_choices = {selector.select(_flow(port), servers)[0] for port in range(500)}
        assert len(first_choices) >= 10

    def test_candidates_are_distinct(self):
        selector = ConsistentHashCandidateSelector(num_candidates=3, table_size=251)
        servers = _servers(12)
        for port in range(50):
            candidates = selector.select(_flow(port), servers)
            assert len(set(candidates)) == 3


class TestSelectorFactory:
    def test_factory_names(self, selection_rng):
        assert isinstance(make_selector("random", selection_rng), RandomCandidateSelector)
        assert isinstance(make_selector("single-random", selection_rng), SingleRandomSelector)
        assert isinstance(
            make_selector("round-robin", selection_rng), RoundRobinCandidateSelector
        )
        assert isinstance(
            make_selector("consistent-hash", selection_rng),
            ConsistentHashCandidateSelector,
        )

    def test_unknown_selector_rejected(self, selection_rng):
        with pytest.raises(SelectionError):
            make_selector("astrology", selection_rng)


class TestMaglevTable:
    def test_every_slot_is_assigned(self):
        table = MaglevTable(_servers(5), table_size=127)
        shares = table.slot_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert len(shares) == 5

    def test_shares_are_roughly_uniform(self):
        table = MaglevTable(_servers(8), table_size=1021)
        shares = table.slot_shares()
        for share in shares.values():
            assert share == pytest.approx(1 / 8, rel=0.25)

    def test_lookup_is_deterministic(self):
        table = MaglevTable(_servers(8), table_size=1021)
        assert table.lookup("flow-1") == table.lookup("flow-1")

    def test_lookup_chain_distinct(self):
        table = MaglevTable(_servers(8), table_size=1021)
        chain = table.lookup_chain("flow-1", 3)
        assert len(set(chain)) == 3

    def test_chain_longer_than_backends_rejected(self):
        table = MaglevTable(_servers(3), table_size=127)
        with pytest.raises(SelectionError):
            table.lookup_chain("flow-1", 4)

    def test_minimal_disruption_on_backend_removal(self):
        servers = _servers(10)
        before = MaglevTable(servers, table_size=2039)
        after = MaglevTable(servers[:-1], table_size=2039)
        disruption = before.disruption_versus(after)
        # Removing 1 backend out of 10 should remap roughly 10 % of slots,
        # far from a full reshuffle.
        assert disruption < 0.30

    def test_duplicate_backends_rejected(self):
        server = _servers(1)[0]
        with pytest.raises(SelectionError):
            MaglevTable([server, server], table_size=127)

    def test_empty_backends_rejected(self):
        with pytest.raises(SelectionError):
            MaglevTable([], table_size=127)

    def test_flow_hash_key_is_stable_and_distinct(self):
        assert flow_hash_key(_flow(1)) == flow_hash_key(_flow(1))
        assert flow_hash_key(_flow(1)) != flow_hash_key(_flow(2))
