"""Unit tests for the request model, catalog and service-time models."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.requests import (
    KIND_PHP,
    Request,
    RequestCatalog,
    next_request_id,
    sort_by_arrival,
    total_offered_demand,
)
from repro.workload.service_models import (
    BoundedParetoServiceTime,
    DeterministicServiceTime,
    ExponentialServiceTime,
    LognormalServiceTime,
    StaticPageServiceTime,
    WikiPageServiceTime,
)


class TestRequest:
    def test_valid_request(self):
        request = Request(request_id=1, arrival_time=0.5, service_demand=0.1)
        assert request.kind == KIND_PHP
        assert request.response_size > 0

    def test_negative_arrival_rejected(self):
        with pytest.raises(WorkloadError):
            Request(request_id=1, arrival_time=-1.0, service_demand=0.1)

    def test_non_positive_demand_rejected(self):
        with pytest.raises(WorkloadError):
            Request(request_id=1, arrival_time=0.0, service_demand=0.0)

    def test_negative_response_size_rejected(self):
        with pytest.raises(WorkloadError):
            Request(request_id=1, arrival_time=0.0, service_demand=0.1, response_size=-1)

    def test_next_request_id_is_monotonic(self):
        first = next_request_id()
        second = next_request_id()
        assert second > first


class TestRequestCatalog:
    def test_add_and_lookup(self):
        catalog = RequestCatalog()
        request = Request(request_id=101, arrival_time=0.0, service_demand=0.2)
        catalog.add(request)
        assert catalog.get(101) is request
        assert catalog.demand_of(101) == pytest.approx(0.2)
        assert catalog.response_size_of(101) == request.response_size
        assert 101 in catalog
        assert len(catalog) == 1

    def test_duplicate_id_rejected(self):
        catalog = RequestCatalog()
        catalog.add(Request(request_id=5, arrival_time=0.0, service_demand=0.2))
        with pytest.raises(WorkloadError):
            catalog.add(Request(request_id=5, arrival_time=1.0, service_demand=0.3))

    def test_unknown_id_rejected(self):
        with pytest.raises(WorkloadError):
            RequestCatalog().get(404)

    def test_init_from_iterable_and_iteration(self):
        requests = [
            Request(request_id=index, arrival_time=float(index), service_demand=0.1)
            for index in range(1, 4)
        ]
        catalog = RequestCatalog(requests)
        assert sorted(request.request_id for request in catalog) == [1, 2, 3]


class TestHelpers:
    def test_sort_by_arrival(self):
        requests = [
            Request(request_id=1, arrival_time=2.0, service_demand=0.1),
            Request(request_id=2, arrival_time=1.0, service_demand=0.1),
        ]
        assert [request.request_id for request in sort_by_arrival(requests)] == [2, 1]

    def test_total_offered_demand(self):
        requests = [
            Request(request_id=1, arrival_time=0.0, service_demand=0.25),
            Request(request_id=2, arrival_time=0.0, service_demand=0.75),
        ]
        assert total_offered_demand(requests) == pytest.approx(1.0)


class TestServiceModels:
    def test_exponential_mean(self, rng):
        model = ExponentialServiceTime(0.1)
        samples = [model.sample(rng) for _ in range(50_000)]
        assert np.mean(samples) == pytest.approx(0.1, rel=0.05)
        assert model.mean() == pytest.approx(0.1)

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(WorkloadError):
            ExponentialServiceTime(0.0)

    def test_deterministic(self, rng):
        model = DeterministicServiceTime(0.05)
        assert model.sample(rng) == 0.05
        assert model.mean() == 0.05

    def test_lognormal_median(self, rng):
        model = LognormalServiceTime(median_seconds=0.2, sigma=0.4)
        samples = [model.sample(rng) for _ in range(50_000)]
        assert np.median(samples) == pytest.approx(0.2, rel=0.05)
        assert model.mean() > 0.2  # lognormal mean exceeds its median

    def test_bounded_pareto_respects_bounds(self, rng):
        model = BoundedParetoServiceTime(alpha=1.5, lower_seconds=0.01, upper_seconds=1.0)
        samples = [model.sample(rng) for _ in range(10_000)]
        assert min(samples) >= 0.01
        assert max(samples) <= 1.0

    def test_bounded_pareto_mean_close_to_analytic(self, rng):
        model = BoundedParetoServiceTime(alpha=1.5, lower_seconds=0.01, upper_seconds=1.0)
        samples = [model.sample(rng) for _ in range(200_000)]
        assert np.mean(samples) == pytest.approx(model.mean(), rel=0.05)

    def test_bounded_pareto_invalid_bounds(self):
        with pytest.raises(WorkloadError):
            BoundedParetoServiceTime(lower_seconds=1.0, upper_seconds=0.5)

    def test_wiki_page_mixture_mean(self, rng):
        model = WikiPageServiceTime()
        samples = [model.sample(rng) for _ in range(100_000)]
        assert np.mean(samples) == pytest.approx(model.mean(), rel=0.05)

    def test_wiki_page_mixture_has_heavy_tail(self, rng):
        model = WikiPageServiceTime()
        samples = np.array([model.sample(rng) for _ in range(50_000)])
        # The MySQL-miss tail must be visible: the 99th percentile is far
        # above the median.
        assert np.percentile(samples, 99) > 2.0 * np.median(samples)

    def test_wiki_page_invalid_probability(self):
        with pytest.raises(WorkloadError):
            WikiPageServiceTime(miss_probability=1.5)

    def test_static_page_is_cheap(self, rng):
        model = StaticPageServiceTime()
        assert model.sample(rng) == pytest.approx(0.001)

    def test_describe_strings(self):
        for model in (
            ExponentialServiceTime(0.1),
            DeterministicServiceTime(0.1),
            LognormalServiceTime(0.1),
            BoundedParetoServiceTime(),
            WikiPageServiceTime(),
            StaticPageServiceTime(),
        ):
            assert isinstance(model.describe(), str) and model.describe()
