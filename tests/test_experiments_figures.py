"""Figure-rendering coverage, driven by the scenario registry.

Every registered scenario family must render its headline figure from a
tiny (smoke) configuration — so figure code cannot silently break as the
registry grows, and a new family cannot register without a working
``render``.  The classic per-figure helpers of
:mod:`repro.experiments.figures` are exercised on the same cheap runs.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import figures, registry
from repro.experiments.scenario import ScenarioResult, ScenarioSpec, run_scenario


@pytest.fixture(scope="module")
def smoke_results():
    """One smoke-config run per registered scenario (shared by the tests)."""
    return {
        spec.name: run_scenario(spec, spec.smoke_config(), jobs=1)
        for spec in registry.specs()
    }


def test_registry_is_not_empty():
    assert len(registry.names()) >= 5


@pytest.mark.parametrize("name", registry.names())
def test_every_registered_scenario_renders_its_figure(name, smoke_results):
    spec = registry.get(name)
    text = spec.render(smoke_results[name])
    assert isinstance(text, str)
    assert text.strip(), f"scenario {name!r} rendered an empty figure"
    # A rendered figure is a titled table: multiple lines, headed.
    assert len(text.splitlines()) >= 3


@pytest.mark.parametrize("name", registry.names())
def test_render_scenario_figure_dispatches_through_the_registry(
    name, smoke_results
):
    direct = registry.get(name).render(smoke_results[name])
    dispatched = figures.render_scenario_figure(name, smoke_results[name])
    assert dispatched == direct


def test_render_scenario_figure_unknown_name_is_loud():
    with pytest.raises(ExperimentError, match="unknown scenario"):
        figures.render_scenario_figure("not-registered", None)


def test_render_without_figure_is_loud():
    class Bare(ScenarioSpec):
        name = "bare"

        def default_config(self):
            return None

        def smoke_config(self):
            return None

        def cells(self, config, **options):
            return []

        def make_trace(self, config, cell):
            raise NotImplementedError

        def build_platform(self, config, cell):
            raise NotImplementedError

        def run_once(self, config, cell, trace):
            raise NotImplementedError

        def aggregate(self, config, cells, payloads, trace_for):
            raise NotImplementedError

    with pytest.raises(ExperimentError, match="defines no figure"):
        Bare().render(ScenarioResult(scenario="bare", config=None))


# ----------------------------------------------------------------------
# classic per-figure helpers on the smoke runs
# ----------------------------------------------------------------------
def test_figure2_table_from_smoke_sweep(smoke_results):
    table = figures.render_figure2(smoke_results["poisson"])
    assert "Figure 2" in table
    assert "RR" in table and "SR4" in table


def test_figure_cdf_table_from_smoke_sweep(smoke_results):
    sweep = smoke_results["poisson"]
    config = sweep.config
    runs = {
        name: sweep.run(name, config.load_factors[0]) for name in sweep.policies()
    }
    table = figures.render_figure_cdf(runs, title="smoke CDF")
    assert "smoke CDF" in table


def test_figures_6_7_8_from_smoke_replay(smoke_results):
    replay = smoke_results["wikipedia"]
    assert "Figure 6" in figures.render_figure6(replay)
    for name in replay.policies():
        assert "Figure 7" in figures.render_figure7(replay, name)
    assert "Figure 8" in figures.render_figure8(replay)
