"""Unit tests for the Segment Routing header."""

import pytest

from repro.errors import SegmentRoutingError
from repro.net.addressing import IPv6Address
from repro.net.srh import SRH_FIXED_SIZE, SRH_SEGMENT_SIZE, SegmentRoutingHeader


def _addr(suffix: int) -> IPv6Address:
    return IPv6Address.parse(f"fd00:100::{suffix:x}")


class TestConstruction:
    def test_from_traversal_sets_active_to_first_hop(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1), _addr(2), _addr(3)])
        assert srh.active_segment == _addr(1)
        assert srh.final_segment == _addr(3)
        assert srh.segments_left == 2

    def test_from_traversal_preserves_order(self):
        path = [_addr(1), _addr(2), _addr(3)]
        srh = SegmentRoutingHeader.from_traversal(path)
        assert list(srh.traversal_order()) == path

    def test_empty_traversal_rejected(self):
        with pytest.raises(SegmentRoutingError):
            SegmentRoutingHeader.from_traversal([])

    def test_empty_segment_list_rejected(self):
        with pytest.raises(SegmentRoutingError):
            SegmentRoutingHeader(segments=[], segments_left=0)

    def test_segments_left_out_of_range_rejected(self):
        with pytest.raises(SegmentRoutingError):
            SegmentRoutingHeader(segments=[_addr(1)], segments_left=1)

    def test_single_segment_is_immediately_exhausted(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1)])
        assert srh.exhausted
        assert srh.active_segment == _addr(1)


class TestAdvance:
    def test_advance_walks_the_traversal(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1), _addr(2), _addr(3)])
        assert srh.advance() == _addr(2)
        assert srh.advance() == _addr(3)
        assert srh.exhausted

    def test_advance_exhausted_raises(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1)])
        with pytest.raises(SegmentRoutingError):
            srh.advance()

    def test_next_segment_peeks_without_consuming(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1), _addr(2), _addr(3)])
        assert srh.next_segment() == _addr(2)
        assert srh.active_segment == _addr(1)

    def test_next_segment_on_exhausted_raises(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1)])
        with pytest.raises(SegmentRoutingError):
            srh.next_segment()

    def test_remaining_traversal(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1), _addr(2), _addr(3)])
        srh.advance()
        assert list(srh.remaining_traversal()) == [_addr(2), _addr(3)]


class TestSetSegmentsLeft:
    def test_service_hunting_accept_jumps_to_final_segment(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1), _addr(2), _addr(9)])
        new_active = srh.set_segments_left(0)
        assert new_active == _addr(9)
        assert srh.exhausted

    def test_segments_left_cannot_increase(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1), _addr(2), _addr(3)])
        srh.set_segments_left(1)
        with pytest.raises(SegmentRoutingError):
            srh.set_segments_left(2)

    def test_negative_rejected(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1), _addr(2)])
        with pytest.raises(SegmentRoutingError):
            srh.set_segments_left(-1)


class TestMisc:
    def test_copy_is_independent(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1), _addr(2), _addr(3)])
        clone = srh.copy()
        srh.advance()
        assert clone.segments_left == 2
        assert srh.segments_left == 1

    def test_size_accounts_for_each_segment(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1), _addr(2), _addr(3)])
        assert srh.size_bytes() == SRH_FIXED_SIZE + 3 * SRH_SEGMENT_SIZE

    def test_str_shows_traversal_order(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1), _addr(2)])
        text = str(srh)
        assert text.index("fd00:100::1") < text.index("fd00:100::2")

    def test_num_segments(self):
        srh = SegmentRoutingHeader.from_traversal([_addr(1), _addr(2), _addr(3)])
        assert srh.num_segments == 3
