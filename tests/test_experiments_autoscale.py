"""Tests for the autoscale scenario family.

Includes the PR's acceptance criterion: on the fixed-seed smoke config,
the reactive policy demonstrably tracks the diurnal load — strictly
fewer capacity-seconds than static over-provisioning at equal-or-better
p99 (and inside the configured SLO).
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments.autoscale_experiment import (
    AUTOSCALE_SCENARIO,
    make_diurnal_trace,
    make_diurnal_workload,
    run_autoscale,
)
from repro.experiments.config import AutoscaleConfig


@pytest.fixture(scope="module")
def smoke_result():
    """One serial smoke run shared by every test in the module."""
    return run_autoscale(AUTOSCALE_SCENARIO.smoke_config(), jobs=1)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        AutoscaleConfig()

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(min_servers=0),
            dict(min_servers=6, max_servers=4),
            dict(min_servers=1),  # floor below num_candidates (2)
            dict(mean_load=0.0),
            dict(load_amplitude=-0.1),
            dict(load_amplitude=0.6),  # exceeds mean_load
            dict(mean_load=0.8, load_amplitude=0.3),  # peak over capacity
            dict(scale_up_fraction=0.04, scale_down_fraction=0.12),
            dict(warmup_speed=0.0),
            dict(modes=()),
            dict(modes=("static", "clairvoyant")),
        ],
    )
    def test_bad_configs_are_loud(self, overrides):
        with pytest.raises(ExperimentError):
            AutoscaleConfig(**overrides)

    def test_testbed_sizes_per_mode(self):
        config = AutoscaleConfig(min_servers=3, max_servers=9)
        assert config.testbed_for("static").num_servers == 9
        assert config.testbed_for("reactive").num_servers == 3
        assert config.testbed_for("predictive").num_servers == 3

    def test_scaled_compresses_every_control_clock(self):
        config = AutoscaleConfig().scaled(0.5)
        base = AutoscaleConfig()
        assert config.duration == base.duration * 0.5
        assert config.provisioning_delay == base.provisioning_delay * 0.5
        assert config.scale_up_cooldown == base.scale_up_cooldown * 0.5
        assert config.prediction_horizon == base.prediction_horizon * 0.5
        # The controller's own clocks compress too — a scaled run is the
        # same trajectory on a faster clock, not a lazier controller.
        assert config.monitor_interval == base.monitor_interval * 0.5
        assert config.drain_check_interval == base.drain_check_interval * 0.5
        assert config.slope_time_constant == base.slope_time_constant * 0.5

    @pytest.mark.parametrize("time_factor", [1e308, float("inf")])
    def test_overflowing_time_factor_is_rejected_not_hung(self, time_factor):
        # An infinite duration would make the trace generator draw
        # arrivals forever; the config must refuse it up front.
        with pytest.raises(ExperimentError):
            AutoscaleConfig().scaled(time_factor)


class TestDiurnalTrace:
    def test_trace_is_deterministic(self):
        config = AUTOSCALE_SCENARIO.smoke_config()
        first = make_diurnal_trace(config)
        second = make_diurnal_trace(config)
        assert len(first) == len(second)
        assert [r.arrival_time for r in first] == [r.arrival_time for r in second]

    def test_rates_normalised_against_the_max_fleet(self):
        config = AUTOSCALE_SCENARIO.smoke_config()
        workload = make_diurnal_workload(config)
        # max fleet: 5 servers x 1 core / 0.1 s mean demand = 50 q/s.
        assert workload.mean_rate == pytest.approx(config.mean_load * 50.0)


class TestSmokeRun:
    def test_all_modes_ran_and_served(self, smoke_result):
        config = smoke_result.config
        assert list(smoke_result.keys()) == list(config.modes)
        for mode in smoke_result.keys():
            run = smoke_result.run(mode)
            assert run.requests_served > 0
            assert run.collector.totals.completed > 0

    def test_static_bill_is_the_full_fleet_for_the_full_day(self, smoke_result):
        config = smoke_result.config
        static = smoke_result.run("static")
        assert static.capacity_seconds == pytest.approx(
            config.max_servers * config.cores_per_server * config.duration
        )
        assert static.capacity.events == []
        assert static.monitor_series == []

    def test_elastic_fleets_actually_scaled(self, smoke_result):
        for mode in ("reactive", "predictive"):
            run = smoke_result.run(mode)
            assert run.capacity.scale_ups() > 0
            assert run.capacity.scale_downs() > 0
            assert run.capacity.drain_durations  # at least one graceful drain
            assert run.monitor_series  # the control loop sampled the fleet
            capacities = [value for _, value in run.capacity.series()]
            floor = smoke_result.config.min_servers
            assert min(capacities) >= floor * smoke_result.config.cores_per_server

    def test_acceptance_reactive_beats_static_on_cost_at_slo(self, smoke_result):
        """The PR's headline criterion, pinned on the fixed-seed config."""
        config = smoke_result.config
        static = smoke_result.run("static")
        reactive = smoke_result.run("reactive")
        # Demonstrably cheaper: a real saving, not a rounding artefact.
        assert reactive.capacity_seconds < 0.9 * static.capacity_seconds
        # At equal-or-better p99 (and both inside the SLO).
        assert reactive.p99 <= static.p99
        assert reactive.meets_slo and static.meets_slo
        assert reactive.p99 <= config.slo_p99

    def test_predictive_is_cheaper_than_static_inside_the_slo(self, smoke_result):
        static = smoke_result.run("static")
        predictive = smoke_result.run("predictive")
        assert predictive.capacity_seconds < static.capacity_seconds
        assert predictive.meets_slo

    def test_payload_roundtrip_preserves_the_metrics(self, smoke_result):
        run = smoke_result.run("reactive")
        rebuilt = run.export_payload().to_result()
        assert rebuilt.capacity_seconds == pytest.approx(run.capacity_seconds)
        assert rebuilt.p99 == pytest.approx(run.p99)
        assert rebuilt.capacity.series() == run.capacity.series()
        assert rebuilt.collector.totals.completed == run.collector.totals.completed

    def test_render_produces_both_tables(self, smoke_result):
        text = AUTOSCALE_SCENARIO.render(smoke_result)
        assert "capacity-s" in text
        assert "provisioned servers" in text
        for mode in smoke_result.keys():
            assert mode in text
