"""End-to-end tests for the telemetry plane.

Pins the subsystem's three load-bearing promises on real testbeds:

* **Determinism** — a run with a probe attached is bit-identical to the
  same run without one (the probe only reads), including when the
  gray-failure watchdog consumes its busy counts *through* the bus and
  when per-cell payloads merge across a ``jobs`` process pool;
* **The black box** — an SLO breach freezes a flight dump that
  round-trips through JSON;
* **Uniform counters** — every tier exposes the flat
  ``snapshot() -> {name: number}`` API the sampler is built on, and the
  chaos scenario's per-reason fault accounting stays internally
  consistent when streamed through it.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.experiments.adversarial_experiment import (
    ADVERSARIAL_SCENARIO,
    _attach_gray_failure,
    _build_adversarial_platform,
    make_adversarial_trace,
)
from repro.experiments.chaos_experiment import (
    CHAOS_SCENARIO,
    outcome_fingerprint,
    run_chaos,
    run_chaos_once,
)
from repro.experiments.config import TestbedConfig, sr_policy
from repro.experiments.platform import build_testbed
from repro.telemetry import runtime
from repro.telemetry.probe import DEFAULT_WATCHED
from repro.telemetry.recorder import FlightDump
from repro.workload.requests import Request
from repro.workload.trace import Trace


@pytest.fixture
def telemetry_on():
    """Enable telemetry for one test, restoring a clean runtime after."""
    already = runtime.telemetry_enabled()
    runtime.enable()
    runtime.drain()
    yield
    if not already:
        runtime.disable()
    runtime.drain()
    runtime.set_last_report(None)


def _burst_trace(count=40):
    """Overlapping fixed-demand requests: enough load to move gauges."""
    return Trace(
        [
            Request(
                request_id=910_000 + index,
                arrival_time=index * 0.01,
                service_demand=0.05,
                kind="php",
            )
            for index in range(count)
        ]
    )


class TestProbeLifecycle:
    def test_probe_attaches_only_when_enabled(self, small_testbed_config):
        plain = build_testbed(small_testbed_config, sr_policy(4))
        assert plain.telemetry is None

    def test_build_testbed_attaches_and_starts_probe(
        self, small_testbed_config, telemetry_on
    ):
        testbed = build_testbed(small_testbed_config, sr_policy(4))
        assert testbed.telemetry is not None
        assert testbed.telemetry.active
        # The traffic generator's cold-path events feed the black box.
        assert testbed.client.flight_recorder is testbed.telemetry.recorder

    def test_run_trace_publishes_one_payload(
        self, small_testbed_config, telemetry_on
    ):
        testbed = build_testbed(small_testbed_config, sr_policy(4))
        testbed.run_trace(_burst_trace())
        assert not testbed.telemetry.active  # stopped at the horizon
        published = runtime.drain()
        assert len(published) == 1
        _name, payload = published[0]
        assert payload.meta["samples"] == testbed.telemetry.samples_taken > 0
        names = set(payload.names)
        assert set(DEFAULT_WATCHED) <= names
        assert {"lb.syn_dispatched", "client.syn_retransmits"} <= names
        assert "fabric.packets_delivered" in names
        times, values = payload.series("server.busy_fraction")
        assert times.size == values.size > 0


class TestDeterminism:
    def test_run_outcome_bit_identical_with_probe_attached(
        self, small_testbed_config, telemetry_on
    ):
        runtime.disable()
        plain = build_testbed(small_testbed_config, sr_policy(4))
        assert plain.telemetry is None  # the control run samples nothing
        plain.run_trace(_burst_trace())

        runtime.enable()
        sampled = build_testbed(small_testbed_config, sr_policy(4))
        assert sampled.telemetry is not None
        sampled.run_trace(_burst_trace())

        assert outcome_fingerprint(sampled.collector) == outcome_fingerprint(
            plain.collector
        )
        assert sampled.collector.totals.completed == plain.collector.totals.completed

    def test_chaos_report_merges_identically_across_jobs(self, telemetry_on):
        config = dataclasses.replace(
            CHAOS_SCENARIO.smoke_config(),
            num_queries=200,
            modes=("baseline", "loss"),
        )
        reports = {}
        comparisons = {}
        for jobs in (1, 2):
            comparisons[jobs] = run_chaos(config, jobs=jobs)
            reports[jobs] = runtime.last_report()
            runtime.drain()
        for mode in config.modes:
            assert (
                comparisons[1].run(mode).fingerprint
                == comparisons[2].run(mode).fingerprint
            )
            serial, pooled = reports[1].payload(mode), reports[2].payload(mode)
            assert serial.names == pooled.names
            assert serial.kinds == pooled.kinds
            for index in range(len(serial.names)):
                np.testing.assert_array_equal(serial.times[index], pooled.times[index])
                np.testing.assert_array_equal(
                    serial.values[index], pooled.values[index]
                )
            assert serial.anomalies == pooled.anomalies


def _run_gray_failure(config):
    """One gray-failure run, regression-test style (keeps the testbed)."""
    trace = make_adversarial_trace(config)
    testbed = _build_adversarial_platform(config, "gray-failure")
    tier = testbed.lb_tier
    for instance in tier.instances:
        instance.start_housekeeping(config.housekeeping_interval)
    testbed.at_horizon(lambda: [i.stop_housekeeping() for i in tier.instances])
    watchdog = _attach_gray_failure(testbed, config, trace)
    testbed.run_trace(trace)
    return testbed, watchdog


class TestWatchdogOverTelemetry:
    def test_quarantine_decisions_identical_through_the_bus(self, telemetry_on):
        """The watchdog fed from telemetry series reproduces the direct
        scoreboard-fed decisions bit-for-bit."""
        config = ADVERSARIAL_SCENARIO.smoke_config()

        runtime.disable()
        plain_testbed, plain_watchdog = _run_gray_failure(config)
        runtime.enable()
        fed_testbed, fed_watchdog = _run_gray_failure(config)

        assert fed_watchdog.quarantined == plain_watchdog.quarantined == ("server-0",)
        assert [
            (event.server, event.time) for event in fed_watchdog.events
        ] == [(event.server, event.time) for event in plain_watchdog.events]
        assert outcome_fingerprint(fed_testbed.collector) == outcome_fingerprint(
            plain_testbed.collector
        )

        # The fed run's inputs really went through the bus, and the
        # quarantine tripped a black-box dump.
        probe = fed_testbed.telemetry
        assert "watchdog.busy.server-0" in probe.bus
        reasons = [dump.reason for dump in probe.recorder.dumps]
        assert "quarantine:server-0" in reasons


class TestFlightDumpOnSLOBreach:
    def test_slo_breach_freezes_a_json_round_trippable_dump(
        self, small_testbed_config, telemetry_on
    ):
        testbed = build_testbed(small_testbed_config, sr_policy(4))
        probe = testbed.telemetry
        probe.add_slo("server.busy_fraction", threshold=0.0, window=3.0)
        probe.recorder.record(0.0, "marker", "before-breach", 1.0)
        testbed.run_trace(_burst_trace())

        assert len(probe.recorder.dumps) == 1  # a rule trips exactly once
        dump = probe.recorder.dumps[0]
        assert dump.reason == "slo:server.busy_fraction"
        assert dump.window == 3.0
        assert any(event.label == "before-breach" for event in dump.events)

        clone = FlightDump.from_json_dict(json.loads(json.dumps(dump.to_json_dict())))
        assert clone == dump

        # The dump rides inside the published payload's metadata.
        payload = probe.export_payload()
        assert payload.meta["flight_dumps"] == [dump.to_json_dict()]


class TestUniformSnapshotAPI:
    def test_every_tier_exposes_flat_numeric_counters(self, telemetry_on):
        config = TestbedConfig(
            num_servers=4,
            workers_per_server=8,
            cores_per_server=2,
            backlog_capacity=16,
            num_load_balancers=2,
        )
        testbed = build_testbed(config, sr_policy(4))
        testbed.run_trace(_burst_trace())

        snapshots = {
            "edge": testbed.lb_tier.router.stats.snapshot(),
            "fabric": testbed.fabric.stats.snapshot(),
        }
        for instance in testbed.load_balancers():
            snapshots[f"lb.{instance.name}"] = instance.stats.snapshot()
        for server in testbed.servers:
            snapshots[f"http.{server.name}"] = server.app.stats.snapshot()
            snapshots[f"board.{server.name}"] = server.app.scoreboard.snapshot()
        for tier, snapshot in snapshots.items():
            assert snapshot, tier
            for name, value in snapshot.items():
                assert isinstance(name, str), tier
                assert isinstance(value, (int, float)), f"{tier}.{name}"

    def test_chaos_fault_accounting_identity(self):
        config = dataclasses.replace(
            CHAOS_SCENARIO.smoke_config(), num_queries=300, modes=("loss",)
        )
        result = run_chaos_once(config, "loss")
        stats = result.fault_stats
        assert stats["packets_sent"] > 0
        assert stats["packets_dropped"] > 0
        # Per-reason totals partition the drop count exactly.
        assert stats["packets_dropped"] == (
            stats["packets_dropped_queue_full"]
            + stats["packets_dropped_sink_detached"]
            + stats["packets_dropped_loss"]
            + stats["packets_dropped_burst"]
            + stats["packets_dropped_corrupted"]
            + stats["packets_dropped_link_down"]
        )
        # The named payload fields and the snapshot stay in lockstep.
        assert result.fault_packets_dropped == stats["packets_dropped"]
        assert result.fault_dropped_loss == stats["packets_dropped_loss"]
