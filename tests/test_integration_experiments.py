"""Integration tests: reduced-scale versions of the paper's experiments.

These runs use the full paper topology (12 servers, 32 workers, 2 cores)
but far fewer queries than the paper, so they finish in seconds while
still exercising every moving part end to end.  Assertions target the
*qualitative* findings of the paper: SR4 beats RR under heavy load, high
thresholds bring little benefit under light load, SRdyn tracks the best
static policy, the fairness index improves, and overload produces resets
rather than hangs.
"""

import dataclasses

import pytest

from repro.experiments.calibration import (
    analytic_saturation_rate,
    find_empirical_saturation_rate,
)
from repro.experiments.config import (
    PoissonSweepConfig,
    TestbedConfig,
    WikipediaReplayConfig,
    rr_policy,
    sr_policy,
    srdyn_policy,
)
from repro.experiments.poisson_experiment import PoissonSweep, run_poisson_once
from repro.experiments.wikipedia_experiment import WikipediaReplay, make_wikipedia_trace
from repro.experiments import figures
from repro.metrics.fairness import jain_fairness_index

#: Queries per run: small enough for CI, large enough for stable means.
NUM_QUERIES = 2_500


@pytest.fixture(scope="module")
def heavy_load_runs():
    """RR, SR4 and SRdyn at the paper's heavy load factor (shared by tests)."""
    config = TestbedConfig()
    runs = {}
    for spec in (rr_policy(), sr_policy(4), srdyn_policy()):
        runs[spec.name] = run_poisson_once(
            config,
            spec,
            load_factor=0.88,
            num_queries=NUM_QUERIES,
            sample_load=True,
        )
    return runs


class TestHeavyLoadComparison:
    def test_all_queries_complete_without_drops(self, heavy_load_runs):
        for name, run in heavy_load_runs.items():
            assert run.collector.totals.completed == NUM_QUERIES, name
            assert run.collector.totals.failed == 0, name

    def test_sr4_beats_rr_substantially(self, heavy_load_runs):
        rr_mean = heavy_load_runs["RR"].mean_response_time
        sr4_mean = heavy_load_runs["SR4"].mean_response_time
        assert sr4_mean < 0.75 * rr_mean

    def test_srdyn_tracks_the_best_static_policy(self, heavy_load_runs):
        rr_mean = heavy_load_runs["RR"].mean_response_time
        sr4_mean = heavy_load_runs["SR4"].mean_response_time
        dyn_mean = heavy_load_runs["SRdyn"].mean_response_time
        assert dyn_mean < rr_mean
        # Within 50% of SR4: "close to the best static policy" without
        # requiring it to win.
        assert dyn_mean < 1.5 * sr4_mean

    def test_response_time_tail_is_shorter_with_sr4(self, heavy_load_runs):
        rr_p90 = heavy_load_runs["RR"].summary.p90
        sr4_p90 = heavy_load_runs["SR4"].summary.p90
        assert sr4_p90 < rr_p90

    def test_sr4_spreads_load_more_fairly(self, heavy_load_runs):
        def mean_fairness(run):
            samples = [
                jain_fairness_index(row)
                for row in run.load_sampler.samples
                if sum(row) > 0
            ]
            return sum(samples) / len(samples)

        assert mean_fairness(heavy_load_runs["SR4"]) > mean_fairness(heavy_load_runs["RR"])

    def test_every_query_is_accounted_for_at_the_servers(self, heavy_load_runs):
        for run in heavy_load_runs.values():
            assert run.requests_served == NUM_QUERIES
            assert sum(run.acceptance_counts.values()) == NUM_QUERIES


class TestLightLoadComparison:
    def test_high_thresholds_bring_no_benefit_under_light_load(self):
        config = TestbedConfig()
        results = {}
        for spec in (rr_policy(), sr_policy(4), sr_policy(16)):
            results[spec.name] = run_poisson_once(
                config, spec, load_factor=0.3, num_queries=NUM_QUERIES
            ).mean_response_time
        # SR16 is essentially RR at this load (within 15 %), while SR4
        # still helps.
        assert results["SR16"] == pytest.approx(results["RR"], rel=0.15)
        assert results["SR4"] <= results["RR"] * 1.05


class TestOverload:
    def test_overload_produces_resets_not_hangs(self):
        config = TestbedConfig()
        run = run_poisson_once(
            config,
            rr_policy(),
            load_factor=1.6,
            num_queries=4_000,
        )
        totals = run.collector.totals
        # Every query terminated (served or reset): nothing hangs.
        assert totals.total == 4_000
        assert totals.failed > 0
        assert run.connections_reset == totals.failed

    def test_no_resets_below_saturation(self):
        config = TestbedConfig()
        run = run_poisson_once(
            config, sr_policy(4), load_factor=0.7, num_queries=NUM_QUERIES
        )
        assert run.connections_reset == 0


class TestPoissonSweep:
    def test_sweep_produces_figure2_series(self):
        config = PoissonSweepConfig(
            load_factors=(0.5, 0.88),
            num_queries=1_200,
            policies=(rr_policy(), sr_policy(4)),
        )
        sweep = PoissonSweep(config).run()
        series = figures.figure2_series(sweep)
        assert set(series) == {"RR", "SR4"}
        assert [rho for rho, _ in series["RR"]] == [0.5, 0.88]
        # Response times grow with load for both policies.
        assert series["RR"][1][1] > series["RR"][0][1]
        # SR4 is no worse than RR at the heavy point.
        assert series["SR4"][1][1] <= series["RR"][1][1]
        text = figures.render_figure2(sweep)
        assert "Figure 2" in text and "SR4" in text

    def test_cdf_and_figure4_renderers(self):
        config = TestbedConfig()
        runs = {
            spec.name: run_poisson_once(
                config, spec, load_factor=0.88, num_queries=800, sample_load=True
            )
            for spec in (rr_policy(), sr_policy(4))
        }
        cdf_text = figures.render_figure_cdf(runs, title="Figure 3")
        assert "Figure 3" in cdf_text
        fig4 = figures.figure4_series(runs)
        assert set(fig4) == {"RR", "SR4"}
        assert len(fig4["RR"].mean_load) > 0
        fig4_text = figures.render_figure4(runs)
        assert "fairness" in fig4_text


class TestCalibrationProcedure:
    def test_empirical_rate_brackets_the_analytic_estimate(self):
        config = dataclasses.replace(TestbedConfig(), num_servers=4)
        result = find_empirical_saturation_rate(
            config, num_queries=1_500, num_iterations=3
        )
        analytic = analytic_saturation_rate(config)
        assert result.analytic_rate == pytest.approx(analytic)
        assert 0.7 * analytic <= result.saturation_rate <= 1.6 * analytic
        assert len(result.probes) >= 2


class TestWikipediaReplay:
    @pytest.fixture(scope="class")
    def replay_result(self):
        config = dataclasses.replace(
            WikipediaReplayConfig(), static_per_wiki=0.25
        ).compressed(duration=240.0)
        trace = make_wikipedia_trace(config)
        return WikipediaReplay(config).run(trace=trace), trace

    def test_replay_completes_for_both_policies(self, replay_result):
        result, trace = replay_result
        for name in ("RR", "SR4"):
            run = result.run(name)
            totals = run.collector.totals
            assert totals.total == len(trace)

    def test_static_pages_are_fast_for_both_policies(self, replay_result):
        result, _ = replay_result
        for name in ("RR", "SR4"):
            static_times = result.run(name).static_response_times()
            assert static_times, "static requests must be present"
            assert sorted(static_times)[len(static_times) // 2] < 0.2

    def test_figure_series_have_consistent_shapes(self, replay_result):
        result, trace = replay_result
        fig6 = figures.figure6_series(result)
        assert set(fig6) == {"RR", "SR4"}
        assert len(fig6["RR"]["rate"]) == len(fig6["SR4"]["median"])
        fig7 = figures.figure7_series(result)
        assert all(len(deciles) == 9 for _, deciles in fig7["RR"])
        fig8 = figures.figure8_series(result)
        assert set(fig8) == {"RR", "SR4"}
        assert "Figure 6" in figures.render_figure6(result)
        assert "Figure 7" in figures.render_figure7(result, "SR4")
        assert "Figure 8" in figures.render_figure8(result)

    def test_sr4_whole_day_distribution_is_no_worse_than_rr(self, replay_result):
        result, _ = replay_result
        rr_q3 = result.run("RR").wiki_quartiles()[2]
        sr4_q3 = result.run("SR4").wiki_quartiles()[2]
        assert sr4_q3 <= rr_q3 * 1.05
