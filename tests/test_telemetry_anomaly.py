"""Edge-case tests for the EWMA-residual anomaly layer (satellite 3).

Pins the semantics promised in the module docstring: constant series
never alarm, the first sample defines the baseline (a step at t=0 is a
level, not an anomaly), single-sample series emit nothing, and
non-finite samples are rejected loudly.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import MetricsValidationError, TelemetryError
from repro.telemetry.anomaly import (
    AnomalyMonitor,
    EWMAResidualDetector,
)


class TestEWMAResidualDetector:
    def test_constant_series_never_alarms(self):
        detector = EWMAResidualDetector("flat", min_samples=2)
        for step in range(200):
            assert detector.update(float(step), 3.5) is None

    def test_step_at_t0_defines_baseline(self):
        # A series that starts high and stays there: the first sample is
        # the level, not a deviation from zero.
        detector = EWMAResidualDetector("step", min_samples=2)
        for step in range(50):
            assert detector.update(float(step), 1000.0) is None

    def test_single_sample_emits_nothing(self):
        detector = EWMAResidualDetector("lonely")
        assert detector.update(0.0, 42.0) is None
        assert detector.samples_seen == 1

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_sample_is_loud(self, bad):
        detector = EWMAResidualDetector("poisoned")
        with pytest.raises(MetricsValidationError):
            detector.update(0.0, bad)

    def test_spike_detected_after_warmup(self):
        # τ comparable to the tick spacing so the deviation estimate
        # converges within the warmup and the wiggles stay in-band.
        detector = EWMAResidualDetector(
            "busy", time_constant=0.5, threshold=4.0, min_samples=5
        )
        events = []
        time = 0.0
        # A gently wiggling baseline so the deviation estimate is
        # non-zero, then a large spike.
        for step in range(40):
            time = step * 0.25
            wiggle = 0.01 if step % 2 else -0.01
            event = detector.update(time, 1.0 + wiggle)
            assert event is None
        event = detector.update(time + 0.25, 50.0)
        assert event is not None
        assert event.kind == "spike"
        assert event.series == "busy"
        assert event.value == 50.0
        assert event.residual > 0
        assert abs(event.residual) > event.threshold

    def test_drop_detected_after_warmup(self):
        detector = EWMAResidualDetector("busy", time_constant=0.5, min_samples=5)
        time = 0.0
        for step in range(40):
            time = step * 0.25
            wiggle = 0.01 if step % 2 else -0.01
            detector.update(time, 10.0 + wiggle)
        event = detector.update(time + 0.25, 0.0)
        assert event is not None
        assert event.kind == "drop"
        assert event.residual < 0

    def test_no_alarm_before_min_samples(self):
        detector = EWMAResidualDetector("early", min_samples=50)
        time = 0.0
        for step in range(20):
            time = step * 0.25
            wiggle = 0.01 if step % 2 else -0.01
            detector.update(time, 1.0 + wiggle)
        # Well inside warmup: even a huge excursion stays silent.
        assert detector.update(time + 0.25, 1000.0) is None

    def test_invalid_threshold_is_loud(self):
        with pytest.raises(TelemetryError):
            EWMAResidualDetector("x", threshold=0.0)

    def test_invalid_min_samples_is_loud(self):
        with pytest.raises(TelemetryError):
            EWMAResidualDetector("x", min_samples=0)


class TestAnomalyMonitor:
    def test_watch_is_idempotent_and_ordered(self):
        monitor = AnomalyMonitor()
        first = monitor.watch("b")
        monitor.watch("a")
        assert monitor.watch("b") is first
        assert monitor.watched() == ("b", "a")

    def test_observe_logs_events(self):
        monitor = AnomalyMonitor(time_constant=0.5, min_samples=5)
        time = 0.0
        for step in range(40):
            time = step * 0.25
            wiggle = 0.01 if step % 2 else -0.01
            monitor.observe("busy", time, 1.0 + wiggle)
        assert monitor.events == []
        event = monitor.observe("busy", time + 0.25, 50.0)
        assert event is not None
        assert monitor.events == [event]

    def test_series_are_independent(self):
        monitor = AnomalyMonitor(min_samples=2)
        for step in range(30):
            monitor.observe("flat", step * 0.25, 7.0)
            wiggle = 0.01 if step % 2 else -0.01
            monitor.observe("wiggly", step * 0.25, 1.0 + wiggle)
        monitor.observe("wiggly", 7.75, 99.0)
        assert {event.series for event in monitor.events} == {"wiggly"}
