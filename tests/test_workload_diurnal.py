"""Tests for the diurnal workload (:mod:`repro.workload.diurnal`)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.diurnal import DiurnalWorkload


def _workload(**overrides):
    params = dict(
        mean_rate=20.0,
        amplitude=10.0,
        period=100.0,
        duration=100.0,
        num_steps=20,
    )
    params.update(overrides)
    return DiurnalWorkload(**params)


class TestValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("mean_rate", 0.0),
            ("amplitude", -1.0),
            ("amplitude", 25.0),  # exceeds the mean: rate would go negative
            ("period", 0.0),
            ("duration", -5.0),
            ("num_steps", 0),
            ("noise", -0.1),
            ("min_rate", 0.0),
            # Non-finite rates/durations would make arrival generation
            # loop forever; they must be rejected, not attempted.
            ("duration", float("inf")),
            ("period", float("nan")),
            ("mean_rate", float("inf")),
        ],
    )
    def test_bad_parameters_are_loud(self, field, value):
        with pytest.raises(WorkloadError):
            _workload(**{field: value})


class TestSinusoid:
    def test_starts_at_the_trough_and_peaks_mid_period(self):
        workload = _workload()
        assert workload.rate_at(0.0) == pytest.approx(10.0)
        assert workload.rate_at(50.0) == pytest.approx(30.0)
        assert workload.rate_at(100.0) == pytest.approx(10.0)

    def test_phases_cover_the_duration_exactly(self):
        workload = _workload(num_steps=16)
        phases = workload.phases()
        assert len(phases) == 16
        assert sum(phase.duration for phase in phases) == pytest.approx(100.0)

    def test_noiseless_phases_follow_the_curve(self):
        workload = _workload(num_steps=4)
        rates = [phase.rate for phase in workload.phases()]
        # Trough-side steps are slower than peak-side steps.
        assert rates[0] < rates[1]
        assert rates[1] == pytest.approx(rates[2])  # symmetric around the peak
        assert rates[2] > rates[3]

    def test_min_rate_floor_applies(self):
        workload = _workload(amplitude=10.0, min_rate=15.0)
        assert all(phase.rate >= 15.0 for phase in workload.phases())

    def test_noise_perturbs_but_respects_the_floor(self):
        workload = _workload(noise=1.0, min_rate=5.0)
        rng = np.random.default_rng(7)
        noisy = [phase.rate for phase in workload.phases(rng)]
        clean = [phase.rate for phase in workload.phases()]
        assert noisy != clean
        assert all(rate >= 5.0 for rate in noisy)

    def test_noise_without_rng_keeps_the_pure_sinusoid(self):
        workload = _workload(noise=0.5)
        assert [p.rate for p in workload.phases()] == [
            p.rate for p in workload.phases(None)
        ]


class TestGeneration:
    def test_same_seed_same_trace(self):
        workload = _workload(noise=0.1)
        first = workload.generate(np.random.default_rng(42))
        second = workload.generate(np.random.default_rng(42))
        assert len(first) == len(second)
        assert [r.arrival_time for r in first] == [r.arrival_time for r in second]
        assert [r.service_demand for r in first] == [
            r.service_demand for r in second
        ]

    def test_request_ids_are_trace_local(self):
        trace = _workload().generate(np.random.default_rng(1))
        assert [request.request_id for request in trace] == list(
            range(1, len(trace) + 1)
        )

    def test_arrival_count_tracks_the_expected_volume(self):
        workload = _workload(mean_rate=50.0, amplitude=20.0, duration=200.0,
                             period=200.0, num_steps=40)
        trace = workload.generate(np.random.default_rng(3))
        expected = workload.expected_queries()
        assert 0.85 * expected < len(trace) < 1.15 * expected

    def test_arrivals_are_denser_at_the_peak(self):
        workload = _workload(mean_rate=40.0, amplitude=30.0)
        trace = workload.generate(np.random.default_rng(5))
        trough_half = sum(1 for r in trace if r.arrival_time < 25.0)
        peak_half = sum(1 for r in trace if 25.0 <= r.arrival_time < 75.0)
        assert peak_half > 2 * trough_half

    def test_trace_name_describes_the_schedule(self):
        trace = _workload().generate(np.random.default_rng(0))
        assert trace.name.startswith("diurnal-")
