"""Unit tests for the flight recorder: interning, ring, trips, JSON."""

from __future__ import annotations

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.recorder import (
    DEFAULT_WINDOW,
    FlightDump,
    FlightEvent,
    FlightRecorder,
)


class TestInterning:
    def test_code_of_is_stable_and_dense(self):
        recorder = FlightRecorder(slots=8)
        code_a = recorder.code_of("drop", "loss")
        code_b = recorder.code_of("drop", "burst")
        assert recorder.code_of("drop", "loss") == code_a
        assert sorted({code_a, code_b}) == [0, 1]

    def test_record_decodes_back_to_labels(self):
        recorder = FlightRecorder(slots=8)
        recorder.record(1.0, "retransmit", "client-3", 2.0)
        (event,) = recorder.events()
        assert event == FlightEvent(1.0, "retransmit", "client-3", 2.0)

    def test_record_coded_matches_record(self):
        recorder = FlightRecorder(slots=8)
        code = recorder.code_of("strike", "server-0")
        recorder.record_coded(0.5, code, 1.0)
        recorder.record(1.5, "strike", "server-0", 2.0)
        events = recorder.events()
        assert [e.label for e in events] == ["server-0", "server-0"]
        assert [e.value for e in events] == [1.0, 2.0]


class TestRing:
    def test_events_oldest_first(self):
        recorder = FlightRecorder(slots=8)
        for step in range(5):
            recorder.record(float(step), "tick", "t")
        assert [e.time for e in recorder.events()] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_overwrite_keeps_newest(self):
        recorder = FlightRecorder(slots=4)
        for step in range(10):
            recorder.record(float(step), "tick", "t", float(step))
        events = recorder.events()
        assert [e.time for e in events] == [6.0, 7.0, 8.0, 9.0]
        assert len(recorder) == 4
        assert recorder.events_recorded == 10

    def test_invalid_slots_is_loud(self):
        with pytest.raises(TelemetryError):
            FlightRecorder(slots=0)


class TestTrip:
    def test_trip_filters_to_window(self):
        recorder = FlightRecorder(slots=64)
        for step in range(20):
            recorder.record(float(step), "tick", "t")
        dump = recorder.trip("slo:latency", now=19.0, window=5.0)
        assert dump.reason == "slo:latency"
        assert dump.tripped_at == 19.0
        # Cutoff is now - window = 14.0, inclusive.
        assert [e.time for e in dump.events] == [14.0, 15.0, 16.0, 17.0, 18.0, 19.0]
        assert recorder.dumps == [dump]

    def test_trip_default_window(self):
        recorder = FlightRecorder(slots=8)
        dump = recorder.trip("quarantine:server-1", now=10.0)
        assert dump.window == DEFAULT_WINDOW
        assert dump.events == ()

    def test_trip_invalid_window_is_loud(self):
        with pytest.raises(TelemetryError):
            FlightRecorder(slots=8).trip("x", now=1.0, window=0.0)


class TestDumpJson:
    def test_round_trip_through_json_text(self):
        recorder = FlightRecorder(slots=16)
        recorder.record(1.0, "drop", "loss", 1.0)
        recorder.record(2.0, "retransmit", "client-0", 3.0)
        dump = recorder.trip("slo:busy", now=2.5, window=5.0)
        clone = FlightDump.from_json_dict(
            json.loads(json.dumps(dump.to_json_dict()))
        )
        assert clone == dump

    def test_malformed_json_is_loud(self):
        with pytest.raises(TelemetryError):
            FlightDump.from_json_dict({"reason": "x"})
