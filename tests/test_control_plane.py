"""Unit tests for the elastic control plane (:mod:`repro.control`).

Covers the fleet monitor's sampling/smoothing, both scaling policies,
the server lifecycle state machine (provisioning delay, warm-up speed,
graceful drain, capacity accounting), the autoscaler's bounds and
cooldowns, and the mid-run CPU speed change the warm-up relies on.
"""

from types import SimpleNamespace

import pytest

from repro.control.autoscaler import Autoscaler
from repro.control.lifecycle import ServerLifecycle, ServerState
from repro.control.monitor import FleetMonitor, FleetSample
from repro.control.policy import (
    PredictiveEwmaPolicy,
    ReactiveThresholdPolicy,
    ScalingPolicy,
    make_scaling_policy,
)
from repro.errors import ExperimentError, ReproError
from repro.experiments.config import TestbedConfig, rr_policy
from repro.experiments.platform import build_testbed
from repro.metrics.capacity import CapacityTracker
from repro.server.cpu import FIFOCPU, ProcessorSharingCPU
from repro.sim.engine import Simulator


def _sample(time=0.0, smoothed=0.5, servers=4, workers=32):
    return FleetSample(
        time=time,
        serving_servers=servers,
        busy_threads=int(smoothed * workers),
        total_workers=workers,
        backlog_depth=0,
        busy_fraction=smoothed,
        smoothed_busy_fraction=smoothed,
    )


def _stub_server(busy=4, workers=8, backlog=0):
    return SimpleNamespace(
        busy_threads=busy,
        app=SimpleNamespace(
            scoreboard=SimpleNamespace(num_slots=workers),
            backlog=SimpleNamespace(depth=backlog),
        ),
    )


def _small_testbed(num_servers=2, policy=None):
    config = TestbedConfig(
        num_servers=num_servers, workers_per_server=4, backlog_capacity=8
    )
    return build_testbed(config, policy or rr_policy())


class TestFleetMonitor:
    def test_observe_aggregates_the_serving_fleet(self):
        monitor = FleetMonitor()
        sample = monitor.observe(
            1.0, [_stub_server(busy=2, backlog=3), _stub_server(busy=6, backlog=1)]
        )
        assert sample.serving_servers == 2
        assert sample.busy_threads == 8
        assert sample.total_workers == 16
        assert sample.backlog_depth == 4
        assert sample.busy_fraction == pytest.approx(0.5)
        # First sample: the EWMA starts at the raw value.
        assert sample.smoothed_busy_fraction == pytest.approx(0.5)

    def test_smoothing_lags_a_step_change(self):
        monitor = FleetMonitor(time_constant=5.0)
        monitor.observe(0.0, [_stub_server(busy=0)])
        sample = monitor.observe(1.0, [_stub_server(busy=8)])
        assert 0.0 < sample.smoothed_busy_fraction < sample.busy_fraction

    def test_empty_fleet_yields_zero_fraction(self):
        monitor = FleetMonitor()
        sample = monitor.observe(0.0, [])
        assert sample.busy_fraction == 0.0
        assert sample.total_workers == 0

    def test_series_and_latest(self):
        monitor = FleetMonitor()
        with pytest.raises(ReproError):
            monitor.latest
        monitor.observe(0.0, [_stub_server()])
        monitor.observe(1.0, [_stub_server()])
        assert len(monitor) == 2
        assert monitor.latest.time == 1.0
        assert [time for time, _ in monitor.busy_fraction_series()] == [0.0, 1.0]


class TestReactivePolicy:
    def test_threshold_band(self):
        policy = ReactiveThresholdPolicy(low=0.2, high=0.6)
        assert policy.desired_step(_sample(smoothed=0.7)) == 1
        assert policy.desired_step(_sample(smoothed=0.4)) == 0
        assert policy.desired_step(_sample(smoothed=0.1)) == -1

    def test_watermark_validation(self):
        with pytest.raises(ReproError):
            ReactiveThresholdPolicy(low=0.6, high=0.4)
        with pytest.raises(ReproError):
            ReactiveThresholdPolicy(low=-0.1, high=0.5)


class TestPredictivePolicy:
    def test_rising_ramp_triggers_before_the_threshold(self):
        policy = PredictiveEwmaPolicy(
            low=0.2, high=0.6, horizon=10.0, slope_time_constant=1.0
        )
        # Climbing 0.02/s from 0.4: the instantaneous signal stays below
        # high for ten more seconds, but the forecast crosses it.
        steps = [
            policy.desired_step(_sample(time=t, smoothed=0.4 + 0.02 * t))
            for t in range(0, 6)
        ]
        assert steps[0] == 0  # no slope estimate yet
        assert 1 in steps
        assert all(s >= 0 for s in steps)

    def test_falling_signal_scales_down(self):
        policy = PredictiveEwmaPolicy(low=0.3, high=0.7, horizon=5.0)
        steps = [
            policy.desired_step(_sample(time=t, smoothed=0.5 - 0.04 * t))
            for t in range(0, 8)
        ]
        assert -1 in steps

    def test_reset_forgets_the_slope(self):
        policy = PredictiveEwmaPolicy()
        policy.desired_step(_sample(time=0.0, smoothed=0.4))
        policy.desired_step(_sample(time=1.0, smoothed=0.5))
        policy.reset()
        assert policy.forecast(_sample(time=2.0, smoothed=0.5)) == pytest.approx(0.5)


class TestPolicyFactory:
    def test_known_names(self):
        assert isinstance(make_scaling_policy("reactive"), ReactiveThresholdPolicy)
        assert isinstance(make_scaling_policy("predictive"), PredictiveEwmaPolicy)

    def test_unknown_name_is_loud(self):
        with pytest.raises(ReproError, match="unknown scaling policy"):
            make_scaling_policy("psychic")


class TestTestbedElasticHooks:
    def test_add_server_joins_every_layer(self):
        testbed = _small_testbed(num_servers=2)
        server = testbed.add_server()
        assert server.name == "server-2"
        assert len(testbed.servers) == 3
        assert server.primary_address in testbed.load_balancer.backends_for(
            testbed.vip
        )
        # A second addition keeps numbering and addressing sequential.
        another = testbed.add_server()
        assert another.name == "server-3"
        assert another.primary_address.value == server.primary_address.value + 1

    def test_retire_server_leaves_the_pool_and_starts_draining(self):
        testbed = _small_testbed(num_servers=3)
        victim = testbed.servers[-1]
        testbed.retire_server(victim)
        assert victim.draining
        assert victim.primary_address not in testbed.load_balancer.backends_for(
            testbed.vip
        )

    def test_tier_deployment_propagates_backend_changes(self):
        config = TestbedConfig(
            num_servers=3, workers_per_server=4, num_load_balancers=2
        )
        testbed = build_testbed(config, rr_policy())
        server = testbed.add_server()
        for instance in testbed.lb_tier.instances:
            assert server.primary_address in instance.backends_for(testbed.vip)
        testbed.retire_server(server)
        for instance in testbed.lb_tier.instances:
            assert server.primary_address not in instance.backends_for(testbed.vip)


class TestServerLifecycle:
    def test_adopts_the_initial_fleet_as_active(self):
        testbed = _small_testbed(num_servers=2)
        lifecycle = ServerLifecycle(testbed)
        assert lifecycle.committed_count() == 2
        assert len(lifecycle.serving_nodes()) == 2
        assert lifecycle.provisioned_capacity() == pytest.approx(
            2 * testbed.config.cores_per_server
        )

    def test_provision_walks_through_warming_to_active(self):
        testbed = _small_testbed(num_servers=1)
        lifecycle = ServerLifecycle(
            testbed, provisioning_delay=2.0, warmup_duration=3.0, warmup_speed=0.5
        )
        record = lifecycle.provision()
        assert record.state is ServerState.PROVISIONING
        assert lifecycle.committed_count() == 2
        assert len(lifecycle.serving_nodes()) == 1  # not online yet

        testbed.simulator.run(until=2.5)
        assert record.state is ServerState.WARMING
        assert record.node is not None
        assert record.node.app.cpu.speed == pytest.approx(0.5)
        assert len(lifecycle.serving_nodes()) == 2

        testbed.simulator.run(until=5.5)
        assert record.state is ServerState.ACTIVE
        assert record.node.app.cpu.speed == pytest.approx(1.0)

    def test_zero_warmup_goes_straight_to_active(self):
        testbed = _small_testbed(num_servers=1)
        lifecycle = ServerLifecycle(
            testbed, provisioning_delay=1.0, warmup_duration=0.0
        )
        record = lifecycle.provision()
        testbed.simulator.run(until=1.5)
        assert record.state is ServerState.ACTIVE
        assert record.node.app.cpu.speed == pytest.approx(1.0)

    def test_drain_of_an_idle_server_detaches_after_one_grace_interval(self):
        # Even an idle server waits one check interval before detaching:
        # a candidate list naming it may still be in flight.
        testbed = _small_testbed(num_servers=2)
        lifecycle = ServerLifecycle(testbed, drain_check_interval=0.5)
        record = lifecycle.drainable()[0]
        lifecycle.drain(record)
        assert record.state is ServerState.DRAINING
        testbed.simulator.run(until=0.6)
        assert record.state is ServerState.DETACHED
        assert lifecycle.capacity.drain_durations == [0.5]
        assert lifecycle.provisioned_capacity() == pytest.approx(
            testbed.config.cores_per_server
        )

    def test_refused_drain_leaves_the_record_retryable(self):
        # Retiring the only pool member is refused by the LB layer; the
        # record must stay ACTIVE (not stuck in DRAINING) so the drain
        # can be retried once the fleet has grown again.
        testbed = _small_testbed(num_servers=1)
        lifecycle = ServerLifecycle(
            testbed, provisioning_delay=1.0, warmup_duration=0.0
        )
        record = lifecycle.drainable()[0]
        with pytest.raises(Exception):
            lifecycle.drain(record)
        assert record.state is ServerState.ACTIVE
        assert record.drain_started_at is None
        assert lifecycle.committed_count() == 1
        lifecycle.provision()
        testbed.simulator.run(until=1.5)
        lifecycle.drain(record)  # retry succeeds with a second pool member
        assert record.state is ServerState.DRAINING

    def test_drain_rejects_non_serving_records(self):
        testbed = _small_testbed(num_servers=2)
        lifecycle = ServerLifecycle(testbed)
        record = lifecycle.drainable()[0]
        lifecycle.drain(record)
        with pytest.raises(ExperimentError):
            lifecycle.drain(record)

    def test_capacity_seconds_integrates_the_step_function(self):
        testbed = _small_testbed(num_servers=2)
        lifecycle = ServerLifecycle(
            testbed, provisioning_delay=5.0, warmup_duration=0.0
        )
        cores = testbed.config.cores_per_server
        lifecycle.provision()  # paid from t=0 even while booting
        testbed.simulator.run(until=10.0)
        assert lifecycle.capacity.capacity_seconds(through=10.0) == pytest.approx(
            3 * cores * 10.0
        )


class _ScriptedPolicy(ScalingPolicy):
    """Deterministic step sequence for autoscaler unit tests."""

    name = "scripted"

    def __init__(self, steps):
        self._steps = list(steps)

    def desired_step(self, sample):
        return self._steps.pop(0) if self._steps else 0


class TestAutoscaler:
    def _scaler(self, testbed, steps, **kwargs):
        lifecycle = ServerLifecycle(
            testbed, provisioning_delay=0.5, warmup_duration=0.0
        )
        return Autoscaler(
            lifecycle=lifecycle,
            monitor=FleetMonitor(),
            policy=_ScriptedPolicy(steps),
            min_servers=kwargs.pop("min_servers", 1),
            max_servers=kwargs.pop("max_servers", 4),
            interval=1.0,
            **kwargs,
        )

    def test_bounds_suppress_out_of_range_actions(self):
        testbed = _small_testbed(num_servers=1)
        scaler = self._scaler(
            testbed, [-1, 1], min_servers=1, max_servers=1,
            scale_up_cooldown=0.0, scale_down_cooldown=0.0,
        )
        scaler.start(first_delay=0.0)
        testbed.simulator.run(until=2.5)
        scaler.stop()
        assert scaler.suppressed_actions == 2
        assert scaler.lifecycle.committed_count() == 1
        assert scaler.lifecycle.capacity.events == []

    def test_scale_down_waits_for_the_provisioned_server_to_serve(self):
        # committed=2 (one ACTIVE + one still PROVISIONING) clears the
        # min bound, but draining the only *serving* server would empty
        # every backend pool — the autoscaler must suppress the action,
        # not crash the run with a LoadBalancerError.
        testbed = _small_testbed(num_servers=1)
        lifecycle = ServerLifecycle(
            testbed, provisioning_delay=10.0, warmup_duration=0.0
        )
        scaler = Autoscaler(
            lifecycle=lifecycle,
            monitor=FleetMonitor(),
            policy=_ScriptedPolicy([1, -1, -1]),
            min_servers=1,
            max_servers=4,
            interval=1.0,
            scale_up_cooldown=0.0,
            scale_down_cooldown=0.0,
        )
        scaler.start(first_delay=0.0)
        testbed.simulator.run(until=3.5)
        scaler.stop()
        assert scaler.lifecycle.capacity.scale_downs() == 0
        assert scaler.suppressed_actions == 2
        assert testbed.load_balancer.backends_for(testbed.vip)  # pool intact

    def test_scale_down_keeps_the_serving_pool_at_min_servers(self):
        # committed=3 (two ACTIVE + one PROVISIONING) clears the min=2
        # bound, but a drain now would leave only one *serving* server —
        # below the floor that keeps candidate selection satisfiable.
        testbed = _small_testbed(num_servers=2)
        lifecycle = ServerLifecycle(
            testbed, provisioning_delay=10.0, warmup_duration=0.0
        )
        lifecycle.provision()
        scaler = Autoscaler(
            lifecycle=lifecycle,
            monitor=FleetMonitor(),
            policy=_ScriptedPolicy([-1]),
            min_servers=2,
            max_servers=4,
            interval=1.0,
            scale_up_cooldown=0.0,
            scale_down_cooldown=0.0,
        )
        scaler.start(first_delay=0.0)
        testbed.simulator.run(until=1.0)
        scaler.stop()
        assert scaler.lifecycle.capacity.scale_downs() == 0
        assert scaler.suppressed_actions == 1
        assert len(lifecycle.serving_nodes()) == 2

    def test_add_server_refuses_while_a_load_sampler_is_attached(self):
        from repro.errors import WorkloadError

        testbed = _small_testbed(num_servers=2)
        testbed.attach_load_sampler(interval=0.5)
        with pytest.raises(WorkloadError, match="load sampler"):
            testbed.add_server()
        testbed.stop_load_sampler()
        assert testbed.add_server().name == "server-2"

    def test_scale_up_cooldown_spaces_actions(self):
        testbed = _small_testbed(num_servers=1)
        scaler = self._scaler(
            testbed, [1, 1, 1], scale_up_cooldown=2.5, scale_down_cooldown=2.5
        )
        scaler.start(first_delay=0.0)
        testbed.simulator.run(until=2.5)
        scaler.stop()
        # Ticks at t=0, 1, 2: the first scales up, the next two sit
        # inside the cooldown window.
        assert scaler.lifecycle.capacity.scale_ups() == 1
        assert scaler.suppressed_actions == 2

    def test_scale_down_drains_the_newest_server(self):
        testbed = _small_testbed(num_servers=3)
        scaler = self._scaler(
            testbed, [-1], scale_up_cooldown=0.0, scale_down_cooldown=0.0
        )
        scaler.start(first_delay=0.0)
        testbed.simulator.run(until=1.0)
        scaler.stop()
        assert scaler.lifecycle.capacity.scale_downs() == 1
        [event] = scaler.lifecycle.capacity.events
        assert event.action == "scale-down"
        assert (event.servers_before, event.servers_after) == (3, 2)
        assert testbed.servers[-1].draining

    def test_stop_is_idempotent_and_restartable(self):
        testbed = _small_testbed(num_servers=1)
        scaler = self._scaler(testbed, [])
        scaler.start()
        assert scaler.active
        scaler.stop()
        scaler.stop()
        assert not scaler.active
        scaler.start()
        assert scaler.active
        scaler.stop()

    def test_bad_bounds_are_rejected(self):
        testbed = _small_testbed(num_servers=1)
        lifecycle = ServerLifecycle(testbed)
        with pytest.raises(ExperimentError):
            Autoscaler(
                lifecycle=lifecycle,
                monitor=FleetMonitor(),
                policy=_ScriptedPolicy([]),
                min_servers=3,
                max_servers=2,
            )


class TestCpuSetSpeed:
    def test_processor_sharing_replans_the_completion(self):
        simulator = Simulator(seed=1)
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        done = []
        cpu.add_job(1, 1.0, lambda job_id: done.append(simulator.now))
        simulator.schedule_at(0.5, lambda: cpu.set_speed(2.0))
        simulator.run()
        # Half the demand at speed 1 (0.5 s), the rest at speed 2 (0.25 s).
        assert done == [pytest.approx(0.75)]

    def test_fifo_replans_running_jobs(self):
        simulator = Simulator(seed=1)
        cpu = FIFOCPU(simulator, num_cores=1)
        done = []
        cpu.add_job(1, 1.0, lambda job_id: done.append(simulator.now))
        simulator.schedule_at(0.5, lambda: cpu.set_speed(0.5))
        simulator.run()
        # Half the demand at speed 1, the remaining 0.5 s demand at half
        # speed takes 1.0 s more.
        assert done == [pytest.approx(1.5)]

    def test_rejects_non_positive_speed(self):
        simulator = Simulator(seed=1)
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        with pytest.raises(Exception):
            cpu.set_speed(0.0)


class TestCapacityTracker:
    def test_integral_of_a_step_function(self):
        tracker = CapacityTracker(start_time=0.0, capacity=4.0)
        tracker.record(10.0, 6.0)
        tracker.record(20.0, 2.0)
        assert tracker.capacity_seconds(through=30.0) == pytest.approx(
            4 * 10 + 6 * 10 + 2 * 10
        )
        assert tracker.mean_capacity(through=30.0) == pytest.approx(4.0)

    def test_horizon_may_cut_a_step_short(self):
        tracker = CapacityTracker(start_time=0.0, capacity=4.0)
        tracker.record(10.0, 8.0)
        assert tracker.capacity_seconds(through=15.0) == pytest.approx(
            4 * 10 + 8 * 5
        )

    def test_same_instant_correction_overwrites(self):
        tracker = CapacityTracker(start_time=0.0, capacity=4.0)
        tracker.record(5.0, 6.0)
        tracker.record(5.0, 8.0)
        assert tracker.series() == [(0.0, 4.0), (5.0, 8.0)]

    def test_unchanged_capacity_is_not_recorded(self):
        tracker = CapacityTracker(start_time=0.0, capacity=4.0)
        tracker.record(5.0, 4.0)
        assert tracker.series() == [(0.0, 4.0)]

    def test_time_ordering_enforced(self):
        tracker = CapacityTracker(start_time=5.0, capacity=1.0)
        with pytest.raises(ReproError):
            tracker.record(4.0, 2.0)
        with pytest.raises(ReproError):
            tracker.capacity_seconds(through=4.0)

    def test_time_ordering_survives_deduplicated_records(self):
        # A no-op record (unchanged capacity) still advances the time
        # watermark, so a later out-of-order record is caught instead of
        # slipping past the last *recorded* step.
        tracker = CapacityTracker(start_time=0.0, capacity=3.0)
        tracker.record(10.0, 3.0)  # deduplicated, but time was seen
        with pytest.raises(ReproError):
            tracker.record(5.0, 2.0)

    def test_payload_roundtrip(self):
        tracker = CapacityTracker(start_time=0.0, capacity=4.0)
        tracker.record(10.0, 6.0)
        tracker.record_drain(1.5)
        rebuilt = CapacityTracker.from_payload(tracker.export_payload())
        assert rebuilt.series() == tracker.series()
        assert rebuilt.drain_durations == [1.5]
        assert rebuilt.capacity_seconds(through=20.0) == pytest.approx(
            tracker.capacity_seconds(through=20.0)
        )
