"""Tests for the parallel sweep runner and its compact result payloads.

The load-bearing property is the determinism contract documented in
:mod:`repro.experiments.runner`: ``jobs`` is purely a wall-clock knob,
so a sweep run with ``jobs=1`` (the historical in-process path) and the
same sweep run with ``jobs>1`` (the multiprocessing pool plus the
payload round trip) must produce bit-for-bit identical series.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.experiments.config import (
    ChurnEvent,
    PoissonSweepConfig,
    ResilienceConfig,
    TestbedConfig,
    WikipediaReplayConfig,
    rr_policy,
    sr_policy,
)
from repro.experiments.poisson_experiment import PoissonSweep
from repro.experiments.resilience_experiment import run_resilience_comparison
from repro.experiments.runner import SweepRunner, resolve_jobs
from repro.experiments.wikipedia_experiment import WikipediaReplay, make_wikipedia_trace
from repro.metrics.collector import ResponseTimeCollector, ServerLoadSampler
from repro.workload.client import RequestOutcome

SMALL_TESTBED = TestbedConfig(
    num_servers=4, workers_per_server=8, cores_per_server=2, backlog_capacity=16
)


def _small_sweep_config(**overrides) -> PoissonSweepConfig:
    defaults = dict(
        testbed=SMALL_TESTBED,
        load_factors=(0.4, 0.75),
        num_queries=250,
        policies=(rr_policy(), sr_policy(4)),
    )
    defaults.update(overrides)
    return PoissonSweepConfig(**defaults)


# ----------------------------------------------------------------------
# SweepRunner mechanics
# ----------------------------------------------------------------------
class TestSweepRunner:
    def test_resolve_jobs_defaults_to_cpu_count(self):
        import os

        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(3) == 3

    def test_negative_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            SweepRunner(jobs=-1)

    def test_serial_runner_runs_in_process(self):
        runner = SweepRunner(jobs=1)
        assert runner.serial
        seen = []

        def worker(task):
            seen.append(task)
            return task * 10

        # Closures are not picklable, so this only works in-process —
        # which is exactly what jobs=1 must guarantee.
        assert runner.map(worker, [1, 2, 3]) == [10, 20, 30]
        assert seen == [1, 2, 3]

    def test_parallel_map_preserves_task_order(self):
        runner = SweepRunner(jobs=2)
        assert not runner.serial
        assert runner.map(_square, list(range(8))) == [n * n for n in range(8)]

    def test_single_task_skips_the_pool(self):
        # A lone task runs in-process even with jobs > 1 (no pickling).
        assert SweepRunner(jobs=4).map(lambda task: task + 1, [41]) == [42]


def _square(value: int) -> int:
    return value * value


# ----------------------------------------------------------------------
# compact payload round trips
# ----------------------------------------------------------------------
class TestCollectorPayload:
    def test_round_trip_preserves_every_series(self):
        collector = ResponseTimeCollector(name="round-trip")
        collector.record(
            RequestOutcome(
                request_id=1,
                kind="wiki",
                url="/w/1",
                sent_at=0.5,
                established_at=0.6,
                completed_at=1.25,
            )
        )
        collector.record(
            RequestOutcome(
                request_id=2,
                kind="static",
                url="/s/2",
                sent_at=0.75,
                completed_at=0.9,
            )
        )
        collector.record(
            RequestOutcome(
                request_id=3,
                kind="wiki",
                url="/w/3",
                sent_at=2.0,
                failed=True,
                failure_reason="connection reset",
            )
        )
        rebuilt = ResponseTimeCollector.from_payload(collector.export_payload())

        assert rebuilt.name == collector.name
        assert rebuilt.totals.completed == 2
        assert rebuilt.totals.failed == 1
        assert rebuilt.response_times() == collector.response_times()
        assert rebuilt.response_times(kind="wiki") == collector.response_times(kind="wiki")
        assert [o.request_id for o in rebuilt.outcomes()] == [1, 2]
        assert rebuilt.outcomes()[0].established_at == 0.6
        assert rebuilt.outcomes()[1].established_at is None
        assert rebuilt.failures()[0].failure_reason == "connection reset"
        assert rebuilt.failures()[0].response_time is None

    def test_empty_collector_round_trips(self):
        rebuilt = ResponseTimeCollector.from_payload(
            ResponseTimeCollector(name="empty").export_payload()
        )
        assert len(rebuilt) == 0
        assert rebuilt.totals.total == 0

    def test_binned_series_survive_the_round_trip(self):
        collector = ResponseTimeCollector()
        for index in range(10):
            collector.record(
                RequestOutcome(
                    request_id=index,
                    kind="wiki",
                    url="/",
                    sent_at=index * 1.0,
                    completed_at=index * 1.0 + 0.2,
                )
            )
        rebuilt = ResponseTimeCollector.from_payload(collector.export_payload())
        assert (
            rebuilt.binned(bin_width=2.0).median_series()
            == collector.binned(bin_width=2.0).median_series()
        )


class TestLoadSamplerPayload:
    def test_round_trip_preserves_series(self):
        sampler = ServerLoadSampler(interval=0.25)
        sampler.sample(0.0, [1, 2, 3])
        sampler.sample(0.25, [4, 5, 6])
        rebuilt = ServerLoadSampler.from_payload(sampler.export_payload())
        assert rebuilt.interval == 0.25
        assert rebuilt.times == sampler.times
        assert rebuilt.samples == sampler.samples
        assert rebuilt.mean_load_series() == sampler.mean_load_series()
        assert rebuilt.fairness_series() == sampler.fairness_series()

    def test_empty_sampler_round_trips(self):
        rebuilt = ServerLoadSampler.from_payload(
            ServerLoadSampler(interval=0.5).export_payload()
        )
        assert len(rebuilt) == 0


# ----------------------------------------------------------------------
# determinism contract: jobs never changes results
# ----------------------------------------------------------------------
def _sweep_fingerprint(result):
    """Every figure-facing series of a sweep, as comparable objects."""
    fingerprint = {}
    for policy_name, by_load in result.runs.items():
        for load_factor, run in by_load.items():
            fingerprint[(policy_name, load_factor)] = (
                run.response_times(),
                run.arrival_rate,
                run.requests_served,
                run.connections_reset,
                run.acceptance_counts,
                run.simulated_duration,
            )
    return fingerprint


class TestPoissonSweepDeterminism:
    def test_jobs_do_not_change_results(self):
        config = _small_sweep_config()
        serial = PoissonSweep(config).run(jobs=1)
        parallel = PoissonSweep(config).run(jobs=2)
        assert _sweep_fingerprint(serial) == _sweep_fingerprint(parallel)
        for policy in ("RR", "SR4"):
            assert serial.mean_response_series(policy) == parallel.mean_response_series(
                policy
            )

    def test_load_sampler_survives_the_pool(self):
        config = _small_sweep_config(load_factors=(0.6,))
        serial = PoissonSweep(config).run(sample_load=True, jobs=1)
        parallel = PoissonSweep(config).run(sample_load=True, jobs=2)
        for policy in ("RR", "SR4"):
            serial_sampler = serial.run(policy, 0.6).load_sampler
            parallel_sampler = parallel.run(policy, 0.6).load_sampler
            assert parallel_sampler is not None
            assert parallel_sampler.times == serial_sampler.times
            assert parallel_sampler.samples == serial_sampler.samples

    @given(
        workload_seed=st.integers(min_value=0, max_value=2**16),
        load_factor=st.sampled_from([0.35, 0.55, 0.8]),
    )
    @settings(max_examples=3, deadline=None)
    def test_property_mean_series_and_cdfs_identical(self, workload_seed, load_factor):
        """The ISSUE's determinism property: same seed, any jobs value →
        identical mean-response series and response-time CDFs."""
        config = _small_sweep_config(
            load_factors=(load_factor,),
            num_queries=150,
            workload_seed=workload_seed,
        )
        serial = PoissonSweep(config).run(jobs=1)
        parallel = PoissonSweep(config).run(jobs=2)
        for policy in ("RR", "SR4"):
            assert serial.mean_response_series(policy) == parallel.mean_response_series(
                policy
            )
            serial_cdf = serial.run(policy, load_factor).collector.cdf()
            parallel_cdf = parallel.run(policy, load_factor).collector.cdf()
            assert np.array_equal(np.asarray(serial_cdf), np.asarray(parallel_cdf))


class TestWikipediaReplayDeterminism:
    def test_jobs_do_not_change_results(self):
        config = WikipediaReplayConfig(testbed=SMALL_TESTBED).compressed(duration=60.0)
        serial = WikipediaReplay(config).run(jobs=1)
        parallel = WikipediaReplay(config).run(jobs=2)
        assert serial.trace_summary == parallel.trace_summary
        for name in serial.policies():
            serial_run = serial.run(name)
            parallel_run = parallel.run(name)
            assert parallel_run.wiki_response_times() == serial_run.wiki_response_times()
            assert parallel_run.median_series() == serial_run.median_series()
            assert parallel_run.rate_series() == serial_run.rate_series()
            assert parallel_run.requests_served == serial_run.requests_served

    def test_explicit_trace_is_shipped_to_workers(self):
        config = WikipediaReplayConfig(testbed=SMALL_TESTBED).compressed(duration=60.0)
        trace = make_wikipedia_trace(config).slice_time(0.0, 30.0)
        serial = WikipediaReplay(config).run(trace=trace, jobs=1)
        parallel = WikipediaReplay(config).run(trace=trace, jobs=2)
        for name in serial.policies():
            assert (
                parallel.run(name).wiki_response_times()
                == serial.run(name).wiki_response_times()
            )


class TestResilienceDeterminism:
    def test_jobs_do_not_change_results(self):
        config = ResilienceConfig(
            testbed=TestbedConfig(
                num_servers=6,
                workers_per_server=8,
                num_load_balancers=4,
                request_spread=1.5,
                request_chunks=4,
            ),
            load_factor=0.6,
            num_queries=500,
            service_mean=0.05,
            churn=(ChurnEvent(at_fraction=0.5),),
        )
        serial = run_resilience_comparison(config, jobs=1)
        parallel = run_resilience_comparison(config, jobs=2)
        for scheme in serial.schemes():
            serial_run = serial.run(scheme)
            parallel_run = parallel.run(scheme)
            assert parallel_run.broken_flows == serial_run.broken_flows
            assert parallel_run.in_flight_at_churn == serial_run.in_flight_at_churn
            assert parallel_run.recovery_hunts == serial_run.recovery_hunts
            assert parallel_run.steering_misses == serial_run.steering_misses
            assert (
                parallel_run.collector.response_times()
                == serial_run.collector.response_times()
            )
            assert [
                (obs.at_time, obs.instance, obs.in_flight_ids)
                for obs in parallel_run.observations
            ] == [
                (obs.at_time, obs.instance, obs.in_flight_ids)
                for obs in serial_run.observations
            ]
