"""Unit tests for the application agent and the connection-acceptance policies."""

import pytest

from repro.core.agent import ApplicationAgent, StaticLoadView, make_agent
from repro.core.policies import (
    AlwaysAcceptPolicy,
    CPULoadPolicy,
    DynamicThresholdPolicy,
    NeverAcceptPolicy,
    StaticThresholdPolicy,
    make_policy,
    register_policy,
    registered_policies,
)
from repro.errors import PolicyError


class TestApplicationAgent:
    def test_busy_and_idle_threads(self):
        agent = ApplicationAgent(StaticLoadView(busy=5, slots=32))
        assert agent.busy_threads() == 5
        assert agent.idle_threads() == 27
        assert agent.total_threads() == 32

    def test_cpu_load_estimate(self):
        agent = ApplicationAgent(StaticLoadView(busy=6, slots=32), cpu_cores=2)
        assert agent.estimated_cpu_load() == pytest.approx(3.0)

    def test_utilization_fraction(self):
        agent = ApplicationAgent(StaticLoadView(busy=8, slots=32))
        assert agent.utilization_fraction() == pytest.approx(0.25)

    def test_reads_counter(self):
        agent = ApplicationAgent(StaticLoadView(busy=1, slots=4))
        agent.busy_threads()
        agent.idle_threads()
        assert agent.reads == 2

    def test_agent_tracks_live_scoreboard(self):
        view = StaticLoadView(busy=0, slots=4)
        agent = make_agent(view)
        assert agent.busy_threads() == 0
        view.set_busy(3)
        assert agent.busy_threads() == 3


class TestStaticThresholdPolicy:
    def test_accepts_below_threshold(self):
        policy = StaticThresholdPolicy(4)
        agent = ApplicationAgent(StaticLoadView(busy=3, slots=32))
        assert policy.should_accept(agent) is True

    def test_refuses_at_threshold(self):
        policy = StaticThresholdPolicy(4)
        agent = ApplicationAgent(StaticLoadView(busy=4, slots=32))
        assert policy.should_accept(agent) is False

    def test_threshold_zero_never_accepts(self):
        policy = StaticThresholdPolicy(0)
        agent = ApplicationAgent(StaticLoadView(busy=0, slots=32))
        assert policy.should_accept(agent) is False

    def test_threshold_above_pool_always_accepts(self):
        policy = StaticThresholdPolicy(33)
        agent = ApplicationAgent(StaticLoadView(busy=32, slots=32))
        assert policy.should_accept(agent) is True

    def test_acceptance_ratio_and_reset(self):
        policy = StaticThresholdPolicy(4)
        busy_agent = ApplicationAgent(StaticLoadView(busy=10, slots=32))
        idle_agent = ApplicationAgent(StaticLoadView(busy=0, slots=32))
        policy.should_accept(busy_agent)
        policy.should_accept(idle_agent)
        assert policy.acceptance_ratio() == pytest.approx(0.5)
        policy.reset()
        assert policy.decisions == 0
        assert policy.acceptance_ratio() == 0.0

    def test_negative_threshold_rejected(self):
        with pytest.raises(PolicyError):
            StaticThresholdPolicy(-1)

    def test_name(self):
        assert StaticThresholdPolicy(8).name == "SR8"


class TestDynamicThresholdPolicy:
    def test_threshold_increases_when_refusing_too_much(self):
        policy = DynamicThresholdPolicy(initial_threshold=1, window_size=10)
        busy_agent = ApplicationAgent(StaticLoadView(busy=20, slots=32))
        for _ in range(30):
            policy.should_accept(busy_agent)
        assert policy.threshold > 1
        assert policy.adjustments_up >= 1

    def test_threshold_decreases_when_accepting_too_much(self):
        policy = DynamicThresholdPolicy(initial_threshold=8, window_size=10)
        idle_agent = ApplicationAgent(StaticLoadView(busy=0, slots=32))
        for _ in range(30):
            policy.should_accept(idle_agent)
        assert policy.threshold < 8
        assert policy.adjustments_down >= 1

    def test_threshold_never_negative(self):
        policy = DynamicThresholdPolicy(initial_threshold=0, window_size=5)
        idle_agent = ApplicationAgent(StaticLoadView(busy=0, slots=32))
        for _ in range(50):
            policy.should_accept(idle_agent)
        assert policy.threshold >= 0

    def test_threshold_capped_at_pool_size(self):
        policy = DynamicThresholdPolicy(initial_threshold=3, window_size=5, max_threshold=4)
        busy_agent = ApplicationAgent(StaticLoadView(busy=32, slots=32))
        for _ in range(100):
            policy.should_accept(busy_agent)
        assert policy.threshold <= 4

    def test_balanced_acceptance_keeps_threshold(self):
        policy = DynamicThresholdPolicy(initial_threshold=4, window_size=10)
        low = ApplicationAgent(StaticLoadView(busy=0, slots=32))
        high = ApplicationAgent(StaticLoadView(busy=30, slots=32))
        # Alternate accept/refuse: the window ratio stays at 0.5, inside
        # the [0.4, 0.6] dead band, so the threshold must not move.
        for index in range(40):
            policy.should_accept(low if index % 2 == 0 else high)
        assert policy.threshold == 4

    def test_history_and_state(self):
        policy = DynamicThresholdPolicy(initial_threshold=2, window_size=5)
        busy_agent = ApplicationAgent(StaticLoadView(busy=32, slots=32))
        for _ in range(12):
            policy.should_accept(busy_agent)
        state = policy.state()
        assert state.threshold == policy.threshold
        assert len(policy.threshold_history) >= 2

    def test_reset_restores_initial_state(self):
        policy = DynamicThresholdPolicy(initial_threshold=1, window_size=5)
        busy_agent = ApplicationAgent(StaticLoadView(busy=32, slots=32))
        for _ in range(20):
            policy.should_accept(busy_agent)
        policy.reset()
        assert policy.threshold == 1
        assert policy.threshold_history == [1]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PolicyError):
            DynamicThresholdPolicy(window_size=0)
        with pytest.raises(PolicyError):
            DynamicThresholdPolicy(low_watermark=0.8, high_watermark=0.2)
        with pytest.raises(PolicyError):
            DynamicThresholdPolicy(initial_threshold=-1)


class TestTrivialAndCoarsePolicies:
    def test_always_accept(self):
        agent = ApplicationAgent(StaticLoadView(busy=32, slots=32))
        assert AlwaysAcceptPolicy().should_accept(agent) is True

    def test_never_accept(self):
        agent = ApplicationAgent(StaticLoadView(busy=0, slots=32))
        assert NeverAcceptPolicy().should_accept(agent) is False

    def test_cpu_load_policy(self):
        policy = CPULoadPolicy(max_load_per_core=2.0)
        light = ApplicationAgent(StaticLoadView(busy=3, slots=32), cpu_cores=2)
        heavy = ApplicationAgent(StaticLoadView(busy=5, slots=32), cpu_cores=2)
        assert policy.should_accept(light) is True
        assert policy.should_accept(heavy) is False

    def test_cpu_load_policy_invalid_limit(self):
        with pytest.raises(PolicyError):
            CPULoadPolicy(max_load_per_core=0)


class TestPolicyFactory:
    def test_make_srn_policies(self):
        policy = make_policy("SR4")
        assert isinstance(policy, StaticThresholdPolicy)
        assert policy.threshold == 4

    def test_make_srdyn(self):
        assert isinstance(make_policy("SRdyn"), DynamicThresholdPolicy)

    def test_make_trivial_policies(self):
        assert isinstance(make_policy("always"), AlwaysAcceptPolicy)
        assert isinstance(make_policy("never"), NeverAcceptPolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(PolicyError):
            make_policy("SRmagic")

    def test_register_custom_policy(self):
        register_policy("custom-test", lambda: StaticThresholdPolicy(7))
        try:
            policy = make_policy("custom-test")
            assert isinstance(policy, StaticThresholdPolicy)
            assert policy.threshold == 7
            assert "custom-test" in registered_policies()
        finally:
            registered_policies()  # registry copy; nothing to clean globally
