"""Unit tests for the simulation clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimulationClock


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimulationClock(5.5).now == 5.5

    def test_rejects_negative_start(self):
        with pytest.raises(SimulationError):
            SimulationClock(-1.0)

    def test_advance_moves_forward(self):
        clock = SimulationClock()
        clock.advance(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_time_is_allowed(self):
        clock = SimulationClock(2.0)
        clock.advance(2.0)
        assert clock.now == 2.0

    def test_advance_backwards_raises(self):
        clock = SimulationClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance(9.999)

    def test_reset_returns_to_zero(self):
        clock = SimulationClock(10.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_to_specific_time(self):
        clock = SimulationClock(10.0)
        clock.reset(4.0)
        assert clock.now == 4.0

    def test_reset_rejects_negative(self):
        clock = SimulationClock()
        with pytest.raises(SimulationError):
            clock.reset(-0.5)

    def test_repr_mentions_time(self):
        assert "3.5" in repr(SimulationClock(3.5))
