"""Tests for the declarative scenario framework, registry, and the two
new workload families (flash-crowd and heterogeneous-fleet)."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ExperimentError
from repro.experiments import registry
from repro.experiments.config import (
    FlashCrowdConfig,
    HeterogeneousFleetConfig,
    TestbedConfig,
)
from repro.experiments.flash_crowd_experiment import (
    FLASH_CROWD_SCENARIO,
    make_flash_crowd_trace,
    run_flash_crowd,
)
from repro.experiments.heterogeneous_experiment import (
    HETEROGENEOUS_SCENARIO,
    capacity_fairness_index,
    make_heterogeneous_trace,
    run_heterogeneous_fleet,
    tier_acceptance_shares,
)
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioResult,
    ScenarioSpec,
    ScenarioTask,
    run_scenario,
)
from repro.workload.flash_crowd import RatePhase, SteppedPoissonWorkload

import numpy as np


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_families_are_registered(self):
        names = registry.names()
        for expected in (
            "poisson",
            "wikipedia",
            "resilience",
            "flash-crowd",
            "heterogeneous-fleet",
        ):
            assert expected in names

    def test_get_unknown_scenario_is_loud(self):
        with pytest.raises(ExperimentError, match="unknown scenario"):
            registry.get("nope")

    def test_reregistering_the_same_spec_is_idempotent(self):
        spec = registry.get("poisson")
        assert registry.register(spec) is spec

    def test_conflicting_name_is_rejected(self):
        class Impostor(ScenarioSpec):
            name = "poisson"

            def default_config(self):
                raise NotImplementedError

            def smoke_config(self):
                raise NotImplementedError

            def cells(self, config, **options):
                raise NotImplementedError

            def make_trace(self, config, cell):
                raise NotImplementedError

            def build_platform(self, config, cell):
                raise NotImplementedError

            def run_once(self, config, cell, trace):
                raise NotImplementedError

            def aggregate(self, config, cells, payloads, trace_for):
                raise NotImplementedError

        with pytest.raises(ExperimentError, match="already registered"):
            registry.register(Impostor())

    def test_every_spec_has_name_title_and_smoke_config(self):
        for spec in registry.specs():
            assert spec.name
            assert spec.title
            assert spec.smoke_config() is not None
            assert spec.default_config() is not None


# ----------------------------------------------------------------------
# framework plumbing
# ----------------------------------------------------------------------
class TestScenarioCell:
    def test_param_lookup(self):
        cell = ScenarioCell(key="x", params={"policy": "RR"})
        assert cell.param("policy") == "RR"

    def test_missing_param_is_loud(self):
        with pytest.raises(ExperimentError, match="no parameter"):
            ScenarioCell(key="x").param("absent")

    def test_cells_and_tasks_are_picklable(self):
        spec = registry.get("poisson")
        config = spec.smoke_config()
        for cell in spec.cells(config):
            task = ScenarioTask(scenario=spec.name, config=config, cell=cell)
            restored = pickle.loads(pickle.dumps(task))
            assert restored.cell.key == cell.key


class TestScenarioResult:
    def test_run_lookup_and_keys(self):
        result = ScenarioResult(scenario="s", config=None, runs={"a": 1, "b": 2})
        assert result.run("a") == 1
        assert result.keys() == ["a", "b"]

    def test_missing_key_is_loud(self):
        with pytest.raises(ExperimentError, match="no run"):
            ScenarioResult(scenario="s", config=None).run("missing")


class TestRunScenario:
    def test_unknown_name_is_loud(self):
        with pytest.raises(ExperimentError, match="unknown scenario"):
            run_scenario("not-a-scenario")

    def test_serial_path_shares_traces_per_key(self):
        """Cells with equal trace keys see the identical Trace object."""
        spec = registry.get("poisson")
        config = spec.smoke_config()
        seen = []
        original = type(spec).run_once

        def spy(self, config, cell, trace):
            seen.append(trace)
            return original(self, config, cell, trace)

        type(spec).run_once = spy
        try:
            run_scenario(spec, config, jobs=1)
        finally:
            type(spec).run_once = original
        # One load factor, two policies -> both cells share one trace.
        assert len(seen) == 2
        assert seen[0] is seen[1]


# ----------------------------------------------------------------------
# stepped workload generator
# ----------------------------------------------------------------------
class TestSteppedPoissonWorkload:
    def test_phase_validation(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            RatePhase(duration=0.0, rate=10.0)
        with pytest.raises(WorkloadError):
            RatePhase(duration=1.0, rate=0.0)
        with pytest.raises(WorkloadError):
            SteppedPoissonWorkload(phases=())

    def test_generation_is_deterministic(self):
        workload = SteppedPoissonWorkload(
            phases=(RatePhase(10.0, 50.0), RatePhase(5.0, 200.0))
        )
        first = workload.generate(np.random.default_rng(9))
        second = workload.generate(np.random.default_rng(9))
        assert [r.arrival_time for r in first] == [r.arrival_time for r in second]
        assert [r.service_demand for r in first] == [r.service_demand for r in second]

    def test_requests_are_numbered_trace_locally(self):
        workload = SteppedPoissonWorkload(phases=(RatePhase(5.0, 100.0),))
        trace = workload.generate(np.random.default_rng(1))
        assert [r.request_id for r in trace] == list(range(1, len(trace) + 1))

    def test_spike_phase_is_denser(self):
        workload = SteppedPoissonWorkload(
            phases=(RatePhase(20.0, 20.0), RatePhase(20.0, 200.0))
        )
        trace = workload.generate(np.random.default_rng(3))
        first = sum(1 for r in trace if r.arrival_time < 20.0)
        second = len(trace) - first
        assert second > 5 * first

    def test_arrivals_stay_inside_their_phases(self):
        workload = SteppedPoissonWorkload(phases=(RatePhase(4.0, 30.0),))
        trace = workload.generate(np.random.default_rng(11))
        assert all(0.0 < r.arrival_time < 4.0 for r in trace)

    def test_expected_queries(self):
        workload = SteppedPoissonWorkload(
            phases=(RatePhase(10.0, 50.0), RatePhase(2.0, 100.0))
        )
        assert workload.expected_queries() == pytest.approx(700.0)
        assert workload.total_duration == pytest.approx(12.0)
        assert workload.phase_boundaries() == pytest.approx([0.0, 10.0, 12.0])


# ----------------------------------------------------------------------
# flash-crowd family
# ----------------------------------------------------------------------
class TestFlashCrowdScenario:
    def test_config_validation(self):
        with pytest.raises(ExperimentError, match="spike must exceed"):
            FlashCrowdConfig(baseline_load=0.8, spike_load=0.5)
        with pytest.raises(ExperimentError, match="must be positive"):
            FlashCrowdConfig(spike_duration=0.0)

    def test_trace_matches_schedule(self):
        config = FLASH_CROWD_SCENARIO.smoke_config()
        trace = make_flash_crowd_trace(config)
        assert trace.duration <= config.total_duration
        spike_start, spike_end = config.spike_window
        spike = sum(
            1 for r in trace if spike_start <= r.arrival_time < spike_end
        )
        baseline = sum(1 for r in trace if r.arrival_time < spike_start)
        # The spike runs at 3x the baseline rate on a shorter window;
        # per-second density must be clearly higher.
        assert spike / config.spike_duration > (
            1.5 * baseline / config.baseline_duration
        )

    def test_end_to_end_jobs_deterministic(self):
        config = FLASH_CROWD_SCENARIO.smoke_config()
        serial = run_flash_crowd(config, jobs=1)
        parallel = run_flash_crowd(config, jobs=2)
        assert serial.keys() == parallel.keys()
        for key in serial.keys():
            assert (
                serial.run(key).collector.response_times()
                == parallel.run(key).collector.response_times()
            )
            # Empty bins yield nan medians; compare nan-aware but exact.
            assert np.array_equal(
                np.asarray(serial.run(key).median_series()),
                np.asarray(parallel.run(key).median_series()),
                equal_nan=True,
            )

    def test_phase_summaries_show_the_overload(self):
        config = FLASH_CROWD_SCENARIO.smoke_config()
        result = run_flash_crowd(config, jobs=1)
        for key in result.keys():
            run = result.run(key)
            baseline = run.phase_summary("baseline")
            spike = run.phase_summary("spike")
            assert baseline is not None and spike is not None
            assert spike.mean > baseline.mean

    def test_unknown_phase_is_loud(self):
        config = FLASH_CROWD_SCENARIO.smoke_config()
        result = run_flash_crowd(config, jobs=1)
        run = result.run(result.keys()[0])
        with pytest.raises(ExperimentError, match="unknown phase"):
            run.phase_window("rush-hour")


# ----------------------------------------------------------------------
# heterogeneous-fleet family
# ----------------------------------------------------------------------
class TestHeterogeneousFleetScenario:
    def test_config_validation(self):
        with pytest.raises(ExperimentError, match="faster than"):
            HeterogeneousFleetConfig(fast_speed=1.0, slow_speed=1.0)
        with pytest.raises(ExperimentError, match="both tiers"):
            HeterogeneousFleetConfig(num_fast=0)

    def test_testbed_speed_factors(self):
        config = HeterogeneousFleetConfig(num_fast=2, num_slow=3)
        testbed = config.testbed
        assert testbed.server_speed_factors == (2.0, 2.0, 0.75, 0.75, 0.75)
        assert testbed.total_capacity == pytest.approx(2 * (2 * 2.0 + 3 * 0.75))

    def test_speed_factor_validation_on_testbed(self):
        with pytest.raises(ExperimentError, match="names 2 servers"):
            TestbedConfig(num_servers=3, server_speed_factors=(1.0, 2.0))
        with pytest.raises(ExperimentError, match="must be positive"):
            TestbedConfig(num_servers=2, server_speed_factors=(1.0, -1.0))

    def test_fast_servers_really_run_faster(self):
        """A fast server drains the same demand sooner than a slow one."""
        from repro.server.cpu import ProcessorSharingCPU
        from repro.sim.engine import Simulator

        done = {}
        simulator = Simulator(seed=0)
        fast = ProcessorSharingCPU(simulator, num_cores=1, name="fast", speed=2.0)
        slow = ProcessorSharingCPU(simulator, num_cores=1, name="slow", speed=0.5)
        fast.add_job(1, 1.0, lambda _job: done.setdefault("fast", simulator.now))
        slow.add_job(2, 1.0, lambda _job: done.setdefault("slow", simulator.now))
        simulator.run()
        assert done["fast"] == pytest.approx(0.5)
        assert done["slow"] == pytest.approx(2.0)

    def test_trace_is_shared_across_policies(self):
        config = HETEROGENEOUS_SCENARIO.smoke_config()
        (load_factor,) = config.load_factors
        first = make_heterogeneous_trace(config, load_factor)
        second = make_heterogeneous_trace(config, load_factor)
        assert [r.arrival_time for r in first] == [r.arrival_time for r in second]

    def test_end_to_end_jobs_deterministic(self):
        config = HETEROGENEOUS_SCENARIO.smoke_config()
        serial = run_heterogeneous_fleet(config, jobs=1)
        parallel = run_heterogeneous_fleet(config, jobs=2)
        assert serial.keys() == parallel.keys()
        for key in serial.keys():
            assert (
                serial.run(key).response_times()
                == parallel.run(key).response_times()
            )
            assert (
                serial.run(key).acceptance_counts
                == parallel.run(key).acceptance_counts
            )

    def test_service_hunting_beats_rr_on_fairness(self):
        config = HETEROGENEOUS_SCENARIO.smoke_config()
        result = run_heterogeneous_fleet(config, jobs=1)
        (rho,) = config.load_factors
        rr = result.run(("RR", rho))
        sr4 = result.run(("SR4", rho))
        assert capacity_fairness_index(config, sr4.acceptance_counts) > (
            capacity_fairness_index(config, rr.acceptance_counts)
        )

    def test_tier_shares_are_capacity_normalised(self):
        config = HeterogeneousFleetConfig(num_fast=2, num_slow=2, slow_speed=1.0, fast_speed=3.0)
        # Perfectly capacity-proportional acceptance -> both ratios 1.0.
        counts = {"server-0": 30, "server-1": 30, "server-2": 10, "server-3": 10}
        fast, slow = tier_acceptance_shares(config, counts)
        assert fast == pytest.approx(1.0)
        assert slow == pytest.approx(1.0)
        # Nothing accepted -> degenerate but defined.
        assert tier_acceptance_shares(config, {}) == (0.0, 0.0)
