"""Unit tests for the trace container and the two workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.poisson import PoissonWorkload
from repro.workload.requests import KIND_PHP, KIND_STATIC, KIND_WIKI, Request
from repro.workload.service_models import DeterministicServiceTime
from repro.workload.trace import Trace
from repro.workload.wikipedia import (
    DiurnalRateCurve,
    SECONDS_PER_DAY,
    SyntheticWikipediaWorkload,
)


def _request(request_id, arrival, demand=0.1, kind=KIND_PHP):
    return Request(
        request_id=request_id, arrival_time=arrival, service_demand=demand, kind=kind
    )


class TestTrace:
    def test_requests_sorted_by_arrival(self):
        trace = Trace([_request(1, 5.0), _request(2, 1.0), _request(3, 3.0)])
        assert [request.request_id for request in trace] == [2, 3, 1]
        assert trace.duration == 5.0

    def test_summary(self):
        trace = Trace([_request(1, 1.0, 0.2), _request(2, 2.0, 0.4, KIND_WIKI)])
        summary = trace.summary()
        assert summary.num_requests == 2
        assert summary.mean_demand == pytest.approx(0.3)
        assert summary.total_demand == pytest.approx(0.6)
        assert summary.kinds == {KIND_PHP: 1, KIND_WIKI: 1}

    def test_empty_trace_summary(self):
        summary = Trace([]).summary()
        assert summary.num_requests == 0
        assert summary.duration == 0.0

    def test_arrival_rate_in_window(self):
        trace = Trace([_request(index + 1, float(index)) for index in range(10)])
        assert trace.arrival_rate_in(0.0, 10.0) == pytest.approx(1.0)
        with pytest.raises(WorkloadError):
            trace.arrival_rate_in(5.0, 5.0)

    def test_slice_time_rebases(self):
        trace = Trace([_request(index, float(index)) for index in range(10)])
        sliced = trace.slice_time(3.0, 6.0)
        assert len(sliced) == 3
        assert sliced[0].arrival_time == pytest.approx(0.0)

    def test_thin_keeps_a_fraction(self, rng):
        trace = Trace([_request(index, float(index) * 0.001) for index in range(10_000)])
        thinned = trace.thin(0.25, rng)
        assert 0.2 * len(trace) < len(thinned) < 0.3 * len(trace)

    def test_thin_rejects_bad_fraction(self, rng):
        trace = Trace([_request(1, 0.0)])
        with pytest.raises(WorkloadError):
            trace.thin(0.0, rng)

    def test_compress_time(self):
        trace = Trace([_request(1, 10.0), _request(2, 20.0)])
        compressed = trace.compress_time(10.0)
        assert compressed.duration == pytest.approx(2.0)

    def test_filter_kind(self):
        trace = Trace([_request(1, 0.0), _request(2, 1.0, kind=KIND_WIKI)])
        assert len(trace.filter_kind(KIND_WIKI)) == 1

    def test_save_and_load_roundtrip(self, tmp_path):
        trace = Trace([_request(1, 0.5), _request(2, 1.5, 0.3, KIND_WIKI)])
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == 2
        assert loaded[1].kind == KIND_WIKI
        assert loaded[1].service_demand == pytest.approx(0.3)

    def test_load_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(WorkloadError):
            Trace.load(path)

    def test_catalog_roundtrip(self):
        trace = Trace([_request(7, 0.0, 0.2)])
        catalog = trace.catalog()
        assert catalog.demand_of(7) == pytest.approx(0.2)


class TestPoissonWorkload:
    def test_generates_requested_number_of_queries(self, rng):
        workload = PoissonWorkload(rate=100.0, num_queries=500)
        trace = workload.generate(rng)
        assert len(trace) == 500
        assert all(request.kind == KIND_PHP for request in trace)

    def test_mean_rate_close_to_configured(self, rng):
        workload = PoissonWorkload(rate=200.0, num_queries=20_000)
        trace = workload.generate(rng)
        assert trace.summary().mean_rate == pytest.approx(200.0, rel=0.05)

    def test_service_demands_follow_configured_model(self, rng):
        workload = PoissonWorkload(
            rate=100.0, num_queries=200, service_model=DeterministicServiceTime(0.05)
        )
        trace = workload.generate(rng)
        assert all(request.service_demand == pytest.approx(0.05) for request in trace)

    def test_from_load_factor(self):
        workload = PoissonWorkload.from_load_factor(
            rho=0.5, saturation_rate=240.0, num_queries=100
        )
        assert workload.rate == pytest.approx(120.0)

    def test_offered_load(self):
        workload = PoissonWorkload(rate=120.0, num_queries=100)
        assert workload.offered_load(total_cores=24) == pytest.approx(0.5)

    def test_expected_duration(self):
        workload = PoissonWorkload(rate=100.0, num_queries=1_000)
        assert workload.expected_duration() == pytest.approx(10.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            PoissonWorkload(rate=0.0)
        with pytest.raises(WorkloadError):
            PoissonWorkload(rate=10.0, num_queries=0)
        with pytest.raises(WorkloadError):
            PoissonWorkload.from_load_factor(rho=0.0, saturation_rate=100.0)

    def test_same_seed_same_trace(self):
        workload = PoissonWorkload(rate=100.0, num_queries=200)
        first = workload.generate(np.random.default_rng(5))
        second = workload.generate(np.random.default_rng(5))
        assert [r.arrival_time for r in first] == [r.arrival_time for r in second]
        assert [r.service_demand for r in first] == [r.service_demand for r in second]


class TestDiurnalCurve:
    def test_trough_and_peak_locations(self):
        curve = DiurnalRateCurve(mean_rate=85.0, amplitude=30.0, trough_hour=8.0,
                                 second_harmonic=0.0)
        trough = curve.rate_at(8.0 * 3600)
        peak = curve.rate_at(20.0 * 3600)
        assert trough == pytest.approx(55.0)
        assert peak == pytest.approx(115.0)

    def test_rate_never_negative(self):
        curve = DiurnalRateCurve(mean_rate=30.0, amplitude=29.0)
        rates = [curve.rate_at(t) for t in np.linspace(0, SECONDS_PER_DAY, 500)]
        assert min(rates) > 0

    def test_peak_rate_bounds_the_curve(self):
        curve = DiurnalRateCurve()
        rates = [curve.rate_at(t) for t in np.linspace(0, SECONDS_PER_DAY, 1_000)]
        assert max(rates) <= curve.peak_rate() + 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            DiurnalRateCurve(mean_rate=0.0)
        with pytest.raises(WorkloadError):
            DiurnalRateCurve(mean_rate=10.0, amplitude=20.0)


class TestSyntheticWikipediaWorkload:
    def test_generates_both_kinds(self, rng):
        workload = SyntheticWikipediaWorkload(
            duration=120.0, replay_fraction=0.5, static_per_wiki=1.0
        )
        trace = workload.generate(rng)
        kinds = trace.summary().kinds
        assert kinds.get(KIND_WIKI, 0) > 0
        assert kinds.get(KIND_STATIC, 0) > 0

    def test_request_count_matches_expectation(self, rng):
        workload = SyntheticWikipediaWorkload(
            duration=600.0, replay_fraction=0.5, static_per_wiki=1.0
        )
        trace = workload.generate(rng)
        assert len(trace) == pytest.approx(workload.expected_request_count(), rel=0.15)

    def test_diurnal_shape_visible_in_compressed_trace(self, rng):
        # Compress a day into 20 minutes and check the trough-vs-peak ratio
        # of wiki arrivals follows the configured curve.
        workload = SyntheticWikipediaWorkload(
            duration=1200.0, replay_fraction=1.0, static_per_wiki=0.0
        )
        trace = workload.generate(rng).filter_kind(KIND_WIKI)
        trough_window = (8 / 24 * 1200.0 - 60.0, 8 / 24 * 1200.0 + 60.0)
        peak_window = (20 / 24 * 1200.0 - 60.0, 20 / 24 * 1200.0 + 60.0)
        trough_rate = trace.arrival_rate_in(*trough_window)
        peak_rate = trace.arrival_rate_in(*peak_window)
        assert peak_rate > 1.5 * trough_rate

    def test_replay_fraction_scales_rate(self, rng):
        full = SyntheticWikipediaWorkload(duration=300.0, replay_fraction=1.0,
                                          static_per_wiki=0.0)
        half = SyntheticWikipediaWorkload(duration=300.0, replay_fraction=0.5,
                                          static_per_wiki=0.0)
        full_count = len(full.generate(np.random.default_rng(1)))
        half_count = len(half.generate(np.random.default_rng(1)))
        assert half_count == pytest.approx(full_count / 2, rel=0.15)

    def test_offered_peak_load_positive(self):
        workload = SyntheticWikipediaWorkload(duration=600.0, replay_fraction=0.5)
        assert 0 < workload.offered_peak_load(total_cores=24) < 2.0

    def test_rate_helpers(self):
        workload = SyntheticWikipediaWorkload(duration=SECONDS_PER_DAY, replay_fraction=0.5)
        assert workload.wiki_rate_at(8 * 3600.0) < workload.wiki_rate_at(20 * 3600.0)
        assert workload.static_rate_at(0.0) == pytest.approx(
            workload.wiki_rate_at(0.0) * workload.static_per_wiki
        )

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            SyntheticWikipediaWorkload(replay_fraction=0.0)
        with pytest.raises(WorkloadError):
            SyntheticWikipediaWorkload(static_per_wiki=-1.0)
        with pytest.raises(WorkloadError):
            SyntheticWikipediaWorkload(duration=0.0)
