"""Unit tests for the CPU models (processor sharing and FIFO)."""

import pytest

from repro.errors import ServerError
from repro.server.cpu import FIFOCPU, ProcessorSharingCPU, make_cpu


class TestProcessorSharingCPU:
    def test_single_job_takes_its_demand(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=2)
        completions = []
        cpu.add_job(1, 0.5, lambda job_id: completions.append((job_id, simulator.now)))
        simulator.run()
        assert completions == [(1, pytest.approx(0.5))]

    def test_jobs_within_core_capacity_do_not_slow_each_other(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=2)
        completions = {}
        cpu.add_job(1, 0.5, lambda job_id: completions.setdefault(job_id, simulator.now))
        cpu.add_job(2, 0.5, lambda job_id: completions.setdefault(job_id, simulator.now))
        simulator.run()
        assert completions[1] == pytest.approx(0.5)
        assert completions[2] == pytest.approx(0.5)

    def test_oversubscription_slows_all_jobs(self, simulator):
        # 4 equal jobs on 2 cores: each runs at rate 1/2, so 0.5 s of
        # demand takes 1.0 s of wall clock.
        cpu = ProcessorSharingCPU(simulator, num_cores=2)
        completions = {}
        for job_id in range(4):
            cpu.add_job(job_id, 0.5, lambda j: completions.setdefault(j, simulator.now))
        simulator.run()
        for job_id in range(4):
            assert completions[job_id] == pytest.approx(1.0)

    def test_late_arrival_shares_remaining_capacity(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        completions = {}
        cpu.add_job(1, 1.0, lambda j: completions.setdefault(j, simulator.now))
        # Second job arrives at t=0.5; from then on both run at rate 1/2.
        simulator.schedule_at(
            0.5, lambda: cpu.add_job(2, 0.25, lambda j: completions.setdefault(j, simulator.now))
        )
        simulator.run()
        # Job 1: 0.5 done alone, remaining 0.5 at half speed -> finishes at 1.5... but
        # job 2 finishes first (0.25 demand at half speed = 0.5s) at t=1.0,
        # after which job 1 runs alone again.
        assert completions[2] == pytest.approx(1.0)
        assert completions[1] == pytest.approx(1.25)

    def test_active_jobs_counter(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=2)
        cpu.add_job(1, 1.0, lambda j: None)
        cpu.add_job(2, 1.0, lambda j: None)
        assert cpu.active_jobs == 2
        simulator.run()
        assert cpu.active_jobs == 0

    def test_cancel_job(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        completions = []
        cpu.add_job(1, 1.0, lambda j: completions.append(j))
        assert cpu.cancel_job(1) is True
        assert cpu.cancel_job(1) is False
        simulator.run()
        assert completions == []

    def test_cancel_speeds_up_remaining_jobs(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        completions = {}
        cpu.add_job(1, 1.0, lambda j: completions.setdefault(j, simulator.now))
        cpu.add_job(2, 1.0, lambda j: completions.setdefault(j, simulator.now))
        simulator.schedule_at(0.5, lambda: cpu.cancel_job(2))
        simulator.run()
        # Job 1 gets half the core until t=0.5 (0.25 done), then full speed.
        assert completions[1] == pytest.approx(1.25)

    def test_duplicate_job_id_rejected(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        cpu.add_job(1, 1.0, lambda j: None)
        with pytest.raises(ServerError):
            cpu.add_job(1, 1.0, lambda j: None)

    def test_non_positive_demand_rejected(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=1)
        with pytest.raises(ServerError):
            cpu.add_job(1, 0.0, lambda j: None)

    def test_jobs_completed_counter(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=2)
        for job_id in range(5):
            cpu.add_job(job_id, 0.1, lambda j: None)
        simulator.run()
        assert cpu.jobs_completed == 5

    def test_utilization_tracks_busy_cores(self, simulator):
        cpu = ProcessorSharingCPU(simulator, num_cores=2)
        cpu.add_job(1, 1.0, lambda j: None)
        simulator.run()
        # One job on a 2-core CPU for the whole run: 50% utilization.
        assert cpu.utilization() == pytest.approx(0.5)

    def test_invalid_core_count_rejected(self, simulator):
        with pytest.raises(ServerError):
            ProcessorSharingCPU(simulator, num_cores=0)


class TestFIFOCPU:
    def test_jobs_run_to_completion_in_order(self, simulator):
        cpu = FIFOCPU(simulator, num_cores=1)
        completions = []
        cpu.add_job(1, 0.3, lambda j: completions.append((j, simulator.now)))
        cpu.add_job(2, 0.2, lambda j: completions.append((j, simulator.now)))
        simulator.run()
        assert completions == [(1, pytest.approx(0.3)), (2, pytest.approx(0.5))]

    def test_parallel_cores(self, simulator):
        cpu = FIFOCPU(simulator, num_cores=2)
        completions = {}
        cpu.add_job(1, 0.3, lambda j: completions.setdefault(j, simulator.now))
        cpu.add_job(2, 0.3, lambda j: completions.setdefault(j, simulator.now))
        simulator.run()
        assert completions[1] == pytest.approx(0.3)
        assert completions[2] == pytest.approx(0.3)

    def test_active_jobs_counts_queue(self, simulator):
        cpu = FIFOCPU(simulator, num_cores=1)
        for job_id in range(3):
            cpu.add_job(job_id, 1.0, lambda j: None)
        assert cpu.active_jobs == 3

    def test_cancel_running_job_promotes_queued(self, simulator):
        cpu = FIFOCPU(simulator, num_cores=1)
        completions = {}
        cpu.add_job(1, 1.0, lambda j: completions.setdefault(j, simulator.now))
        cpu.add_job(2, 0.5, lambda j: completions.setdefault(j, simulator.now))
        assert cpu.cancel_job(1) is True
        simulator.run()
        assert 1 not in completions
        assert completions[2] == pytest.approx(0.5)

    def test_cancel_queued_job(self, simulator):
        cpu = FIFOCPU(simulator, num_cores=1)
        cpu.add_job(1, 1.0, lambda j: None)
        cpu.add_job(2, 1.0, lambda j: None)
        assert cpu.cancel_job(2) is True
        assert cpu.active_jobs == 1

    def test_duplicate_job_rejected(self, simulator):
        cpu = FIFOCPU(simulator, num_cores=1)
        cpu.add_job(1, 1.0, lambda j: None)
        with pytest.raises(ServerError):
            cpu.add_job(1, 0.5, lambda j: None)


class TestFactory:
    def test_processor_sharing_aliases(self, simulator):
        assert isinstance(make_cpu(simulator, 2, "processor-sharing"), ProcessorSharingCPU)
        assert isinstance(make_cpu(simulator, 2, "ps"), ProcessorSharingCPU)

    def test_fifo_aliases(self, simulator):
        assert isinstance(make_cpu(simulator, 2, "fifo"), FIFOCPU)
        assert isinstance(make_cpu(simulator, 2, "run-to-completion"), FIFOCPU)

    def test_unknown_model_rejected(self, simulator):
        with pytest.raises(ServerError):
            make_cpu(simulator, 2, "quantum")
