"""Property tests for the fault-injection plane (ISSUE satellite).

Two claims:

* **Bit-identity when disabled** — a :class:`FaultInjectionChannel`
  whose every injector is configured off (zero loss, zero jitter, no
  flap schedule) delivers exactly what the bare inner channel would:
  the same packets, at float-identical times, in the same order, with
  the same labels — and draws nothing from any RNG stream, so the rest
  of the simulation is unperturbed too.

* **Counter reconciliation** — for *any* configuration (arbitrary
  rates, burst parameters, flap schedules), every offered packet is
  either handed to the inner channel or counted once in the unified
  drop total, and the drop total always equals the sum of the
  per-reason counters: ``packets_sent - packets_dropped`` is exactly
  the delivered count.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.channel import InProcessChannel
from repro.net.faults import (
    FaultConfig,
    FaultInjectionChannel,
    build_injectors,
    install_fault_channel,
)
from repro.sim.engine import Simulator


class RecordingSink:
    """Collects ``(packet, delivery time)`` pairs."""

    def __init__(self, simulator):
        self.simulator = simulator
        self.received = []

    def receive(self, packet):
        self.received.append((packet, self.simulator.now))


#: (send time offset, hop delay) pairs; times are drawn from a modest
#: grid so schedules collide and FIFO tie-breaking is exercised too.
send_plans = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False, width=32),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
    ),
    min_size=0,
    max_size=40,
)


def _replay(channel, simulator, plan):
    """Send one packet per plan entry through ``channel``; return sink."""
    sink = RecordingSink(simulator)
    for index, (at, delay) in enumerate(plan):
        simulator.schedule_at(
            at,
            (lambda i=index, d=delay: channel.deliver(sink, i, d, "pkt")),
            label="send",
        )
    simulator.run()
    return sink


@given(plan=send_plans)
@settings(max_examples=60, deadline=None)
def test_disabled_pipeline_is_bit_identical(plan):
    bare_sim = Simulator(seed=7)
    bare = _replay(InProcessChannel(bare_sim), bare_sim, plan)

    faulty_sim = Simulator(seed=7)
    pipeline = FaultInjectionChannel(
        faulty_sim,
        InProcessChannel(faulty_sim),
        build_injectors(faulty_sim, FaultConfig()),
    )
    faulty = _replay(pipeline, faulty_sim, plan)

    # Same packets, same order, float-identical delivery times.
    assert [packet for packet, _ in faulty.received] == [
        packet for packet, _ in bare.received
    ]
    for (_, bare_time), (_, faulty_time) in zip(bare.received, faulty.received):
        assert math.copysign(1.0, bare_time) == math.copysign(1.0, faulty_time)
        assert bare_time == faulty_time
    assert faulty_sim.now == bare_sim.now
    # Nothing was dropped, delayed, or drawn.
    assert pipeline.stats.packets_sent == len(plan)
    assert pipeline.stats.packets_dropped == 0
    assert pipeline.stats.packets_delayed_jitter == 0
    assert pipeline.stats.packets_reordered == 0
    # The injectors' RNG substreams are untouched: both simulators'
    # streams produce identical draws afterwards.
    for name in ("fault-iid-loss", "fault-jitter", "unrelated-stream"):
        bare_draw = bare_sim.streams.stream(name).random(4).tolist()
        faulty_draw = faulty_sim.streams.stream(name).random(4).tolist()
        assert bare_draw == faulty_draw


probability = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def fault_configs(draw):
    """Arbitrary valid fault recipes, including flap schedules."""
    # Sorted, strictly positive gaps turn into non-overlapping windows.
    raw = sorted(
        draw(
            st.lists(
                st.tuples(
                    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                    st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
                ),
                max_size=3,
            )
        )
    )
    windows = []
    previous_end = 0.0
    for start, length in raw:
        start = max(start, previous_end)
        windows.append((start, start + length))
        previous_end = start + length
    return FaultConfig(
        loss_rate=draw(probability),
        burst_enter=draw(probability),
        burst_exit=draw(probability),
        burst_loss=draw(probability),
        jitter_mean=draw(
            st.floats(min_value=0.0, max_value=0.01, allow_nan=False)
        ),
        corruption_rate=draw(probability),
        flap_windows=tuple(windows),
    )


@given(config=fault_configs(), plan=send_plans)
@settings(max_examples=60, deadline=None)
def test_counters_always_reconcile(config, plan):
    simulator = Simulator(seed=11)
    pipeline = FaultInjectionChannel(
        simulator,
        InProcessChannel(simulator),
        build_injectors(simulator, config),
    )
    sink = _replay(pipeline, simulator, plan)

    stats = pipeline.stats
    assert stats.packets_sent == len(plan)
    assert stats.packets_dropped == (
        stats.packets_dropped_loss
        + stats.packets_dropped_burst
        + stats.packets_dropped_corrupted
        + stats.packets_dropped_link_down
    )
    assert pipeline.packets_delivered == stats.packets_sent - stats.packets_dropped
    assert len(sink.received) == pipeline.packets_delivered


def test_install_fault_channel_wraps_and_returns():
    simulator = Simulator(seed=3)

    class FakeFabric:
        def __init__(self):
            self.channel = InProcessChannel(simulator)

    fabric = FakeFabric()
    inner = fabric.channel
    pipeline = install_fault_channel(simulator, fabric, FaultConfig(loss_rate=1.0))
    assert fabric.channel is pipeline
    assert pipeline.inner is inner
    sink = RecordingSink(simulator)
    fabric.channel.deliver(sink, "pkt", 0.1, "x")
    simulator.run()
    assert sink.received == []
    assert pipeline.stats.packets_dropped == 1
    assert pipeline.stats.packets_dropped_loss == 1
