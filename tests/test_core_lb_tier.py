"""Tests for the ECMP load-balancer tier (:mod:`repro.core.lb_tier`).

Covers cross-instance SYN-ACK learning (the return path hits a different
instance than the SYN did and the binding still lands on the owner),
stateless steering recovery after an instance kill, and mid-run
instance addition.
"""

import pytest

from repro.core.candidate_selection import (
    ConsistentHashCandidateSelector,
    RandomCandidateSelector,
)
from repro.core.lb_tier import LoadBalancerTier
from repro.core.policies import make_policy
from repro.errors import LoadBalancerError
from repro.metrics.collector import ResponseTimeCollector
from repro.net.addressing import IPv6Address
from repro.net.fabric import LANFabric
from repro.server.cpu import ProcessorSharingCPU
from repro.server.http_server import HTTPServerInstance
from repro.server.virtual_router import ServerNode
from repro.workload.client import TrafficGeneratorNode
from repro.workload.poisson import PoissonWorkload
from repro.workload.requests import RequestCatalog
from repro.workload.service_models import DeterministicServiceTime


def _addr(text):
    return IPv6Address.parse(text)


STEERING = _addr("fd00:400::100")
VIP = _addr("fd00:300::1")
CLIENT = _addr("fd00:200::1")


def _build_tier_testbed(
    simulator,
    num_instances=3,
    num_servers=6,
    selector_factory=None,
    request_spread=0.0,
    request_chunks=1,
):
    """A full testbed fronted by a tier behind the per-packet ECMP edge."""
    fabric = LANFabric(simulator, latency=1e-5)
    catalog = RequestCatalog()
    collector = ResponseTimeCollector(name="tier")
    if selector_factory is None:
        selector_factory = lambda: ConsistentHashCandidateSelector(
            num_candidates=2, table_size=251
        )

    server_addresses = [_addr(f"fd00:100::{index + 1:x}") for index in range(num_servers)]
    tier = LoadBalancerTier(
        simulator,
        steering_address=STEERING,
        instance_addresses=[
            _addr(f"fd00:400::{index + 1:x}") for index in range(num_instances)
        ],
        selector_factory=selector_factory,
    )
    tier.register_vip(VIP, server_addresses)
    tier.attach(fabric)

    servers = []
    for index, address in enumerate(server_addresses):
        cpu = ProcessorSharingCPU(simulator, num_cores=2)
        app = HTTPServerInstance(
            simulator,
            name=f"apache-{index}",
            cpu=cpu,
            num_workers=16,
            backlog_capacity=64,
            demand_lookup=catalog.demand_of,
        )
        server = ServerNode(
            simulator,
            name=f"server-{index}",
            address=address,
            app=app,
            policy=make_policy("SR8"),
            load_balancer_address=STEERING,  # servers talk to the tier
        )
        server.bind_vip(VIP)
        server.attach(fabric)
        servers.append(server)

    client = TrafficGeneratorNode(
        simulator,
        "client",
        CLIENT,
        VIP,
        collector,
        request_spread=request_spread,
        request_chunks=request_chunks,
    )
    client.attach(fabric)
    return fabric, tier, servers, client, catalog, collector


def _run_workload(simulator, client, catalog, num_queries, rate=60.0, service=0.02):
    workload = PoissonWorkload(
        rate=rate, num_queries=num_queries, service_model=DeterministicServiceTime(service)
    )
    trace = workload.generate(simulator.streams.stream("workload"))
    for request in trace:
        catalog.add(request)
    client.schedule_trace(trace)
    return trace


class TestCrossInstanceLearning:
    def test_all_queries_complete_behind_the_per_packet_edge(self, simulator):
        fabric, tier, servers, client, catalog, collector = _build_tier_testbed(simulator)
        _run_workload(simulator, client, catalog, 300)
        simulator.run()
        assert collector.totals.completed == 300
        assert collector.totals.failed == 0
        # Every binding was learned exactly once, tier-wide.
        assert tier.acceptances_learned() == 300
        assert tier.steering_misses() == 0

    def test_syn_acks_reach_a_different_instance_and_are_relayed(self, simulator):
        fabric, tier, servers, client, catalog, collector = _build_tier_testbed(simulator)
        _run_workload(simulator, client, catalog, 300)
        simulator.run()
        # Per-packet hashing sends ~ (N-1)/N of SYN-ACKs to a non-owner,
        # which must relay them; with 3 instances that is about 2/3.
        assert tier.signals_relayed() > 100
        # The relay resolves to the owner: the instance that dispatched
        # the SYN is the instance that learned the binding.
        for instance in tier.instances:
            assert instance.stats.acceptances_learned <= instance.stats.syn_received

    def test_owner_learns_the_binding_not_the_relay(self, simulator):
        fabric, tier, servers, client, catalog, collector = _build_tier_testbed(simulator)
        _run_workload(simulator, client, catalog, 200)
        simulator.run()
        learned = sum(i.stats.acceptances_learned for i in tier.instances)
        handled = sum(i.tier_stats.signals_handled_locally for i in tier.instances)
        assert learned == 200
        assert handled == 200  # each signal handled exactly once


class TestChurn:
    def test_kill_requires_a_survivor_and_is_idempotent(self, simulator):
        tier = LoadBalancerTier(
            simulator,
            STEERING,
            [_addr("fd00:400::1"), _addr("fd00:400::2")],
            selector_factory=lambda: ConsistentHashCandidateSelector(2, table_size=251),
        )
        tier.kill_instance("lb-0")
        with pytest.raises(LoadBalancerError):
            tier.kill_instance("lb-0")  # already dead
        with pytest.raises(LoadBalancerError):
            tier.kill_instance("lb-1")  # last alive
        assert [i.name for i in tier.alive_instances()] == ["lb-1"]

    def test_unknown_instance_rejected(self, simulator):
        tier = LoadBalancerTier(
            simulator,
            STEERING,
            [_addr("fd00:400::1")],
            selector_factory=lambda: ConsistentHashCandidateSelector(2, table_size=251),
        )
        with pytest.raises(LoadBalancerError):
            tier.kill_instance("lb-99")

    def test_dead_instance_eats_packets(self, simulator):
        fabric, tier, servers, client, catalog, collector = _build_tier_testbed(
            simulator, num_instances=2
        )
        victim = tier.instances[0]
        tier.kill_instance(victim.name)
        from repro.net.packet import make_syn

        victim.receive(make_syn(CLIENT, VIP, 1024, 80))
        assert victim.tier_stats.dropped_while_dead == 1

    def test_mid_run_addition_joins_the_rotation(self, simulator):
        fabric, tier, servers, client, catalog, collector = _build_tier_testbed(
            simulator, num_instances=2
        )
        _run_workload(simulator, client, catalog, 200, rate=40.0)
        simulator.schedule_at(
            2.0, lambda: tier.add_instance(_addr("fd00:400::77")), label="add"
        )
        simulator.run()
        assert collector.totals.completed == 200
        assert collector.totals.failed == 0
        assert tier.stats.instances_added == 1
        newcomer = tier.instance("lb-2")
        # The newcomer took over a share of the flows arriving after it
        # joined (rendezvous hashing moves ~1/3 of the space to it).
        assert newcomer.stats.syn_received > 0


class TestStatelessRecovery:
    def test_consistent_hash_survives_an_instance_kill(self, simulator):
        fabric, tier, servers, client, catalog, collector = _build_tier_testbed(
            simulator,
            num_instances=4,
            request_spread=1.0,
            request_chunks=4,
        )
        _run_workload(simulator, client, catalog, 400, rate=30.0, service=0.02)
        def kill():
            victim = max(tier.alive_instances(), key=lambda lb: len(lb.flow_table))
            tier.kill_instance(victim.name)
        simulator.schedule_at(7.0, kill, label="kill")
        simulator.run()
        # Flows owned by the victim missed steering state on the new
        # owner but were recovered by re-deriving the candidate chain.
        assert tier.recovery_hunts() > 0
        assert collector.totals.failed == 0
        assert collector.totals.completed == 400
        assert client.in_flight == 0

    def test_random_selection_resets_the_victims_flows(self, simulator):
        fabric, tier, servers, client, catalog, collector = _build_tier_testbed(
            simulator,
            num_instances=4,
            selector_factory=lambda: RandomCandidateSelector(
                simulator.streams.stream("sel"), num_candidates=2
            ),
            request_spread=1.0,
            request_chunks=4,
        )
        _run_workload(simulator, client, catalog, 400, rate=30.0, service=0.02)
        def kill():
            victim = max(tier.alive_instances(), key=lambda lb: len(lb.flow_table))
            tier.kill_instance(victim.name)
        simulator.schedule_at(7.0, kill, label="kill")
        simulator.run()
        # Random candidate lists cannot be re-derived: the remapped
        # flows' steering misses turn into client resets.
        assert tier.recovery_hunts() == 0
        assert collector.totals.failed > 0
        assert client.in_flight == 0
        assert sum(i.stats.resets_sent for i in tier.instances) >= collector.totals.failed
