"""Unit tests for the hostile/heavy-tailed workload layer."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.metrics.collector import ResponseTimeCollector
from repro.net.addressing import CLIENT_PREFIX, VIP_PREFIX
from repro.net.tcp import EPHEMERAL_PORT_BASE, EPHEMERAL_PORT_RANGE
from repro.workload.hostile import (
    HeavyTailWorkload,
    SessionAffinityClient,
    find_colliding_flow_keys,
    spoofed_source_flows,
    stable_user_port,
    user_concentration,
)
from repro.workload.requests import KIND_HEAVY, KIND_SESSION, Request
from repro.workload.trace import Trace

VIP = VIP_PREFIX.address_at(1)


class TestHeavyTailWorkload:
    def _workload(self, **overrides):
        params = dict(
            rate=50.0, num_arrivals=300, num_users=1_000, heavy_fraction=0.3
        )
        params.update(overrides)
        return HeavyTailWorkload(**params)

    def test_generation_is_seed_deterministic(self):
        first = self._workload().generate(np.random.default_rng([11, 300]))
        second = self._workload().generate(np.random.default_rng([11, 300]))
        assert len(first) == len(second) == 300
        for left, right in zip(first, second):
            assert left == right

    def test_trace_structure(self):
        trace = self._workload().generate(np.random.default_rng(5))
        arrivals = [request.arrival_time for request in trace]
        assert arrivals == sorted(arrivals)
        assert [request.request_id for request in trace] == list(range(1, 301))
        kinds = {request.kind for request in trace}
        assert kinds == {KIND_HEAVY, KIND_SESSION}
        for request in trace:
            assert request.service_demand > 0
            assert request.response_size >= 0
            assert 0 <= request.user_id < 1_000
            if request.kind == KIND_HEAVY:
                assert request.url == "/heavy.php"
            else:
                assert request.url == "/session.php"

    def test_response_sizes_respect_the_cap(self):
        workload = self._workload(
            heavy_fraction=1.0, size_median=4_000, size_cap=6_000
        )
        trace = workload.generate(np.random.default_rng(9))
        sizes = [request.response_size for request in trace]
        assert max(sizes) <= 6_000
        assert min(sizes) >= 1

    def test_sessions_aggregate_more_demand_than_single_requests(self):
        workload = self._workload(mean_session_length=8.0, heavy_fraction=0.0)
        trace = workload.generate(np.random.default_rng(3))
        mean_demand = np.mean([request.service_demand for request in trace])
        # Eight lognormal(median 0.04) requests per session on average.
        assert mean_demand > 0.04 * 2

    def test_from_load_factor_normalises_by_mixture_mean(self):
        workload = HeavyTailWorkload.from_load_factor(
            load_factor=0.7,
            capacity=8.0,
            num_arrivals=100,
            heavy_fraction=0.3,
            mean_session_length=4.0,
        )
        offered = workload.rate * workload.mean_arrival_demand()
        assert offered == pytest.approx(0.7 * 8.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rate=0.0),
            dict(heavy_fraction=1.5),
            dict(mean_session_length=0.5),
            dict(num_users=0),
            dict(user_zipf=1.0),
            dict(size_median=0),
            dict(size_sigma=-1.0),
        ],
    )
    def test_invalid_parameters_are_refused(self, kwargs):
        with pytest.raises(WorkloadError):
            self._workload(**kwargs)


class TestUserConcentration:
    def test_counts_and_top_share(self):
        requests = [
            Request(1, 0.1, 0.05, kind=KIND_SESSION, user_id=7),
            Request(2, 0.2, 0.05, kind=KIND_SESSION, user_id=7),
            Request(3, 0.3, 0.05, kind=KIND_HEAVY, user_id=9),
            Request(4, 0.4, 0.05, kind=KIND_SESSION, user_id=7),
        ]
        users = user_concentration(Trace(requests, name="t"))
        assert users.num_requests == 4
        assert users.num_sessions == 3
        assert users.num_heavy == 1
        assert users.distinct_users == 2
        assert users.max_user_requests == 3
        assert users.top_user_share == pytest.approx(0.75)

    def test_refuses_traces_without_user_ids(self):
        trace = Trace([Request(1, 0.1, 0.05)], name="plain")
        with pytest.raises(WorkloadError, match="no user ids"):
            user_concentration(trace)


class TestStableUserPort:
    def test_ports_are_deterministic_and_in_range(self):
        for user in (0, 1, 17, 10**6):
            port = stable_user_port(user)
            assert port == stable_user_port(user)
            assert EPHEMERAL_PORT_BASE <= port < (
                EPHEMERAL_PORT_BASE + EPHEMERAL_PORT_RANGE
            )

    def test_distinct_users_mostly_get_distinct_ports(self):
        ports = {stable_user_port(user) for user in range(1_000)}
        # Birthday collisions are possible but must stay rare.
        assert len(ports) > 950


class TestSessionAffinityClient:
    def _client(self, simulator):
        return SessionAffinityClient(
            simulator,
            "client",
            CLIENT_PREFIX.address_at(1),
            VIP,
            ResponseTimeCollector(name="t"),
        )

    def test_user_queries_get_their_stable_port(self, simulator):
        client = self._client(simulator)
        request = Request(1, 0.1, 0.05, user_id=42)
        port = client._allocate_port(request)
        assert port == stable_user_port(42)
        assert client.affinity_hits == 1
        assert client.affinity_fallbacks == 0

    def test_active_port_falls_back_to_the_allocator(self, simulator):
        client = self._client(simulator)
        first = client._allocate_port(Request(1, 0.1, 0.05, user_id=42))
        second = client._allocate_port(Request(2, 0.2, 0.05, user_id=42))
        assert second != first
        assert client.affinity_fallbacks == 1
        # Once the first query finishes, the stable port is reusable.
        client._active_ports.discard(first)
        third = client._allocate_port(Request(3, 0.3, 0.05, user_id=42))
        assert third == first

    def test_anonymous_queries_use_the_round_robin_allocator(self, simulator):
        client = self._client(simulator)
        port = client._allocate_port(Request(1, 0.1, 0.05))
        assert client.affinity_hits == 0
        assert client.affinity_fallbacks == 0
        assert EPHEMERAL_PORT_BASE <= port < (
            EPHEMERAL_PORT_BASE + EPHEMERAL_PORT_RANGE
        )


class TestTraceUserIdRoundTrip:
    def test_save_and_load_preserve_user_ids(self, tmp_path):
        requests = [
            Request(1, 0.1, 0.05, kind=KIND_SESSION, user_id=123),
            Request(2, 0.2, 0.07),
        ]
        path = tmp_path / "trace.json"
        Trace(requests, name="mixed").save(path)
        loaded = Trace.load(path)
        assert loaded[0].user_id == 123
        assert loaded[1].user_id is None

    def test_slice_and_compress_propagate_user_ids(self):
        trace = Trace(
            [Request(1, 1.0, 0.05, user_id=5), Request(2, 3.0, 0.05, user_id=6)],
            name="t",
        )
        sliced = trace.slice_time(0.0, 2.0)
        assert [request.user_id for request in sliced] == [5]
        compressed = trace.compress_time(2.0)
        assert [request.user_id for request in compressed] == [5, 6]


class TestFloodGenerators:
    def test_spoofed_flows_need_sources_and_positive_count(self):
        with pytest.raises(WorkloadError):
            spoofed_source_flows(VIP, [], 4)
        with pytest.raises(WorkloadError):
            spoofed_source_flows(VIP, [CLIENT_PREFIX.address_at(1)], 0)

    def test_collision_search_rejects_bad_arguments(self):
        sources = [CLIENT_PREFIX.address_at(1)]
        with pytest.raises(WorkloadError, match="hash scheme"):
            find_colliding_flow_keys(
                ["a", "b"], "a", VIP, sources, 1, hash_scheme="crc32"
            )
        with pytest.raises(WorkloadError, match="not in the ECMP group"):
            find_colliding_flow_keys(["a", "b"], "c", VIP, sources, 1)
        with pytest.raises(WorkloadError, match="at least one source"):
            find_colliding_flow_keys(["a", "b"], "a", VIP, [], 1)
        with pytest.raises(WorkloadError, match="positive"):
            find_colliding_flow_keys(["a", "b"], "a", VIP, sources, 0)

    def test_collision_search_reports_exhaustion(self):
        sources = [CLIENT_PREFIX.address_at(1)]
        with pytest.raises(WorkloadError, match="exhausted"):
            find_colliding_flow_keys(
                ["a", "b", "c", "d"], "a", VIP, sources, 50, max_candidates=8
            )
