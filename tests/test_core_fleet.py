"""Tests for the ECMP fleet of SRLB instances (scale-out extension).

Covers the Maglev-based flow-to-instance mapping, steering-signal
routing back to the owning instance, minimal disruption when an
instance leaves, and an end-to-end run where a two-instance fleet fronts
the full server substrate.
"""

import pytest

from repro.core.candidate_selection import ConsistentHashCandidateSelector
from repro.core.fleet import ECMPRouterNode, LoadBalancerFleet
from repro.core.loadbalancer import LoadBalancerNode
from repro.core.policies import make_policy
from repro.errors import LoadBalancerError
from repro.metrics.collector import ResponseTimeCollector
from repro.net.addressing import IPv6Address
from repro.net.fabric import LANFabric
from repro.net.packet import FlowKey
from repro.server.cpu import ProcessorSharingCPU
from repro.server.http_server import HTTPServerInstance
from repro.server.virtual_router import ServerNode
from repro.workload.client import TrafficGeneratorNode
from repro.workload.poisson import PoissonWorkload
from repro.workload.requests import RequestCatalog
from repro.workload.service_models import DeterministicServiceTime


def _addr(text):
    return IPv6Address.parse(text)


ANYCAST = _addr("fd00:400::100")
VIP = _addr("fd00:300::1")
CLIENT = _addr("fd00:200::1")


def _flow(port):
    return FlowKey(CLIENT, port, VIP, 80)


def _build_fleet_testbed(simulator, num_instances=2, num_servers=6):
    """A full testbed fronted by an ECMP fleet instead of a single LB."""
    fabric = LANFabric(simulator, latency=1e-5)
    catalog = RequestCatalog()
    collector = ResponseTimeCollector(name="fleet")

    server_addresses = [_addr(f"fd00:100::{index + 1:x}") for index in range(num_servers)]
    fleet = LoadBalancerFleet(
        simulator,
        anycast_address=ANYCAST,
        instance_addresses=[
            _addr(f"fd00:400::{index + 1:x}") for index in range(num_instances)
        ],
        selector_factory=lambda: ConsistentHashCandidateSelector(
            num_candidates=2, table_size=251
        ),
    )
    fleet.register_vip(VIP, server_addresses)
    fleet.attach(fabric)

    servers = []
    for index, address in enumerate(server_addresses):
        cpu = ProcessorSharingCPU(simulator, num_cores=2)
        app = HTTPServerInstance(
            simulator,
            name=f"apache-{index}",
            cpu=cpu,
            num_workers=8,
            backlog_capacity=32,
            demand_lookup=catalog.demand_of,
        )
        server = ServerNode(
            simulator,
            name=f"server-{index}",
            address=address,
            app=app,
            policy=make_policy("SR4"),
            load_balancer_address=ANYCAST,  # servers talk to the fleet
        )
        server.bind_vip(VIP)
        server.attach(fabric)
        servers.append(server)

    client = TrafficGeneratorNode(simulator, "client", CLIENT, VIP, collector)
    client.attach(fabric)
    return fabric, fleet, servers, client, catalog, collector


class TestECMPRouter:
    def test_flow_to_instance_mapping_is_deterministic(self, simulator):
        fleet = LoadBalancerFleet(
            simulator,
            ANYCAST,
            [_addr("fd00:400::1"), _addr("fd00:400::2"), _addr("fd00:400::3")],
            selector_factory=lambda: ConsistentHashCandidateSelector(2, table_size=251),
        )
        for port in range(100):
            first = fleet.router.instance_for(_flow(port))
            second = fleet.router.instance_for(_flow(port))
            assert first is second

    def test_flows_spread_over_instances(self, simulator):
        fleet = LoadBalancerFleet(
            simulator,
            ANYCAST,
            [_addr("fd00:400::1"), _addr("fd00:400::2"), _addr("fd00:400::3")],
            selector_factory=lambda: ConsistentHashCandidateSelector(2, table_size=251),
        )
        owners = {fleet.router.instance_for(_flow(port)).name for port in range(300)}
        assert owners == {"lb-0", "lb-1", "lb-2"}

    def test_instance_removal_remaps_a_minority_of_flows(self, simulator):
        fleet = LoadBalancerFleet(
            simulator,
            ANYCAST,
            [_addr(f"fd00:400::{index:x}") for index in range(1, 6)],
            selector_factory=lambda: ConsistentHashCandidateSelector(2, table_size=251),
        )
        flows = [_flow(port) for port in range(1_000)]
        before = {flow: fleet.router.instance_for(flow).name for flow in flows}
        fleet.remove_instance("lb-2")
        after = {flow: fleet.router.instance_for(flow).name for flow in flows}
        remapped = sum(
            1 for flow in flows if before[flow] != after[flow] and before[flow] != "lb-2"
        )
        # Only flows owned by the removed instance should move (plus a
        # small Maglev repopulation effect): far less than half.
        assert remapped / len(flows) < 0.25
        assert all(after[flow] != "lb-2" for flow in flows)

    def test_cannot_remove_last_instance(self, simulator):
        fleet = LoadBalancerFleet(
            simulator,
            ANYCAST,
            [_addr("fd00:400::1")],
            selector_factory=lambda: ConsistentHashCandidateSelector(2, table_size=251),
        )
        with pytest.raises(LoadBalancerError):
            fleet.remove_instance("lb-0")

    def test_duplicate_instance_rejected(self, simulator):
        router = ECMPRouterNode(simulator, "ecmp", ANYCAST)
        instance = LoadBalancerNode(
            simulator,
            "lb-0",
            _addr("fd00:400::1"),
            ConsistentHashCandidateSelector(2, table_size=251),
            advertise_vips=False,
        )
        router.add_instance(instance)
        with pytest.raises(LoadBalancerError):
            router.add_instance(instance)

    def test_instance_for_empty_fleet_rejected(self, simulator):
        router = ECMPRouterNode(simulator, "ecmp", ANYCAST)
        with pytest.raises(LoadBalancerError):
            router.instance_for(_flow(1))


class TestFleetEndToEnd:
    def test_queries_complete_through_a_two_instance_fleet(self, simulator):
        fabric, fleet, servers, client, catalog, collector = _build_fleet_testbed(simulator)
        workload = PoissonWorkload(
            rate=50.0, num_queries=300, service_model=DeterministicServiceTime(0.02)
        )
        trace = workload.generate(simulator.streams.stream("workload"))
        for request in trace:
            catalog.add(request)
        client.schedule_trace(trace)
        simulator.run()

        assert collector.totals.completed == 300
        assert collector.totals.failed == 0
        # Both instances carried traffic and learned steering state.
        share = fleet.router.instance_share()
        assert set(share) == {"lb-0", "lb-1"}
        assert all(value > 0.1 for value in share.values())
        learned = sum(
            instance.stats.acceptances_learned for instance in fleet.instances
        )
        assert learned == 300
        # Every served query was accepted by some server.
        assert sum(fleet.acceptances_per_server().values()) == 300

    def test_steering_signals_reach_the_owning_instance(self, simulator):
        fabric, fleet, servers, client, catalog, collector = _build_fleet_testbed(simulator)
        workload = PoissonWorkload(
            rate=50.0, num_queries=120, service_model=DeterministicServiceTime(0.02)
        )
        trace = workload.generate(simulator.streams.stream("workload"))
        for request in trace:
            catalog.add(request)
        client.schedule_trace(trace)
        simulator.run()

        assert fleet.router.stats.steering_signals_forwarded == 120
        # No instance ever had to reset a mid-flow packet for lack of
        # steering state: the ECMP mapping is consistent per flow.
        assert all(
            instance.stats.steering_misses == 0 for instance in fleet.instances
        )
