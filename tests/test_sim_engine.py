"""Unit tests for the discrete-event simulation engine."""

import math

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import PeriodicTask, exponential_delay


class TestScheduling:
    def test_events_run_in_time_order(self, simulator):
        order = []
        simulator.schedule_at(2.0, lambda: order.append("b"))
        simulator.schedule_at(1.0, lambda: order.append("a"))
        simulator.schedule_at(3.0, lambda: order.append("c"))
        simulator.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_run_in_scheduling_order(self, simulator):
        order = []
        for label in ("first", "second", "third"):
            simulator.schedule_at(1.0, lambda label=label: order.append(label))
        simulator.run()
        assert order == ["first", "second", "third"]

    def test_schedule_in_is_relative(self, simulator):
        times = []
        simulator.schedule_in(1.5, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [1.5]

    def test_schedule_in_past_raises(self, simulator):
        simulator.schedule_at(5.0, lambda: None)
        simulator.run()
        with pytest.raises(SchedulingError):
            simulator.schedule_at(1.0, lambda: None)

    def test_negative_delay_raises(self, simulator):
        with pytest.raises(SchedulingError):
            simulator.schedule_in(-0.1, lambda: None)

    def test_clock_advances_to_event_time(self, simulator):
        simulator.schedule_at(7.0, lambda: None)
        final = simulator.run()
        assert final == 7.0
        assert simulator.now == 7.0

    def test_nested_scheduling_from_callback(self, simulator):
        seen = []

        def outer():
            seen.append(("outer", simulator.now))
            simulator.schedule_in(1.0, inner)

        def inner():
            seen.append(("inner", simulator.now))

        simulator.schedule_at(1.0, outer)
        simulator.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestNonFiniteTimes:
    """NaN (and infinities) must be rejected at scheduling time.

    Regression: ``NaN < now`` is false, so a NaN timestamp used to slip
    past the before-now guard and corrupt heap ordering for every event
    sifted past it.
    """

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_schedule_at_rejects_non_finite_times(self, simulator, bad):
        with pytest.raises(SchedulingError):
            simulator.schedule_at(bad, lambda: None)
        assert simulator.pending_events == 0

    def test_schedule_in_rejects_nan_delay(self, simulator):
        with pytest.raises(SchedulingError):
            simulator.schedule_in(math.nan, lambda: None)
        assert simulator.pending_events == 0

    def test_schedule_in_rejects_infinite_delay(self, simulator):
        with pytest.raises(SchedulingError):
            simulator.schedule_in(math.inf, lambda: None)

    def test_nan_never_corrupts_ordering_of_later_events(self, simulator):
        fired = []
        simulator.schedule_at(2.0, lambda: fired.append(2))
        with pytest.raises(SchedulingError):
            simulator.schedule_at(math.nan, lambda: fired.append("nan"))
        simulator.schedule_at(1.0, lambda: fired.append(1))
        simulator.run()
        assert fired == [1, 2]

    def test_large_finite_times_still_accepted(self, simulator):
        handle = simulator.schedule_at(1e300, lambda: None)
        assert handle.time == 1e300


class TestRunControl:
    def test_run_until_stops_before_later_events(self, simulator):
        fired = []
        simulator.schedule_at(1.0, lambda: fired.append(1))
        simulator.schedule_at(10.0, lambda: fired.append(10))
        final = simulator.run(until=5.0)
        assert fired == [1]
        assert final == 5.0
        # The remaining event still fires on a subsequent run.
        simulator.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_even_without_events(self, simulator):
        final = simulator.run(until=3.0)
        assert final == 3.0

    def test_max_events_limits_execution(self, simulator):
        fired = []
        for index in range(10):
            simulator.schedule_at(float(index + 1), lambda i=index: fired.append(i))
        simulator.run(max_events=4)
        assert len(fired) == 4

    def test_max_events_after_last_pre_horizon_event_reaches_horizon(self, simulator):
        """Regression: the ``max_events`` break used to skip the final
        clock advance even when every event at or before ``until`` had
        already run, violating ``run(until=T) == T``."""
        fired = []
        simulator.schedule_at(1.0, lambda: fired.append(1))
        simulator.schedule_at(2.0, lambda: fired.append(2))
        simulator.schedule_at(10.0, lambda: fired.append(10))
        final = simulator.run(until=5.0, max_events=2)
        assert fired == [1, 2]
        assert final == 5.0
        assert simulator.now == 5.0
        # The post-horizon event is still live and fires later.
        simulator.run()
        assert fired == [1, 2, 10]

    def test_max_events_with_pre_horizon_work_left_keeps_partial_time(self, simulator):
        fired = []
        for index in range(4):
            simulator.schedule_at(float(index + 1), lambda i=index: fired.append(i))
        final = simulator.run(until=5.0, max_events=2)
        # Two of the four pre-horizon events are still pending, so the
        # clock must not jump past them.
        assert fired == [0, 1]
        assert final == 2.0
        assert simulator.run(until=5.0) == 5.0
        assert fired == [0, 1, 2, 3]

    def test_stop_after_last_pre_horizon_event_reaches_horizon(self, simulator):
        simulator.schedule_at(1.0, simulator.stop)
        simulator.schedule_at(9.0, lambda: None)
        assert simulator.run(until=5.0) == 5.0

    def test_stop_halts_the_run(self, simulator):
        fired = []
        simulator.schedule_at(1.0, lambda: (fired.append(1), simulator.stop()))
        simulator.schedule_at(2.0, lambda: fired.append(2))
        simulator.run()
        assert fired == [1]

    def test_step_executes_exactly_one_event(self, simulator):
        fired = []
        simulator.schedule_at(1.0, lambda: fired.append("a"))
        simulator.schedule_at(2.0, lambda: fired.append("b"))
        assert simulator.step() is True
        assert fired == ["a"]
        assert simulator.step() is True
        assert simulator.step() is False

    def test_reentrant_run_raises(self, simulator):
        def reenter():
            simulator.run()

        simulator.schedule_at(1.0, reenter)
        with pytest.raises(SimulationError):
            simulator.run()

    def test_events_executed_counter(self, simulator):
        for index in range(5):
            simulator.schedule_at(float(index), lambda: None)
        simulator.run()
        assert simulator.events_executed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, simulator):
        fired = []
        handle = simulator.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        simulator.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_twice_is_harmless(self, simulator):
        handle = simulator.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_peek_next_time_skips_cancelled(self, simulator):
        first = simulator.schedule_at(1.0, lambda: None)
        simulator.schedule_at(2.0, lambda: None)
        first.cancel()
        assert simulator.peek_next_time() == 2.0

    def test_peek_next_time_empty_heap(self, simulator):
        assert simulator.peek_next_time() is None

    def test_drain_discards_pending_events(self, simulator):
        simulator.schedule_at(1.0, lambda: None)
        simulator.schedule_at(2.0, lambda: None)
        assert simulator.drain() == 2
        assert simulator.peek_next_time() is None


class TestPeriodicTask:
    def test_periodic_task_ticks_at_interval(self, simulator):
        ticks = []
        task = PeriodicTask(simulator, interval=1.0, callback=lambda: ticks.append(simulator.now))
        task.start()
        simulator.schedule_at(3.5, task.stop)
        simulator.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_periodic_task_first_delay_override(self, simulator):
        ticks = []
        task = PeriodicTask(simulator, interval=2.0, callback=lambda: ticks.append(simulator.now))
        task.start(first_delay=0.0)
        simulator.schedule_at(4.5, task.stop)
        simulator.run()
        assert ticks == [0.0, 2.0, 4.0]

    def test_periodic_task_requires_positive_interval(self, simulator):
        task = PeriodicTask(simulator, interval=0.0, callback=lambda: None)
        with pytest.raises(SchedulingError):
            task.start()

    def test_stop_before_start_is_noop(self, simulator):
        task = PeriodicTask(simulator, interval=1.0, callback=lambda: None)
        task.stop()
        assert not task.active

    def test_double_start_does_not_double_tick(self, simulator):
        ticks = []
        task = PeriodicTask(simulator, interval=1.0, callback=lambda: ticks.append(simulator.now))
        task.start()
        task.start()
        simulator.schedule_at(2.5, task.stop)
        simulator.run()
        assert ticks == [1.0, 2.0]


class TestExponentialDelay:
    def test_positive_values(self, simulator):
        rng = simulator.streams.stream("test")
        values = [exponential_delay(rng, 0.5) for _ in range(100)]
        assert all(value > 0 for value in values)

    def test_mean_is_roughly_right(self, simulator):
        rng = simulator.streams.stream("test")
        values = [exponential_delay(rng, 2.0) for _ in range(20_000)]
        assert 1.9 < sum(values) / len(values) < 2.1

    def test_rejects_non_positive_mean(self, simulator):
        rng = simulator.streams.stream("test")
        with pytest.raises(SimulationError):
            exponential_delay(rng, 0.0)


class TestHeapCompaction:
    """Cancelled entries must not pin the heap once they dominate it."""

    def test_mass_cancellation_compacts_the_heap(self, simulator):
        handles = [
            simulator.schedule_at(float(index + 1), lambda: None)
            for index in range(1_000)
        ]
        assert simulator.pending_events == 1_000
        # Cancel 90% of the events; the compaction threshold (more than
        # half the heap dead) must have kicked in along the way.
        for handle in handles[100:]:
            handle.cancel()
        assert simulator.pending_events < 1_000
        # Only live events remain countable, and they still all fire.
        fired = []
        for index in range(100):
            handles[index]._event.callback = lambda index=index: fired.append(index)
        simulator.run()
        assert fired == list(range(100))

    def test_compaction_preserves_event_order(self, simulator):
        fired = []
        keep = []
        for index in range(500):
            handle = simulator.schedule_at(
                float(index % 7), lambda index=index: fired.append(index)
            )
            if index % 5 == 0:
                keep.append(index)
            else:
                handle.cancel()

        simulator.run()
        # Survivors fire in (time, scheduling order): sort by (time, index).
        assert fired == sorted(keep, key=lambda index: (index % 7, index))

    def test_small_heaps_are_left_alone(self, simulator):
        handles = [simulator.schedule_at(1.0, lambda: None) for _ in range(10)]
        for handle in handles:
            handle.cancel()
        # Below the compaction minimum the dead entries stay until popped.
        assert simulator.pending_events == 10
        simulator.run()
        assert simulator.pending_events == 0

    def test_cancel_after_firing_does_not_corrupt_accounting(self, simulator):
        handle = simulator.schedule_at(1.0, lambda: None)
        simulator.run()
        handle.cancel()  # late cancel of an already-executed event
        assert simulator._cancelled_on_heap == 0
        # The simulator still schedules and runs normally afterwards.
        fired = []
        simulator.schedule_at(2.0, lambda: fired.append(True))
        simulator.run()
        assert fired == [True]

    def test_cancelling_twice_counts_once(self, simulator):
        handles = [simulator.schedule_at(1.0, lambda: None) for _ in range(5)]
        for handle in handles:
            handle.cancel()
            handle.cancel()
        assert simulator._cancelled_on_heap == 5

    def test_step_discards_cancelled_through_discard_bookkeeping(self, simulator):
        """Regression: stepping over cancelled entries must keep the
        cancelled-on-heap counter exact, so a later ``cancel()`` +
        ``_maybe_compact_heap()`` pairing neither compacts too early nor
        leaves the counter stale (or negative)."""
        fired = []
        cancelled = [simulator.schedule_at(1.0, lambda: None) for _ in range(3)]
        live = simulator.schedule_at(2.0, lambda: fired.append("live"))
        for handle in cancelled:
            handle.cancel()
        assert simulator._cancelled_on_heap == 3
        # The single step skips all three cancelled entries, executes the
        # live one, and the counter reflects every discard.
        assert simulator.step() is True
        assert fired == ["live"]
        assert simulator._cancelled_on_heap == 0
        assert simulator.pending_events == 0
        assert not live.cancelled
        # A fresh cancel/step cycle keeps the counter consistent: it can
        # never go negative, which would disable compaction forever.
        again = simulator.schedule_at(3.0, lambda: None)
        again.cancel()
        assert simulator._cancelled_on_heap == 1
        assert simulator.step() is False  # only the cancelled event is left
        assert simulator._cancelled_on_heap == 0
        simulator._maybe_compact_heap()
        assert simulator._cancelled_on_heap == 0
        assert simulator.pending_events == 0

    def test_step_then_mass_cancel_still_triggers_compaction(self, simulator):
        """cancel()/step()/_maybe_compact_heap() interplay at scale."""
        handles = [
            simulator.schedule_at(float(index + 1), lambda: None)
            for index in range(200)
        ]
        # Step over a cancelled head entry first.
        handles[0].cancel()
        handles_alive = handles[1:]
        assert simulator.step() is True  # discards #0, executes #1
        # Cancel enough of the rest to cross the compaction threshold.
        for handle in handles_alive[1:180]:
            handle.cancel()
        # Compaction kicked in: the heap holds fewer entries than were
        # scheduled, and the counter exactly matches the cancelled
        # entries still on the heap (the invariant compaction relies on).
        assert simulator.pending_events < 199
        assert simulator._cancelled_on_heap == sum(
            1 for entry in simulator._heap if entry[2].cancelled
        )
        fired = []
        for index, handle in enumerate(handles_alive[180:]):
            handle._event.callback = lambda i=index: fired.append(i)
        simulator.run()
        assert fired == list(range(len(handles_alive[180:])))


    def test_compaction_from_inside_a_running_callback(self, simulator):
        """Regression: a callback that cancels enough events to trigger
        compaction mid-run must not strand the run loop on a stale heap.

        Compaction used to rebind ``self._heap`` while ``run()`` held a
        local alias, so events scheduled after the compaction never
        fired, the cancelled counter went negative, and already-executed
        entries were popped again on the next run."""
        fired = []
        handles = []

        def cancel_most_then_schedule():
            for handle in handles[10:]:
                handle.cancel()  # 190 of 200: crosses the >half threshold
            simulator.schedule_at(500.0, lambda: fired.append("late"))

        simulator.schedule_at(0.5, cancel_most_then_schedule)
        for index in range(200):
            handles.append(
                simulator.schedule_at(
                    float(index + 1), lambda i=index: fired.append(i)
                )
            )
        simulator.run()
        # The 10 surviving early events and the post-compaction event
        # all fired, in order.
        assert fired == list(range(10)) + ["late"]
        assert simulator.pending_events == 0
        assert simulator._cancelled_on_heap == 0
        # The simulator remains healthy afterwards (nothing stale left
        # to pop, no dead entries with cleared callbacks).
        simulator.schedule_at(501.0, lambda: fired.append("after"))
        simulator.run()
        assert fired[-1] == "after"


class TestCallbackRelease:
    """Events must drop their callbacks once off the heap, so handles
    kept by components cannot pin closures for a whole replay."""

    def test_executed_event_releases_callback(self, simulator):
        handle = simulator.schedule_at(1.0, lambda: None)
        simulator.run()
        assert handle._event.callback is None

    def test_cancelled_event_releases_callback_immediately(self, simulator):
        handle = simulator.schedule_at(1.0, lambda: None)
        handle.cancel()
        assert handle._event.callback is None

    def test_stepped_event_releases_callback(self, simulator):
        handle = simulator.schedule_at(1.0, lambda: None)
        assert simulator.step() is True
        assert handle._event.callback is None

    def test_drained_event_releases_callback(self, simulator):
        handle = simulator.schedule_at(1.0, lambda: None)
        assert simulator.drain() == 1
        assert handle._event.callback is None


class TestBatchedDispatch:
    """The run loop drains same-timestamp events as one batch; the
    observable contract (order, cancellation, max_events, step) must be
    indistinguishable from one-at-a-time dispatch."""

    def test_same_timestamp_events_run_in_scheduling_order(self, simulator):
        order = []
        for index in range(8):
            simulator.schedule_at(2.0, lambda i=index: order.append(i))
        simulator.schedule_at(1.0, lambda: order.append("early"))
        simulator.run()
        assert order == ["early"] + list(range(8))

    def test_events_scheduled_during_a_batch_run_after_it(self, simulator):
        order = []

        def spawn():
            order.append("spawn")
            # Same timestamp as the batch being executed: the new event
            # has a higher sequence number, so it lands in the *next*
            # batch at this time, after every member of the current one.
            simulator.schedule_at(1.0, lambda: order.append("spawned"))

        simulator.schedule_at(1.0, spawn)
        simulator.schedule_at(1.0, lambda: order.append("sibling"))
        simulator.run()
        assert order == ["spawn", "sibling", "spawned"]

    def test_in_batch_cancellation_is_honoured(self, simulator):
        fired = []
        handles = {}

        def cancel_later():
            fired.append("canceller")
            handles["victim"].cancel()

        simulator.schedule_at(1.0, cancel_later)
        handles["victim"] = simulator.schedule_at(
            1.0, lambda: fired.append("victim")
        )
        simulator.schedule_at(1.0, lambda: fired.append("survivor"))
        simulator.run()
        assert fired == ["canceller", "survivor"]
        assert simulator.pending_events == 0

    def test_max_events_can_split_a_batch(self, simulator):
        fired = []
        for index in range(6):
            simulator.schedule_at(1.0, lambda i=index: fired.append(i))
        simulator.run(max_events=4)
        assert fired == [0, 1, 2, 3]
        assert simulator.pending_events == 2
        # The remainder of the split batch runs on resume, still in order.
        simulator.run()
        assert fired == list(range(6))

    def test_stop_mid_batch_preserves_the_rest(self, simulator):
        fired = []
        simulator.schedule_at(1.0, lambda: fired.append("first"))
        simulator.schedule_at(1.0, simulator.stop)
        simulator.schedule_at(1.0, lambda: fired.append("after-stop"))
        simulator.run()
        assert fired == ["first"]
        assert simulator.pending_events == 1
        simulator.run()
        assert fired == ["first", "after-stop"]

    def test_step_is_unchanged_by_batching(self, simulator):
        fired = []
        for index in range(3):
            simulator.schedule_at(1.0, lambda i=index: fired.append(i))
        assert simulator.step() is True
        assert fired == [0]
        assert simulator.pending_events == 2
        assert simulator.step() is True
        assert simulator.step() is True
        assert simulator.step() is False
        assert fired == [0, 1, 2]

    def test_batch_stats_distinguish_singletons_from_batches(self, simulator):
        for index in range(5):
            simulator.schedule_at(1.0, lambda: None)
        simulator.schedule_at(2.0, lambda: None)
        simulator.schedule_at(3.0, lambda: None)
        simulator.run()
        stats = simulator.batch_stats
        assert stats.events == 7
        assert stats.batches == 3
        assert stats.max_size == 5
        assert stats.size_counts == {1: 2, 5: 1}
        assert stats.mean_size == pytest.approx(7 / 3)

    def test_exception_mid_batch_keeps_unexecuted_events(self, simulator):
        fired = []
        simulator.schedule_at(1.0, lambda: fired.append("ok"))

        def boom():
            raise RuntimeError("mid-batch failure")

        simulator.schedule_at(1.0, boom)
        simulator.schedule_at(1.0, lambda: fired.append("later"))
        with pytest.raises(RuntimeError):
            simulator.run()
        assert fired == ["ok"]
        # The unexecuted member survived the abort and runs on resume.
        simulator.run()
        assert fired == ["ok", "later"]
