"""Unit tests for the scoreboard, worker pool and listen backlog."""

import pytest

from repro.errors import BacklogOverflowError, ServerError, WorkerPoolError
from repro.server.backlog import ListenBacklog
from repro.server.scoreboard import Scoreboard, WorkerState
from repro.server.worker_pool import WorkerPool
from repro.sim.clock import SimulationClock


@pytest.fixture
def clock():
    return SimulationClock()


class TestScoreboard:
    def test_starts_all_idle(self, clock):
        board = Scoreboard(clock, 4)
        assert board.busy_count == 0
        assert board.idle_count == 4
        assert all(board.state_of(slot) is WorkerState.IDLE for slot in range(4))

    def test_mark_busy_and_idle(self, clock):
        board = Scoreboard(clock, 4)
        board.mark_busy(2)
        assert board.busy_count == 1
        assert board.state_of(2) is WorkerState.BUSY
        board.mark_idle(2)
        assert board.busy_count == 0

    def test_double_mark_is_idempotent(self, clock):
        board = Scoreboard(clock, 4)
        board.mark_busy(1)
        board.mark_busy(1)
        assert board.busy_count == 1

    def test_peak_busy(self, clock):
        board = Scoreboard(clock, 4)
        for slot in range(3):
            board.mark_busy(slot)
        board.mark_idle(0)
        assert board.peak_busy == 3
        assert board.busy_count == 2

    def test_out_of_range_slot_rejected(self, clock):
        board = Scoreboard(clock, 4)
        with pytest.raises(ServerError):
            board.mark_busy(4)
        with pytest.raises(ServerError):
            board.state_of(-1)

    def test_zero_slots_rejected(self, clock):
        with pytest.raises(ServerError):
            Scoreboard(clock, 0)

    def test_mean_busy_integrates_over_time(self, clock):
        board = Scoreboard(clock, 4)
        board.mark_busy(0)
        clock.advance(2.0)
        board.mark_busy(1)
        clock.advance(4.0)
        # 1 busy for 2 s, then 2 busy for 2 s -> mean = (2 + 4) / 4 = 1.5
        assert board.mean_busy() == pytest.approx(1.5)

    def test_snapshot(self, clock):
        board = Scoreboard(clock, 4)
        board.mark_busy(0)
        snapshot = board.snapshot()
        assert snapshot == {"slots": 4, "busy": 1, "idle": 3, "peak_busy": 1}


class TestWorkerPool:
    def test_acquire_until_exhausted(self, clock):
        pool = WorkerPool(Scoreboard(clock, 3))
        slots = [pool.acquire() for _ in range(3)]
        assert sorted(slots) == [0, 1, 2]
        assert pool.acquire() is None
        assert pool.busy_workers == 3
        assert not pool.has_idle_worker

    def test_release_returns_worker(self, clock):
        pool = WorkerPool(Scoreboard(clock, 2))
        slot = pool.acquire()
        pool.release(slot)
        assert pool.idle_workers == 2
        assert pool.busy_workers == 0

    def test_release_unacquired_worker_rejected(self, clock):
        pool = WorkerPool(Scoreboard(clock, 2))
        with pytest.raises(WorkerPoolError):
            pool.release(0)

    def test_scoreboard_mirrors_pool_state(self, clock):
        board = Scoreboard(clock, 2)
        pool = WorkerPool(board)
        slot = pool.acquire()
        assert board.busy_count == 1
        pool.release(slot)
        assert board.busy_count == 0

    def test_acquisition_counter(self, clock):
        pool = WorkerPool(Scoreboard(clock, 2))
        slot = pool.acquire()
        pool.release(slot)
        pool.acquire()
        assert pool.total_acquisitions == 2

    def test_is_busy(self, clock):
        pool = WorkerPool(Scoreboard(clock, 2))
        slot = pool.acquire()
        assert pool.is_busy(slot)
        assert not pool.is_busy(1 - slot)


class TestListenBacklog:
    def test_admission_until_full(self):
        backlog = ListenBacklog(capacity=2)
        assert backlog.try_admit(1) is True
        assert backlog.try_admit(2) is True
        assert backlog.is_full
        assert backlog.try_admit(3) is False
        assert backlog.total_rejected == 1

    def test_strict_mode_raises_on_overflow(self):
        backlog = ListenBacklog(capacity=1, abort_on_overflow=False)
        backlog.try_admit(1)
        with pytest.raises(BacklogOverflowError):
            backlog.try_admit(2)

    def test_fifo_order(self):
        backlog = ListenBacklog(capacity=4)
        for connection_id in (10, 20, 30):
            backlog.try_admit(connection_id)
        assert backlog.pop_next() == 10
        assert backlog.pop_next() == 20
        assert backlog.peek_next() == 30

    def test_pop_empty_returns_none(self):
        backlog = ListenBacklog(capacity=2)
        assert backlog.pop_next() is None
        assert backlog.peek_next() is None

    def test_remove_specific_connection(self):
        backlog = ListenBacklog(capacity=4)
        backlog.try_admit(1)
        backlog.try_admit(2)
        assert backlog.remove(1) is True
        assert backlog.remove(1) is False
        assert backlog.pop_next() == 2

    def test_duplicate_admission_rejected(self):
        backlog = ListenBacklog(capacity=4)
        backlog.try_admit(1)
        with pytest.raises(ServerError):
            backlog.try_admit(1)

    def test_pop_frees_capacity(self):
        backlog = ListenBacklog(capacity=1)
        backlog.try_admit(1)
        backlog.pop_next()
        assert backlog.try_admit(2) is True

    def test_zero_capacity_rejected(self):
        with pytest.raises(ServerError):
            ListenBacklog(capacity=0)

    def test_contains_and_len(self):
        backlog = ListenBacklog(capacity=4)
        backlog.try_admit(7)
        assert 7 in backlog
        assert len(backlog) == 1
