"""Property-based tests for the SRLB core and the metrics pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent import ApplicationAgent, StaticLoadView
from repro.core.consistent_hash import MaglevTable
from repro.core.policies import DynamicThresholdPolicy, StaticThresholdPolicy
from repro.core.service_hunting import HuntingDecision, ServiceHuntingProcessor
from repro.metrics.fairness import jain_fairness_index
from repro.metrics.stats import deciles, empirical_cdf, summarize
from repro.net.addressing import IPv6Address
from repro.net.packet import make_syn
from repro.net.srh import SegmentRoutingHeader
from repro.server.cpu import ProcessorSharingCPU
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# policies
# ----------------------------------------------------------------------
@given(
    threshold=st.integers(min_value=0, max_value=33),
    busy=st.integers(min_value=0, max_value=32),
)
def test_static_policy_is_exactly_a_threshold_rule(threshold, busy):
    policy = StaticThresholdPolicy(threshold)
    agent = ApplicationAgent(StaticLoadView(busy=busy, slots=32))
    assert policy.should_accept(agent) == (busy < threshold)


@given(
    busy_sequence=st.lists(st.integers(min_value=0, max_value=32), min_size=1, max_size=400),
    window=st.integers(min_value=5, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_dynamic_policy_threshold_stays_within_bounds(busy_sequence, window):
    policy = DynamicThresholdPolicy(initial_threshold=1, window_size=window, max_threshold=32)
    view = StaticLoadView(busy=0, slots=32)
    agent = ApplicationAgent(view)
    for busy in busy_sequence:
        view.set_busy(busy)
        policy.should_accept(agent)
        assert 0 <= policy.threshold <= 32


# ----------------------------------------------------------------------
# service hunting
# ----------------------------------------------------------------------
_vip = IPv6Address.parse("fd00:300::1")
_client = IPv6Address.parse("fd00:200::1")
_servers = [IPv6Address.parse(f"fd00:100::{index:x}") for index in range(1, 9)]


@given(
    num_candidates=st.integers(min_value=1, max_value=6),
    busy=st.integers(min_value=0, max_value=32),
    threshold=st.integers(min_value=0, max_value=33),
)
@settings(max_examples=200, deadline=None)
def test_service_hunting_always_terminates_in_an_accept(num_candidates, busy, threshold):
    """No matter the policy outcome, some candidate accepts the query."""
    packet = make_syn(_client, _vip, 20_000, 80)
    packet.attach_srh(
        SegmentRoutingHeader.from_traversal(list(_servers[:num_candidates]) + [_vip])
    )
    processors = [
        ServiceHuntingProcessor(
            StaticThresholdPolicy(threshold),
            ApplicationAgent(StaticLoadView(busy=busy, slots=32)),
        )
        for _ in range(num_candidates)
    ]
    hops = 0
    for processor in processors:
        decision = processor.process(packet)
        hops += 1
        if decision is HuntingDecision.ACCEPT:
            break
    assert decision is HuntingDecision.ACCEPT
    assert packet.dst == _vip
    assert hops <= num_candidates


# ----------------------------------------------------------------------
# Maglev consistent hashing
# ----------------------------------------------------------------------
@given(
    num_backends=st.integers(min_value=1, max_value=16),
    keys=st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_maglev_lookup_is_deterministic_and_valid(num_backends, keys):
    backends = [IPv6Address.parse(f"fd00:100::{index + 1:x}") for index in range(num_backends)]
    table = MaglevTable(backends, table_size=307)
    for key in keys:
        first = table.lookup(key)
        assert first == table.lookup(key)
        assert first in backends


@given(num_backends=st.integers(min_value=2, max_value=12))
@settings(max_examples=20, deadline=None)
def test_maglev_shares_sum_to_one(num_backends):
    backends = [IPv6Address.parse(f"fd00:100::{index + 1:x}") for index in range(num_backends)]
    table = MaglevTable(backends, table_size=307)
    assert sum(table.slot_shares().values()) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# processor-sharing CPU conservation
# ----------------------------------------------------------------------
@given(
    demands=st.lists(
        st.floats(min_value=0.01, max_value=2.0, allow_nan=False), min_size=1, max_size=15
    ),
    cores=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50, deadline=None)
def test_processor_sharing_conserves_work(demands, cores):
    """Total completion time is bounded by work conservation.

    All jobs arrive at t=0; the CPU can do ``cores`` seconds of work per
    second, so the last completion cannot happen before total_demand /
    cores, nor before the largest single demand, and (since the CPU is
    never idle while jobs remain) not after total_demand.
    """
    simulator = Simulator(seed=0)
    cpu = ProcessorSharingCPU(simulator, num_cores=cores)
    completions = {}
    for index, demand in enumerate(demands):
        cpu.add_job(index, demand, lambda i: completions.setdefault(i, simulator.now))
    simulator.run()
    assert len(completions) == len(demands)
    finish = max(completions.values())
    lower_bound = max(max(demands), sum(demands) / cores)
    assert finish >= lower_bound - 1e-9
    assert finish <= sum(demands) + 1e-9


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
positive_samples = st.lists(
    st.floats(min_value=1e-6, max_value=1e3, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


@given(values=positive_samples)
def test_summary_statistics_are_internally_consistent(values):
    summary = summarize(values)
    # A one-ulp tolerance absorbs the rounding of numpy's mean/percentile.
    tolerance = 1e-9 * max(values)
    assert summary.minimum <= summary.median <= summary.maximum + tolerance
    assert summary.minimum - tolerance <= summary.mean <= summary.maximum + tolerance
    assert summary.p75 <= summary.p90 <= summary.p99 <= summary.maximum + tolerance
    assert summary.count == len(values)


@given(values=positive_samples)
def test_empirical_cdf_is_a_distribution_function(values):
    x, p = empirical_cdf(values)
    assert list(x) == sorted(values)
    assert p[-1] == pytest.approx(1.0)
    assert all(0 < prob <= 1.0 for prob in p)
    assert all(p[i] <= p[i + 1] for i in range(len(p) - 1))


@given(values=positive_samples)
def test_deciles_are_sorted_and_bounded(values):
    result = deciles(values)
    assert result == sorted(result)
    assert min(values) <= result[0]
    assert result[-1] <= max(values)


@given(
    loads=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=64
    )
)
def test_fairness_index_bounds(loads):
    index = jain_fairness_index(loads)
    assert 1.0 / len(loads) - 1e-12 <= index <= 1.0 + 1e-12


@given(
    loads=st.lists(st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
                   min_size=1, max_size=32),
    scale=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
)
def test_fairness_index_is_scale_invariant(loads, scale):
    assert jain_fairness_index(loads) == pytest.approx(
        jain_fairness_index([scale * value for value in loads]), rel=1e-6
    )
