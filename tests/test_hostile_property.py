"""Property-based tests for the hostile-workload collision search.

The hash-collision generator promises two things: every 5-tuple it
emits verifiably lands on the targeted ECMP bucket under the data
plane's own selector, for every configured hash scheme; and the search
is a pure function of its arguments — no hidden RNG — so repeated runs
(and pool workers) produce identical flow lists.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addressing import CLIENT_PREFIX, VIP_PREFIX, IPv6Address
from repro.net.ecmp import HASH_SCHEMES, select_next_hop_name
from repro.net.packet import FlowKey
from repro.workload.hostile import (
    find_colliding_flow_keys,
    spoofed_source_flows,
)

hop_counts = st.integers(min_value=2, max_value=8)
source_counts = st.integers(min_value=1, max_value=12)
flow_counts = st.integers(min_value=1, max_value=24)
schemes = st.sampled_from(HASH_SCHEMES)


def _hops(count: int) -> list:
    return [f"lb-{index}" for index in range(count)]


def _sources(count: int) -> list:
    return [CLIENT_PREFIX.address_at(10_000 + index) for index in range(count)]


_VIP = VIP_PREFIX.address_at(1)


@given(
    num_hops=hop_counts,
    target_index=st.integers(min_value=0, max_value=7),
    num_sources=source_counts,
    count=flow_counts,
    scheme=schemes,
)
@settings(max_examples=60, deadline=None)
def test_every_colliding_flow_lands_on_the_target(
    num_hops, target_index, num_sources, count, scheme
):
    hops = _hops(num_hops)
    target = hops[target_index % num_hops]
    flows = find_colliding_flow_keys(
        hops,
        target,
        _VIP,
        _sources(num_sources),
        count,
        hash_scheme=scheme,
    )
    assert len(flows) == count
    for flow in flows:
        assert select_next_hop_name(hops, flow, scheme) == target


@given(
    num_hops=hop_counts,
    target_index=st.integers(min_value=0, max_value=7),
    num_sources=source_counts,
    count=flow_counts,
    scheme=schemes,
)
@settings(max_examples=40, deadline=None)
def test_collision_search_is_deterministic(
    num_hops, target_index, num_sources, count, scheme
):
    hops = _hops(num_hops)
    target = hops[target_index % num_hops]
    args = (hops, target, _VIP, _sources(num_sources), count)
    first = find_colliding_flow_keys(*args, hash_scheme=scheme)
    second = find_colliding_flow_keys(*args, hash_scheme=scheme)
    assert first == second
    # Hop-name *order* must not matter either: the selector sorts.
    shuffled = list(reversed(hops))
    assert find_colliding_flow_keys(
        shuffled, target, _VIP, _sources(num_sources), count, hash_scheme=scheme
    ) == first


@given(
    num_hops=hop_counts,
    count=flow_counts,
    scheme=schemes,
    src_offset=st.integers(min_value=1, max_value=2**16),
    src_port=st.integers(min_value=1024, max_value=65535),
    dst_offset=st.integers(min_value=1, max_value=2**16),
    dst_port=st.integers(min_value=1, max_value=65535),
)
@settings(max_examples=80, deadline=None)
def test_selector_is_stable_and_in_group(
    num_hops, count, scheme, src_offset, src_port, dst_offset, dst_port
):
    hops = _hops(num_hops)
    flow = FlowKey(
        CLIENT_PREFIX.address_at(src_offset),
        src_port,
        VIP_PREFIX.address_at(dst_offset),
        dst_port,
    )
    chosen = select_next_hop_name(hops, flow, scheme)
    assert chosen in hops
    assert select_next_hop_name(hops, flow, scheme) == chosen
    assert select_next_hop_name(list(reversed(hops)), flow, scheme) == chosen


@given(num_sources=source_counts, count=flow_counts)
@settings(max_examples=60, deadline=None)
def test_spoofed_flows_are_distinct_and_cycle_sources(num_sources, count):
    sources = _sources(num_sources)
    flows = spoofed_source_flows(_VIP, sources, count)
    assert len(flows) == count
    assert len(set(flows)) == count
    for index, flow in enumerate(flows):
        assert flow.src_address == sources[index % num_sources]
        assert flow.dst_address == _VIP


def test_live_router_agrees_with_offline_selector():
    """The offline search uses the data plane's own hash: the router's
    live ``next_hop_for`` must pick the same instance for every flow
    the search emits, for every scheme."""
    from repro.net.ecmp import EcmpEdgeRouter
    from repro.net.router import NetworkNode
    from repro.sim.engine import Simulator

    simulator = Simulator(seed=7)

    class _Sink(NetworkNode):
        def handle_packet(self, packet):  # pragma: no cover - unused
            pass

    hops = []
    for index in range(4):
        node = _Sink(simulator, f"lb-{index}")
        node.add_address(CLIENT_PREFIX.address_at(500 + index))
        hops.append(node)

    sources = _sources(6)
    for index, scheme in enumerate(HASH_SCHEMES):
        router = EcmpEdgeRouter(
            simulator,
            f"edge-{scheme}",
            steering_address=CLIENT_PREFIX.address_at(900 + index),
            hash_scheme=scheme,
        )
        for node in hops:
            router.add_next_hop(node)
        names = [node.name for node in hops]
        for target in names:
            flows = find_colliding_flow_keys(
                names, target, _VIP, sources, 16, hash_scheme=scheme
            )
            for flow in flows:
                assert router.next_hop_for(flow).name == target
