"""Mid-flow behaviour during a graceful server drain.

The control plane's promise is that a scale-down never breaks an
established connection: a flow accepted by a server that starts draining
must complete without RSTs, because (a) the load balancers keep steering
its packets through their flow tables even after the server leaves the
candidate pools, and (b) the Service Hunting layer only refuses *new*
optional offers.  These tests pin that promise at both load-balancing
layers — the realistic per-packet-ECMP :class:`LoadBalancerTier` and the
idealised :class:`ECMPRouterNode`/:class:`LoadBalancerFleet` — plus the
hunting-level drain semantics in isolation.

Clients trickle their uploads over ~1 s (``request_spread``), so every
flow genuinely depends on steering state while the drain happens
mid-upload.
"""

import pytest

from repro.core.agent import ApplicationAgent
from repro.core.candidate_selection import ConsistentHashCandidateSelector
from repro.core.fleet import LoadBalancerFleet
from repro.core.lb_tier import LoadBalancerTier
from repro.core.policies import make_policy
from repro.core.service_hunting import HuntingDecision, ServiceHuntingProcessor
from repro.errors import LoadBalancerError
from repro.metrics.collector import ResponseTimeCollector
from repro.net.addressing import IPv6Address
from repro.net.fabric import LANFabric
from repro.net.packet import FlowKey, Packet, TCPFlag, TCPSegment
from repro.net.srh import SegmentRoutingHeader
from repro.server.cpu import ProcessorSharingCPU
from repro.server.http_server import HTTPServerInstance
from repro.server.scoreboard import Scoreboard
from repro.server.virtual_router import ServerNode
from repro.workload.client import TrafficGeneratorNode
from repro.workload.poisson import PoissonWorkload
from repro.workload.requests import RequestCatalog
from repro.workload.service_models import DeterministicServiceTime


def _addr(text):
    return IPv6Address.parse(text)


STEERING = _addr("fd00:400::100")
VIP = _addr("fd00:300::1")
CLIENT = _addr("fd00:200::1")


def _make_servers(simulator, fabric, catalog, addresses, steering):
    servers = []
    for index, address in enumerate(addresses):
        cpu = ProcessorSharingCPU(simulator, num_cores=2)
        app = HTTPServerInstance(
            simulator,
            name=f"apache-{index}",
            cpu=cpu,
            num_workers=16,
            backlog_capacity=64,
            demand_lookup=catalog.demand_of,
        )
        server = ServerNode(
            simulator,
            name=f"server-{index}",
            address=address,
            app=app,
            policy=make_policy("SR8"),
            load_balancer_address=steering,
        )
        server.bind_vip(VIP)
        server.attach(fabric)
        servers.append(server)
    return servers


def _run_drain_scenario(simulator, front, servers, client, catalog, drain_at):
    """Replay a spread-upload workload, draining a loaded server mid-run.

    ``front`` is the load-balancing layer under test; it must expose
    ``remove_backend(vip, address)``.  Returns the drained server.
    """
    workload = PoissonWorkload(
        rate=40.0, num_queries=40, service_model=DeterministicServiceTime(0.05)
    )
    trace = workload.generate(simulator.streams.stream("workload"))
    for request in trace:
        catalog.add(request)
    client.schedule_trace(trace)

    drained = []

    def drain_busiest():
        victim = max(servers, key=lambda server: server.app.open_connections)
        assert victim.app.open_connections > 0, "drain must catch in-flight flows"
        front.remove_backend(VIP, victim.primary_address)
        victim.start_draining()
        drained.append(victim)

    simulator.schedule_at(drain_at, drain_busiest, label="drain")
    simulator.run()
    return drained[0]


def _assert_graceful(collector, servers, drained):
    # Every query completed: nothing was reset by the drain.
    assert collector.totals.failed == 0
    assert collector.totals.completed == 40
    assert sum(server.app.stats.connections_reset for server in servers) == 0
    assert sum(server.stray_data_resets for server in servers) == 0
    # The drained server finished its in-flight work and went quiescent.
    assert drained.draining
    assert drained.quiescent
    # It really did refuse offers while draining, or was simply bypassed;
    # either way it served at least the flows it had already accepted.
    assert drained.app.stats.requests_served > 0


class TestDrainAtTheTierLayer:
    """Graceful drain behind the realistic per-packet ECMP tier."""

    def test_in_flight_flows_complete_without_resets(self, simulator):
        fabric = LANFabric(simulator, latency=1e-5)
        catalog = RequestCatalog()
        collector = ResponseTimeCollector(name="drain-tier")
        server_addresses = [_addr(f"fd00:100::{i + 1:x}") for i in range(4)]
        tier = LoadBalancerTier(
            simulator,
            steering_address=STEERING,
            instance_addresses=[_addr("fd00:400::1"), _addr("fd00:400::2")],
            selector_factory=lambda: ConsistentHashCandidateSelector(
                num_candidates=2, table_size=251
            ),
        )
        tier.register_vip(VIP, server_addresses)
        tier.attach(fabric)
        servers = _make_servers(
            simulator, fabric, catalog, server_addresses, STEERING
        )
        client = TrafficGeneratorNode(
            simulator, "client", CLIENT, VIP, collector,
            request_spread=1.0, request_chunks=4,
        )
        client.attach(fabric)

        drained = _run_drain_scenario(
            simulator, tier, servers, client, catalog, drain_at=0.6
        )
        _assert_graceful(collector, servers, drained)
        # The tier-wide pools no longer name the drained server.
        for instance in tier.instances:
            assert drained.primary_address not in instance.backends_for(VIP)

    def test_tier_backend_change_invalidates_the_edge_cache(self, simulator):
        tier = LoadBalancerTier(
            simulator,
            steering_address=STEERING,
            instance_addresses=[_addr("fd00:400::1"), _addr("fd00:400::2")],
            selector_factory=lambda: ConsistentHashCandidateSelector(
                num_candidates=2, table_size=251
            ),
        )
        backends = [_addr("fd00:100::1"), _addr("fd00:100::2"), _addr("fd00:100::3")]
        tier.register_vip(VIP, backends)
        # Warm the edge cache with a few flow decisions.
        for port in range(10_000, 10_020):
            tier.router.next_hop_for(FlowKey(CLIENT, port, VIP, 80))
        assert tier.router.invalidate_next_hop_cache() == 20
        for port in range(10_000, 10_020):
            tier.router.next_hop_for(FlowKey(CLIENT, port, VIP, 80))
        tier.remove_backend(VIP, backends[-1])
        # The removal itself must have cleared the memoized decisions.
        assert tier.router.invalidate_next_hop_cache() == 0
        tier.add_backend(VIP, backends[-1])
        assert tier.router.invalidate_next_hop_cache() == 0

    def test_removing_the_last_backend_is_refused_without_side_effects(
        self, simulator
    ):
        tier = LoadBalancerTier(
            simulator,
            steering_address=STEERING,
            instance_addresses=[_addr("fd00:400::1"), _addr("fd00:400::2")],
            selector_factory=lambda: ConsistentHashCandidateSelector(
                num_candidates=1, table_size=251
            ),
        )
        last = _addr("fd00:100::1")
        tier.register_vip(VIP, [last])
        # Warm the edge cache so we can observe it surviving the refusal.
        tier.router.next_hop_for(FlowKey(CLIENT, 10_000, VIP, 80))
        with pytest.raises(LoadBalancerError):
            tier.remove_backend(VIP, last)
        # The refusal left every layer exactly as it was: tier pool,
        # every instance's pool, and the memoized edge decisions.
        for instance in tier.instances:
            assert instance.backends_for(VIP) == [last]
        assert tier.router.invalidate_next_hop_cache() == 1
        with pytest.raises(LoadBalancerError):
            tier.instances[0].remove_backend(VIP, last)
        assert tier.instances[0].backends_for(VIP) == [last]

    def test_diverged_instance_pool_refuses_before_any_mutation(self, simulator):
        # The per-instance backend API is public; if an instance's pool
        # diverged from the tier's, a tier-wide removal that would empty
        # that instance's pool must refuse up front, leaving the tier
        # pool and every other instance untouched.
        tier = LoadBalancerTier(
            simulator,
            steering_address=STEERING,
            instance_addresses=[_addr("fd00:400::1"), _addr("fd00:400::2")],
            selector_factory=lambda: ConsistentHashCandidateSelector(
                num_candidates=1, table_size=251
            ),
        )
        first = _addr("fd00:100::1")
        second = _addr("fd00:100::2")
        tier.register_vip(VIP, [first, second])
        tier.instances[0].remove_backend(VIP, first)  # diverge one instance
        with pytest.raises(LoadBalancerError, match="no servers on instance"):
            tier.remove_backend(VIP, second)
        # Nothing was mutated by the refused removal.
        assert set(tier.instances[1].backends_for(VIP)) == {first, second}
        assert tier.instances[0].backends_for(VIP) == [second]


class TestDrainAtTheFleetLayer:
    """Graceful drain behind the idealised flow-aware ECMP router."""

    def test_in_flight_flows_complete_without_resets(self, simulator):
        fabric = LANFabric(simulator, latency=1e-5)
        catalog = RequestCatalog()
        collector = ResponseTimeCollector(name="drain-fleet")
        server_addresses = [_addr(f"fd00:100::{i + 1:x}") for i in range(4)]
        fleet = LoadBalancerFleet(
            simulator,
            anycast_address=STEERING,
            instance_addresses=[_addr("fd00:400::1"), _addr("fd00:400::2")],
            selector_factory=lambda: ConsistentHashCandidateSelector(
                num_candidates=2, table_size=251
            ),
        )
        fleet.register_vip(VIP, server_addresses)
        fleet.attach(fabric)
        servers = _make_servers(
            simulator, fabric, catalog, server_addresses, STEERING
        )
        client = TrafficGeneratorNode(
            simulator, "client", CLIENT, VIP, collector,
            request_spread=1.0, request_chunks=4,
        )
        client.attach(fabric)

        drained = _run_drain_scenario(
            simulator, fleet, servers, client, catalog, drain_at=0.6
        )
        _assert_graceful(collector, servers, drained)
        for instance in fleet.instances:
            assert drained.primary_address not in instance.backends_for(VIP)

    def test_add_backend_reaches_every_instance(self, simulator):
        fleet = LoadBalancerFleet(
            simulator,
            anycast_address=STEERING,
            instance_addresses=[_addr("fd00:400::1"), _addr("fd00:400::2")],
            selector_factory=lambda: ConsistentHashCandidateSelector(
                num_candidates=2, table_size=251
            ),
        )
        backends = [_addr("fd00:100::1"), _addr("fd00:100::2")]
        fleet.register_vip(VIP, backends)
        newcomer = _addr("fd00:100::3")
        fleet.add_backend(VIP, newcomer)
        for instance in fleet.instances:
            assert newcomer in instance.backends_for(VIP)
        assert fleet.remove_backend(VIP, newcomer)
        assert not fleet.remove_backend(VIP, newcomer)


class TestHuntingDrainSemantics:
    """The Service Hunting layer's drain switch, in isolation."""

    def _offer(self, segments_left):
        srh = SegmentRoutingHeader.from_traversal(
            [_addr("fd00:100::1"), _addr("fd00:100::2"), VIP]
        )
        while srh.segments_left > segments_left:
            srh.advance()
        return Packet(
            src=CLIENT,
            dst=srh.active_segment,
            tcp=TCPSegment(
                src_port=40_000, dst_port=80, flags=TCPFlag.SYN, request_id=1
            ),
            srh=srh,
            created_at=0.0,
        )

    def _processor(self, simulator):
        scoreboard = Scoreboard(simulator.clock, 8)
        agent = ApplicationAgent(scoreboard, cpu_cores=2)
        return ServiceHuntingProcessor(make_policy("SR8"), agent)

    def test_draining_refuses_optional_offers(self, simulator):
        processor = self._processor(simulator)
        processor.draining = True
        decision = processor.process(self._offer(segments_left=2))
        assert decision is HuntingDecision.FORWARD
        assert processor.stats.refused == 1
        assert processor.stats.refused_draining == 1

    def test_draining_still_honours_the_forced_accept(self, simulator):
        processor = self._processor(simulator)
        processor.draining = True
        decision = processor.process(self._offer(segments_left=1))
        assert decision is HuntingDecision.ACCEPT
        assert processor.stats.accepted_forced == 1
        assert processor.stats.refused_draining == 0

    def test_not_draining_consults_the_policy(self, simulator):
        processor = self._processor(simulator)
        decision = processor.process(self._offer(segments_left=2))
        assert decision is HuntingDecision.ACCEPT  # SR8, zero busy threads
        assert processor.stats.refused_draining == 0
