"""Unit tests for the named random streams."""

import pytest

from repro.errors import SimulationError
from repro.sim.random_streams import RandomStreams, _stable_name_key


class TestRandomStreams:
    def test_same_seed_same_values(self):
        a = RandomStreams(seed=1).stream("arrivals")
        b = RandomStreams(seed=1).stream("arrivals")
        assert a.random(10).tolist() == b.random(10).tolist()

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("arrivals")
        b = RandomStreams(seed=2).stream("arrivals")
        assert a.random(10).tolist() != b.random(10).tolist()

    def test_different_names_differ(self):
        streams = RandomStreams(seed=1)
        a = streams.stream("arrivals")
        b = streams.stream("service")
        assert a.random(10).tolist() != b.random(10).tolist()

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("x") is streams.stream("x")

    def test_stream_independent_of_creation_order(self):
        first = RandomStreams(seed=3)
        second = RandomStreams(seed=3)
        # Create unrelated streams first in one factory only.
        first.stream("other-1")
        first.stream("other-2")
        a = first.stream("target")
        b = second.stream("target")
        assert a.random(5).tolist() == b.random(5).tolist()

    def test_empty_name_rejected(self):
        with pytest.raises(SimulationError):
            RandomStreams(seed=1).stream("")

    def test_negative_seed_rejected(self):
        with pytest.raises(SimulationError):
            RandomStreams(seed=-1)

    def test_names_lists_created_streams(self):
        streams = RandomStreams(seed=0)
        streams.stream("a")
        streams.stream("b")
        assert set(streams.names()) == {"a", "b"}

    def test_seed_property(self):
        assert RandomStreams(seed=9).seed == 9


class TestStableNameKey:
    def test_deterministic(self):
        assert _stable_name_key("arrivals") == _stable_name_key("arrivals")

    def test_distinct_names_get_distinct_keys(self):
        keys = {_stable_name_key(name) for name in ("a", "b", "c", "arrivals", "service")}
        assert len(keys) == 5

    def test_key_fits_in_63_bits(self):
        assert 0 <= _stable_name_key("anything") < 2 ** 63
