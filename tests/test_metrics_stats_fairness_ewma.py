"""Unit tests for the statistics, fairness and EWMA helpers."""

import math

import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics.ewma import EWMAFilter, alpha_from_interval, smooth_series, smooth_timeseries
from repro.metrics.fairness import jain_fairness_index, min_max_ratio
from repro.metrics.stats import (
    cdf_at,
    deciles,
    empirical_cdf,
    improvement_factor,
    mean_or_nan,
    median_or_nan,
    percentile,
    quartiles,
    summarize,
)


class TestSummaryStatistics:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ReproError):
            summarize([])

    def test_as_dict(self):
        assert summarize([1.0]).as_dict()["count"] == 1


class TestCDF:
    def test_empirical_cdf_is_monotone_and_ends_at_one(self):
        x, p = empirical_cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert p[-1] == pytest.approx(1.0)
        assert all(p[i] <= p[i + 1] for i in range(len(p) - 1))

    def test_cdf_at_thresholds(self):
        values = [0.1, 0.2, 0.3, 0.4]
        assert cdf_at(values, [0.25]) == [pytest.approx(0.5)]
        assert cdf_at(values, [1.0]) == [pytest.approx(1.0)]
        assert cdf_at(values, [0.05]) == [pytest.approx(0.0)]

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            empirical_cdf([])
        with pytest.raises(ReproError):
            cdf_at([], [0.5])


class TestPercentiles:
    def test_percentile_bounds(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        with pytest.raises(ReproError):
            percentile(values, 150)
        with pytest.raises(ReproError):
            percentile([], 50)

    def test_deciles_are_nine_increasing_values(self):
        values = list(np.linspace(0, 1, 1_001))
        result = deciles(values)
        assert len(result) == 9
        assert result == sorted(result)
        assert result[4] == pytest.approx(0.5, abs=0.01)

    def test_quartiles(self):
        q1, median, q3 = quartiles(list(range(1, 101)))
        assert q1 < median < q3

    def test_nan_helpers(self):
        assert math.isnan(mean_or_nan([]))
        assert math.isnan(median_or_nan([]))
        assert mean_or_nan([2.0, 4.0]) == pytest.approx(3.0)
        assert median_or_nan([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_improvement_factor(self):
        assert improvement_factor(1.0, 0.5) == pytest.approx(2.0)
        with pytest.raises(ReproError):
            improvement_factor(1.0, 0.0)


class TestFairness:
    def test_perfectly_fair(self):
        assert jain_fairness_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_loaded_server(self):
        # One server out of n carries everything: index = 1/n.
        assert jain_fairness_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_idle_is_fair(self):
        assert jain_fairness_index([0, 0, 0]) == pytest.approx(1.0)

    def test_index_is_scale_invariant(self):
        loads = [1.0, 2.0, 3.0, 4.0]
        assert jain_fairness_index(loads) == pytest.approx(
            jain_fairness_index([10 * value for value in loads])
        )

    def test_bounds(self):
        loads = [3, 1, 4, 1, 5, 9, 2, 6]
        index = jain_fairness_index(loads)
        assert 1 / len(loads) <= index <= 1.0

    def test_negative_values_rejected(self):
        with pytest.raises(ReproError):
            jain_fairness_index([1, -1])
        with pytest.raises(ReproError):
            jain_fairness_index([])

    def test_min_max_ratio(self):
        assert min_max_ratio([2, 4]) == pytest.approx(0.5)
        assert min_max_ratio([0, 0]) == pytest.approx(1.0)
        with pytest.raises(ReproError):
            min_max_ratio([-1, 1])


class TestEWMA:
    def test_alpha_formula_matches_paper(self):
        # alpha = 1 - exp(-dt) with the default 1-second time constant.
        assert alpha_from_interval(0.5) == pytest.approx(1 - math.exp(-0.5))
        assert alpha_from_interval(2.0, time_constant=2.0) == pytest.approx(
            1 - math.exp(-1.0)
        )

    @pytest.mark.parametrize("delta_t", [0.0, -1.0, float("nan"), float("inf")])
    def test_alpha_rejects_degenerate_intervals(self, delta_t):
        with pytest.raises(ValueError):
            alpha_from_interval(delta_t)

    def test_validation_errors_stay_inside_the_repro_hierarchy(self):
        # The ValueError the ISSUE asks for must not break the
        # "every error derives from ReproError" contract the CLI's
        # single except-clause relies on.
        with pytest.raises(ReproError):
            alpha_from_interval(0.0)
        with pytest.raises(ReproError):
            EWMAFilter(-1.0)

    @pytest.mark.parametrize(
        "time_constant", [0.0, -0.5, float("nan"), float("inf")]
    )
    def test_alpha_rejects_degenerate_time_constants(self, time_constant):
        with pytest.raises(ValueError):
            alpha_from_interval(1.0, time_constant=time_constant)

    @pytest.mark.parametrize("time_constant", [0.0, -1.0, float("nan")])
    def test_filter_rejects_degenerate_time_constants(self, time_constant):
        with pytest.raises(ValueError):
            EWMAFilter(time_constant)

    def test_filter_starts_at_first_sample(self):
        ewma = EWMAFilter()
        assert ewma.update(0.0, 10.0) == pytest.approx(10.0)

    def test_filter_moves_towards_new_samples(self):
        ewma = EWMAFilter()
        ewma.update(0.0, 0.0)
        value = ewma.update(1.0, 10.0)
        assert 0.0 < value < 10.0

    def test_filter_converges_to_constant_input(self):
        ewma = EWMAFilter()
        for step in range(200):
            value = ewma.update(step * 0.5, 7.0)
        assert value == pytest.approx(7.0)

    def test_out_of_order_samples_rejected(self):
        ewma = EWMAFilter()
        ewma.update(1.0, 1.0)
        with pytest.raises(ReproError):
            ewma.update(0.5, 2.0)

    def test_duplicate_timestamps_rejected(self):
        # A zero interval means alpha = 0 (the sample would be silently
        # discarded); the filter refuses it instead.
        ewma = EWMAFilter()
        ewma.update(1.0, 1.0)
        with pytest.raises(ReproError):
            ewma.update(1.0, 2.0)

    def test_nan_timestamp_rejected(self):
        ewma = EWMAFilter()
        ewma.update(0.0, 1.0)
        with pytest.raises(ReproError):
            ewma.update(float("nan"), 2.0)

    def test_nan_first_timestamp_rejected(self):
        # A NaN *first* timestamp would otherwise poison _last_time and
        # make every later valid update fail the ordering check.
        ewma = EWMAFilter()
        with pytest.raises(ReproError):
            ewma.update(float("nan"), 1.0)
        ewma.update(0.0, 1.0)  # the filter stays usable

    def test_reset(self):
        ewma = EWMAFilter()
        ewma.update(0.0, 5.0)
        ewma.reset()
        assert ewma.value is None

    def test_smooth_series_length_preserved(self):
        times = [0.0, 0.5, 1.0, 1.5]
        values = [0.0, 10.0, 0.0, 10.0]
        smoothed = smooth_series(times, values)
        assert len(smoothed) == 4
        # Smoothing reduces the swing between consecutive points.
        assert abs(smoothed[2] - smoothed[1]) < abs(values[2] - values[1])

    def test_smooth_series_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            smooth_series([0.0], [1.0, 2.0])

    def test_smooth_timeseries_pairs(self):
        smoothed = smooth_timeseries([(0.0, 1.0), (1.0, 3.0)])
        assert smoothed[0] == (0.0, pytest.approx(1.0))
        assert smoothed[1][0] == 1.0
