"""Unit tests for the partitioned-run driver (:mod:`repro.sim.partition`)."""

import math
import multiprocessing
import time

import pytest

from repro.errors import SimulationError
from repro.sim.partition import (
    ERROR_KEY,
    PartitionSupervisionError,
    PartitionTask,
    run_partition_serially,
    run_partitioned,
    window_ends,
)


class TestWindowEnds:
    def test_coalesces_tiny_lookahead_to_max_windows(self):
        ends = window_ends(100.0, 1e-6, max_windows=4)
        assert ends == [25.0, 50.0, 75.0, 100.0]

    def test_large_lookahead_yields_fewer_windows(self):
        ends = window_ends(10.0, 4.0, max_windows=64)
        assert ends == [4.0, 8.0, 10.0]

    def test_last_window_is_exactly_the_horizon(self):
        assert window_ends(7.3, 1.0, max_windows=8)[-1] == 7.3

    def test_watermarks_strictly_increase(self):
        ends = window_ends(123.4, 0.002, max_windows=64)
        assert all(a < b for a, b in zip(ends, ends[1:]))

    def test_empty_horizon_means_no_windows(self):
        assert window_ends(0.0, 1.0) == []

    def test_negative_lookahead_rejected(self):
        with pytest.raises(SimulationError):
            window_ends(10.0, -1.0)

    def test_nonpositive_max_windows_rejected(self):
        with pytest.raises(SimulationError):
            window_ends(10.0, 1.0, max_windows=0)


def emitting_worker(task, sender):
    """Stage a deterministic pattern derived from the task payload."""
    base = float(task.payload)
    for window in range(1, 4):
        for step in range(2):
            sender.stage(base + window + step / 10.0, (task.index, window, step))
        sender.flush(base + window + 0.9)


def failing_worker(task, sender):
    if task.index == 1:
        raise RuntimeError("boom")
    emitting_worker(task, sender)


TASKS = [PartitionTask(index=i, payload=i * 10.0) for i in range(3)]


class TestRunPartitioned:
    def test_serial_run_emits_frames_and_sentinel(self):
        frames = run_partition_serially(emitting_worker, TASKS[0])
        assert [frame.final for frame in frames] == [False, False, False, True]
        assert all(frame.partition == 0 for frame in frames)

    def test_processes_equals_one_merges_deterministically(self):
        result = run_partitioned(emitting_worker, TASKS, processes=1)
        times = [item.time for item in result.items]
        assert times == sorted(times)
        assert len(result.items) == 3 * 3 * 2

    def test_multiprocess_run_is_identical_to_serial(self):
        serial = run_partitioned(emitting_worker, TASKS, processes=1)
        parallel = run_partitioned(emitting_worker, TASKS, processes=2)
        assert parallel.items == serial.items
        assert parallel.summaries == serial.summaries

    def test_worker_summaries_are_collected(self):
        def summarizing(task, sender):
            sender.close(summary={"pod": task.index})

        result = run_partitioned(summarizing, TASKS, processes=1)
        assert result.summaries == {0: {"pod": 0}, 1: {"pod": 1}, 2: {"pod": 2}}
        assert result.summary_total("pod") == 3

    def test_no_tasks_is_an_empty_result(self):
        result = run_partitioned(emitting_worker, [], processes=4)
        assert result.items == [] and result.summaries == {}

    def test_duplicate_indices_rejected(self):
        with pytest.raises(SimulationError):
            run_partitioned(
                emitting_worker,
                [PartitionTask(0, 0.0), PartitionTask(0, 1.0)],
            )

    def test_nonpositive_processes_rejected(self):
        with pytest.raises(SimulationError):
            run_partitioned(emitting_worker, TASKS, processes=0)

    def test_serial_worker_failure_propagates(self):
        with pytest.raises(RuntimeError):
            run_partitioned(failing_worker, TASKS, processes=1)

    def test_multiprocess_worker_failure_is_relayed(self):
        with pytest.raises(SimulationError) as excinfo:
            run_partitioned(failing_worker, TASKS, processes=2)
        message = str(excinfo.value)
        assert "RuntimeError" in message or "sentinel" in message

    def test_error_key_in_summary_raises_even_serially(self):
        def poisoned(task, sender):
            sender.close(summary={ERROR_KEY: "synthetic"})

        with pytest.raises(SimulationError):
            run_partitioned(poisoned, TASKS[:1], processes=1)

    def test_more_processes_than_tasks_is_fine(self):
        result = run_partitioned(emitting_worker, TASKS[:2], processes=8)
        reference = run_partitioned(emitting_worker, TASKS[:2], processes=1)
        assert result.items == reference.items

    def test_sentinel_watermark_is_infinite(self):
        frames = run_partition_serially(emitting_worker, TASKS[0])
        assert math.isinf(frames[-1].window_end)


def hanging_worker(task, sender):
    """Partition 1 never emits a frame; the others finish cleanly."""
    if task.index == 1:
        time.sleep(60.0)
    sender.close(summary={"pod": task.index})


class SpyContext:
    """Wraps the real multiprocessing context, counting Process() calls."""

    def __init__(self):
        self._context = multiprocessing.get_context()
        self.process_count = 0

    def Pipe(self, duplex=False):
        return self._context.Pipe(duplex=duplex)

    def Process(self, *args, **kwargs):
        self.process_count += 1
        return self._context.Process(*args, **kwargs)


class TestProcessClamp:
    def test_spawns_at_most_one_process_per_task(self):
        # Regression: processes > len(tasks) must not spawn idle workers.
        spy = SpyContext()
        result = run_partitioned(
            emitting_worker, TASKS[:2], processes=8, mp_context=spy
        )
        assert spy.process_count == 2
        reference = run_partitioned(emitting_worker, TASKS[:2], processes=1)
        assert result.items == reference.items


class TestSupervision:
    def test_hung_partition_raises_supervision_error(self):
        with pytest.raises(PartitionSupervisionError) as excinfo:
            run_partitioned(
                hanging_worker, TASKS, processes=3, heartbeat_timeout=0.5
            )
        error = excinfo.value
        assert error.partitions == (1,)
        assert "partition(s) 1" in str(error)
        # The healthy partitions' closing summaries rode along.
        assert error.summaries == {0: {"pod": 0}, 2: {"pod": 2}}

    def test_healthy_run_is_unchanged_under_supervision(self):
        supervised = run_partitioned(
            emitting_worker, TASKS, processes=2, heartbeat_timeout=30.0
        )
        reference = run_partitioned(emitting_worker, TASKS, processes=1)
        assert supervised.items == reference.items
        assert supervised.summaries == reference.summaries

    def test_supervision_ignores_the_serial_path(self):
        # processes=1 never blocks on pipes, so the heartbeat is moot —
        # but passing one must not break the serial path.
        result = run_partitioned(
            emitting_worker, TASKS, processes=1, heartbeat_timeout=0.001
        )
        assert len(result.items) == 3 * 3 * 2

    def test_invalid_heartbeat_rejected(self):
        with pytest.raises(SimulationError):
            run_partitioned(
                emitting_worker, TASKS, processes=2, heartbeat_timeout=0.0
            )
