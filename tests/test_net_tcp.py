"""Unit tests for the simplified TCP model."""

import pytest

from repro.errors import TCPError
from repro.net.addressing import IPv6Address
from repro.net.packet import FlowKey, TCPFlag
from repro.net.tcp import (
    ConnectionState,
    EphemeralPortAllocator,
    TCPConnection,
    classify_segment,
)


def _flow_key() -> FlowKey:
    return FlowKey(
        IPv6Address.parse("fd00:200::1"), 20_000, IPv6Address.parse("fd00:300::1"), 80
    )


class TestTCPConnection:
    def test_client_handshake_transitions(self):
        connection = TCPConnection(flow_key=_flow_key())
        connection.transition(ConnectionState.SYN_SENT, at=1.0)
        connection.transition(ConnectionState.ESTABLISHED, at=2.0)
        connection.transition(ConnectionState.CLOSED, at=3.0)
        assert connection.opened_at == 1.0
        assert connection.established_at == 2.0
        assert connection.closed_at == 3.0

    def test_server_handshake_transitions(self):
        connection = TCPConnection(flow_key=_flow_key())
        connection.transition(ConnectionState.SYN_RECEIVED)
        connection.transition(ConnectionState.ESTABLISHED)
        connection.transition(ConnectionState.FIN_WAIT)
        connection.transition(ConnectionState.CLOSED)
        assert connection.state is ConnectionState.CLOSED

    def test_reset_path(self):
        connection = TCPConnection(flow_key=_flow_key())
        connection.transition(ConnectionState.SYN_SENT)
        connection.transition(ConnectionState.RESET, at=5.0)
        assert connection.was_reset
        assert not connection.is_open
        assert connection.closed_at == 5.0

    def test_illegal_transition_raises(self):
        connection = TCPConnection(flow_key=_flow_key())
        with pytest.raises(TCPError):
            connection.transition(ConnectionState.ESTABLISHED)

    def test_reset_is_terminal(self):
        connection = TCPConnection(flow_key=_flow_key())
        connection.transition(ConnectionState.SYN_SENT)
        connection.transition(ConnectionState.RESET)
        with pytest.raises(TCPError):
            connection.transition(ConnectionState.CLOSED)

    def test_is_open_during_handshake(self):
        connection = TCPConnection(flow_key=_flow_key())
        assert not connection.is_open
        connection.transition(ConnectionState.SYN_SENT)
        assert connection.is_open


class TestEphemeralPortAllocator:
    def test_sequential_ports(self):
        allocator = EphemeralPortAllocator(base=10_000, count=100)
        assert allocator.allocate() == 10_000
        assert allocator.allocate() == 10_001

    def test_wraps_around(self):
        allocator = EphemeralPortAllocator(base=10_000, count=3)
        ports = [allocator.allocate() for _ in range(5)]
        assert ports == [10_000, 10_001, 10_002, 10_000, 10_001]

    def test_invalid_base_rejected(self):
        with pytest.raises(TCPError):
            EphemeralPortAllocator(base=0)

    def test_range_exceeding_port_space_rejected(self):
        with pytest.raises(TCPError):
            EphemeralPortAllocator(base=60_000, count=10_000)


class TestClassifySegment:
    def test_syn(self):
        assert classify_segment(TCPFlag.SYN) == "syn"

    def test_syn_ack(self):
        assert classify_segment(TCPFlag.SYN | TCPFlag.ACK) == "syn-ack"

    def test_rst_wins_over_everything(self):
        assert classify_segment(TCPFlag.RST | TCPFlag.ACK) == "rst"

    def test_data(self):
        assert classify_segment(TCPFlag.PSH | TCPFlag.ACK) == "data"

    def test_bare_ack(self):
        assert classify_segment(TCPFlag.ACK) == "ack"

    def test_fin(self):
        assert classify_segment(TCPFlag.FIN | TCPFlag.ACK) == "fin"

    def test_none(self):
        assert classify_segment(TCPFlag.NONE) == "other"
