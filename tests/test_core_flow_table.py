"""Unit tests for the load balancer's flow table."""

import pytest

from repro.core.flow_table import FlowTable
from repro.errors import FlowTableError
from repro.net.addressing import IPv6Address
from repro.net.packet import FlowKey


def _flow(port):
    return FlowKey(
        IPv6Address.parse("fd00:200::1"), port, IPv6Address.parse("fd00:300::1"), 80
    )


def _server(index):
    return IPv6Address.parse(f"fd00:100::{index:x}")


class TestLearningAndSteering:
    def test_learn_then_steer(self):
        table = FlowTable()
        table.learn(_flow(1), _server(1), now=0.0)
        assert table.steer(_flow(1), now=1.0) == _server(1)
        assert table.stats.lookup_hits == 1

    def test_steer_unknown_flow_returns_none(self):
        table = FlowTable()
        assert table.steer(_flow(1), now=0.0) is None
        assert table.stats.lookup_misses == 1

    def test_relearning_updates_server(self):
        table = FlowTable()
        table.learn(_flow(1), _server(1), now=0.0)
        table.learn(_flow(1), _server(2), now=1.0)
        assert table.steer(_flow(1), now=2.0) == _server(2)
        assert table.stats.entries_created == 1

    def test_remove(self):
        table = FlowTable()
        table.learn(_flow(1), _server(1), now=0.0)
        assert table.remove(_flow(1)) is True
        assert table.remove(_flow(1)) is False
        assert table.steer(_flow(1), now=1.0) is None

    def test_packets_steered_counter(self):
        table = FlowTable()
        table.learn(_flow(1), _server(1), now=0.0)
        for step in range(3):
            table.steer(_flow(1), now=float(step))
        assert table.peek(_flow(1)).packets_steered == 3

    def test_contains_and_len(self):
        table = FlowTable()
        table.learn(_flow(1), _server(1), now=0.0)
        assert _flow(1) in table
        assert len(table) == 1


class TestExpiry:
    def test_idle_entries_expire(self):
        table = FlowTable(idle_timeout=10.0)
        table.learn(_flow(1), _server(1), now=0.0)
        table.learn(_flow(2), _server(2), now=8.0)
        expired = table.expire_idle(now=15.0)
        assert expired == 1
        assert _flow(1) not in table
        assert _flow(2) in table

    def test_steering_refreshes_idle_timer(self):
        table = FlowTable(idle_timeout=10.0)
        table.learn(_flow(1), _server(1), now=0.0)
        table.steer(_flow(1), now=9.0)
        assert table.expire_idle(now=15.0) == 0

    def test_invalid_timeout_rejected(self):
        with pytest.raises(FlowTableError):
            FlowTable(idle_timeout=0.0)


class TestCapacity:
    def test_lru_eviction_when_full(self):
        table = FlowTable(capacity=2)
        table.learn(_flow(1), _server(1), now=0.0)
        table.learn(_flow(2), _server(2), now=1.0)
        table.steer(_flow(1), now=2.0)  # flow 2 is now the least recently used
        table.learn(_flow(3), _server(3), now=3.0)
        assert _flow(2) not in table
        assert _flow(1) in table
        assert table.stats.entries_evicted == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(FlowTableError):
            FlowTable(capacity=0)


class TestDistribution:
    def test_server_distribution(self):
        table = FlowTable()
        table.learn(_flow(1), _server(1), now=0.0)
        table.learn(_flow(2), _server(1), now=0.0)
        table.learn(_flow(3), _server(2), now=0.0)
        distribution = table.server_distribution()
        assert distribution[_server(1)] == 2
        assert distribution[_server(2)] == 1

    def test_entries_snapshot(self):
        table = FlowTable()
        table.learn(_flow(1), _server(1), now=0.0)
        entries = table.entries()
        assert len(entries) == 1
        assert entries[0].server == _server(1)
