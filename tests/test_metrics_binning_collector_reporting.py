"""Unit tests for time binning, the response-time collector and reporting."""

import math

import pytest

from repro.errors import ReproError
from repro.metrics.binning import TimeBinner
from repro.metrics.collector import ResponseTimeCollector, ServerLoadSampler
from repro.metrics.reporting import format_comparison, format_series, format_table
from repro.workload.client import RequestOutcome


def _outcome(request_id, sent_at, response_time, kind="wiki", failed=False):
    return RequestOutcome(
        request_id=request_id,
        kind=kind,
        url="/wiki/index.php?title=X",
        sent_at=sent_at,
        established_at=sent_at + 0.001,
        completed_at=None if failed else sent_at + response_time,
        failed=failed,
        failure_reason="connection reset" if failed else None,
    )


class TestTimeBinner:
    def test_samples_land_in_the_right_bins(self):
        binner = TimeBinner(bin_width=10.0)
        binner.add(5.0, 1.0)
        binner.add(15.0, 2.0)
        binner.add(16.0, 3.0)
        bins = binner.bins()
        assert bins[0].count == 1
        assert bins[1].count == 2
        assert bins[1].median == pytest.approx(2.5)

    def test_empty_bins_are_materialised(self):
        binner = TimeBinner(bin_width=10.0)
        binner.add(35.0, 1.0)
        bins = binner.bins()
        assert len(bins) == 4
        assert bins[0].count == 0
        assert math.isnan(bins[0].median)

    def test_through_extends_the_range(self):
        binner = TimeBinner(bin_width=10.0)
        binner.add(5.0, 1.0)
        assert len(binner.bins(through=45.0)) == 5

    def test_constructor_through_binds_a_default_horizon(self):
        binner = TimeBinner(bin_width=10.0, through=45.0)
        binner.add(5.0, 1.0)
        assert len(binner.bins()) == 5
        assert len(binner.median_series()) == 5
        # An explicit call-site horizon still overrides the bound one.
        assert len(binner.bins(through=95.0)) == 10

    def test_constructor_through_alone_materialises_empty_bins(self):
        binner = TimeBinner(bin_width=10.0, through=25.0)
        assert [bin_.count for bin_ in binner.bins()] == [0, 0, 0]

    def test_rate_series(self):
        binner = TimeBinner(bin_width=10.0)
        for timestamp in (1.0, 2.0, 3.0, 4.0, 5.0):
            binner.add(timestamp, 0.1)
        (center, rate), = binner.rate_series()
        assert center == pytest.approx(5.0)
        assert rate == pytest.approx(0.5)

    def test_decile_series_shape(self):
        binner = TimeBinner(bin_width=10.0)
        for index in range(100):
            binner.add(5.0, index / 100.0)
        (center, decile_values), = binner.decile_series()
        assert len(decile_values) == 9
        assert decile_values == sorted(decile_values)

    def test_add_many_and_all_values(self):
        binner = TimeBinner(bin_width=10.0)
        binner.add_many([(1.0, 0.5), (12.0, 0.7)])
        assert sorted(binner.all_values()) == [0.5, 0.7]

    def test_sample_before_origin_rejected(self):
        binner = TimeBinner(bin_width=10.0, start=100.0)
        with pytest.raises(ReproError):
            binner.add(50.0, 1.0)

    def test_invalid_bin_width_rejected(self):
        with pytest.raises(ReproError):
            TimeBinner(bin_width=0.0)


class TestResponseTimeCollector:
    def test_records_success_and_failure_separately(self):
        collector = ResponseTimeCollector()
        collector.record(_outcome(1, 0.0, 0.2))
        collector.record(_outcome(2, 1.0, 0.3, failed=True))
        assert collector.totals.completed == 1
        assert collector.totals.failed == 1
        assert collector.totals.failure_ratio == pytest.approx(0.5)
        assert len(collector) == 2

    def test_response_times_and_summary(self):
        collector = ResponseTimeCollector()
        for index in range(10):
            collector.record(_outcome(index, float(index), 0.1 * (index + 1)))
        times = collector.response_times()
        assert len(times) == 10
        assert collector.summary().mean == pytest.approx(0.55)
        assert collector.mean_response_time() == pytest.approx(0.55)

    def test_kind_filtering(self):
        collector = ResponseTimeCollector()
        collector.record(_outcome(1, 0.0, 0.2, kind="wiki"))
        collector.record(_outcome(2, 0.0, 0.001, kind="static"))
        assert len(collector.response_times(kind="wiki")) == 1
        assert len(collector.outcomes(kind="static")) == 1
        assert collector.summary(kind="static").mean == pytest.approx(0.001)

    def test_summary_of_empty_collector_rejected(self):
        with pytest.raises(ReproError):
            ResponseTimeCollector().summary()

    def test_cdf(self):
        collector = ResponseTimeCollector()
        for index in range(4):
            collector.record(_outcome(index, 0.0, 0.1 * (index + 1)))
        x, p = collector.cdf()
        assert len(x) == 4
        assert p[-1] == pytest.approx(1.0)

    def test_binned_uses_arrival_time(self):
        collector = ResponseTimeCollector()
        collector.record(_outcome(1, 5.0, 0.2))
        collector.record(_outcome(2, 615.0, 0.4))
        binner = collector.binned(bin_width=600.0)
        bins = binner.bins()
        assert bins[0].count == 1
        assert bins[1].count == 1

    def test_failures_listing(self):
        collector = ResponseTimeCollector()
        collector.record(_outcome(1, 0.0, 0.2, failed=True))
        assert len(collector.failures()) == 1
        assert collector.failures(kind="wiki")[0].request_id == 1

    def test_binned_through_materialises_trailing_empty_bins(self):
        """Regression: ``binned(through=...)`` used to drop its argument,
        so direct callers silently lost the trailing empty bins the
        Wikipedia figures rely on for run-to-run alignment."""
        collector = ResponseTimeCollector()
        collector.record(_outcome(1, 5.0, 0.2))
        binner = collector.binned(bin_width=600.0, through=2_400.0)
        assert len(binner.bins()) == 5
        assert [bin_.count for bin_ in binner.bins()] == [1, 0, 0, 0, 0]
        assert len(binner.median_series()) == 5


class TestServerLoadSampler:
    def test_mean_and_fairness_series(self):
        sampler = ServerLoadSampler(interval=0.5)
        sampler.sample(0.0, [4, 4, 4, 4])
        sampler.sample(0.5, [8, 0, 0, 0])
        mean_series = sampler.mean_load_series()
        fairness_series = sampler.fairness_series()
        assert mean_series[0][1] == pytest.approx(4.0)
        assert mean_series[1][1] == pytest.approx(2.0)
        assert fairness_series[0][1] == pytest.approx(1.0)
        assert fairness_series[1][1] == pytest.approx(0.25)
        assert len(sampler) == 2

    def test_inconsistent_server_count_rejected(self):
        sampler = ServerLoadSampler()
        sampler.sample(0.0, [1, 2, 3])
        with pytest.raises(ReproError):
            sampler.sample(1.0, [1, 2])

    def test_invalid_interval_rejected(self):
        with pytest.raises(ReproError):
            ServerLoadSampler(interval=0.0)


class TestReporting:
    def test_format_table_alignment_and_title(self):
        text = format_table(
            ["policy", "mean"],
            [["RR", 1.234567], ["SR4", 0.5]],
            title="Figure 2",
        )
        lines = text.splitlines()
        assert lines[0] == "Figure 2"
        assert "policy" in lines[1]
        assert "1.235" in text
        assert "SR4" in text

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_table_rejects_empty_headers(self):
        with pytest.raises(ReproError):
            format_table([], [])

    def test_format_series(self):
        text = format_series(
            "rho", {"RR": [1.0, 2.0], "SR4": [0.5, 1.0]}, x_values=[0.5, 0.9]
        )
        assert "rho" in text
        assert "RR" in text and "SR4" in text

    def test_format_comparison_shows_improvement_factor(self):
        text = format_comparison("mean (s)", "RR", 1.0, {"SR4": 0.5})
        assert "2.00x" in text

    def test_format_comparison_handles_zero(self):
        text = format_comparison("mean (s)", "RR", 1.0, {"broken": 0.0})
        assert "n/a" in text
