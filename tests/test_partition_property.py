"""Property tests for the partition frame protocol (ISSUE satellite).

The claim under test: the merged event order produced by
:func:`repro.net.channel.merge_frames` is a pure function of what each
partition *emitted* — any interleaving of frames across partitions (the
part OS scheduling controls) yields exactly the single-process order, as
long as each partition's own frames arrive in emission order (which the
FIFO pipes guarantee).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.channel import BatchFrame, merge_frames


@st.composite
def partition_emissions(draw):
    """Per-partition sorted item times, split into watermarked frames.

    Returns ``{partition: [BatchFrame, ...]}`` with non-decreasing
    watermarks and every item time above the preceding watermark —
    i.e. exactly what a conforming sender may emit.
    """
    num_partitions = draw(st.integers(min_value=1, max_value=4))
    frames_by_partition = {}
    for partition in range(num_partitions):
        times = sorted(
            draw(
                st.lists(
                    st.floats(
                        min_value=0.0,
                        max_value=100.0,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                    min_size=0,
                    max_size=12,
                )
            )
        )
        num_frames = draw(st.integers(min_value=1, max_value=4))
        # Random split points partition the sorted times into frames.
        splits = sorted(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=len(times)),
                    min_size=num_frames - 1,
                    max_size=num_frames - 1,
                )
            )
        )
        bounds = [0, *splits, len(times)]
        frames = []
        watermark = -math.inf
        for start, end in zip(bounds, bounds[1:]):
            chunk = times[start:end]
            # A conforming watermark: at or above every item in the
            # frame, and never below the previous watermark.
            watermark = max(watermark, *(chunk or [watermark]))
            frames.append(
                BatchFrame(
                    partition,
                    watermark,
                    tuple((t, (partition, start + i)) for i, t in enumerate(chunk)),
                )
            )
        frames.append(BatchFrame(partition, math.inf, ()))
        frames_by_partition[partition] = frames
    return frames_by_partition


@st.composite
def interleavings(draw):
    """An emission set plus one arbitrary cross-partition interleaving."""
    by_partition = draw(partition_emissions())
    queues = {p: list(frames) for p, frames in by_partition.items()}
    order = []
    while any(queues.values()):
        candidates = sorted(p for p, q in queues.items() if q)
        pick = draw(st.sampled_from(candidates))
        order.append(queues[pick].pop(0))
    return by_partition, order


@given(data=interleavings())
@settings(max_examples=200, deadline=None)
def test_any_frame_interleaving_merges_to_the_single_process_order(data):
    by_partition, shuffled = data
    # The single-process reference: every partition's frames in
    # emission order, partitions concatenated.
    reference_frames = [
        frame for p in sorted(by_partition) for frame in by_partition[p]
    ]
    reference = merge_frames(reference_frames)
    merged = merge_frames(shuffled)
    assert merged == reference


@given(data=interleavings())
@settings(max_examples=100, deadline=None)
def test_merged_order_is_sorted_and_stable_within_partitions(data):
    _, shuffled = data
    merged = merge_frames(shuffled)
    keys = [(item.time, item.partition, item.seq) for item in merged]
    assert keys == sorted(keys)
    # Within one partition the emission order (seq) is preserved.
    for partition in {item.partition for item in merged}:
        seqs = [item.seq for item in merged if item.partition == partition]
        assert seqs == sorted(seqs)
