"""Shared pytest fixtures for the SRLB reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import TestbedConfig
from repro.net.addressing import IPv6Address
from repro.sim.engine import Simulator


@pytest.fixture
def simulator() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator for workload/test draws."""
    return np.random.default_rng(1234)


@pytest.fixture
def addresses():
    """A handful of distinct IPv6 addresses for building packets."""
    return {
        "client": IPv6Address.parse("fd00:200::1"),
        "lb": IPv6Address.parse("fd00:400::1"),
        "vip": IPv6Address.parse("fd00:300::1"),
        "server1": IPv6Address.parse("fd00:100::1"),
        "server2": IPv6Address.parse("fd00:100::2"),
        "server3": IPv6Address.parse("fd00:100::3"),
    }


@pytest.fixture
def small_testbed_config() -> TestbedConfig:
    """A reduced testbed (4 servers, 8 workers) for fast integration tests."""
    return TestbedConfig(
        num_servers=4,
        workers_per_server=8,
        cores_per_server=2,
        backlog_capacity=16,
        seed=7,
    )


@pytest.fixture
def paper_testbed_config() -> TestbedConfig:
    """The paper's testbed dimensions (12 servers, 32 workers, 2 cores)."""
    return TestbedConfig()
