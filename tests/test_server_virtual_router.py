"""Unit tests for the server-side virtual router (ServerNode)."""

import pytest

from repro.core.policies import NeverAcceptPolicy, StaticThresholdPolicy
from repro.errors import ServerError
from repro.net.addressing import IPv6Address
from repro.net.fabric import LANFabric
from repro.net.packet import Packet, TCPFlag, TCPSegment, make_syn
from repro.net.router import NetworkNode
from repro.net.srh import SegmentRoutingHeader
from repro.server.cpu import ProcessorSharingCPU
from repro.server.http_server import HTTPServerInstance
from repro.server.virtual_router import ServerNode


def _addr(text):
    return IPv6Address.parse(text)


CLIENT = _addr("fd00:200::1")
VIP = _addr("fd00:300::1")
LB_ADDRESS = _addr("fd00:400::1")
SERVER1 = _addr("fd00:100::1")
SERVER2 = _addr("fd00:100::2")


class StubNode(NetworkNode):
    def __init__(self, simulator, name, address):
        super().__init__(simulator, name)
        self.add_address(address)
        self.received = []

    def handle_packet(self, packet):
        self.received.append(packet)


def _make_server_node(simulator, fabric, address, policy, demand=0.05, workers=4):
    cpu = ProcessorSharingCPU(simulator, num_cores=2)
    app = HTTPServerInstance(
        simulator,
        name=f"apache-{address}",
        cpu=cpu,
        num_workers=workers,
        backlog_capacity=8,
        demand_lookup=lambda request_id: demand,
    )
    node = ServerNode(
        simulator,
        name=f"server-{address}",
        address=address,
        app=app,
        policy=policy,
        load_balancer_address=LB_ADDRESS,
    )
    node.bind_vip(VIP)
    node.attach(fabric)
    return node


@pytest.fixture
def router_setup(simulator):
    fabric = LANFabric(simulator, latency=1e-6)
    lb_stub = StubNode(simulator, "lb", LB_ADDRESS)
    client_stub = StubNode(simulator, "client", CLIENT)
    lb_stub.attach(fabric)
    client_stub.attach(fabric)
    return fabric, lb_stub, client_stub


def _hunting_syn(first, second, port=20_000, request_id=1):
    packet = make_syn(CLIENT, VIP, port, 80, request_id=request_id)
    packet.attach_srh(SegmentRoutingHeader.from_traversal([first, second, VIP]))
    return packet


class TestServiceHuntingDataPath:
    def test_accepting_server_answers_with_steering_syn_ack(self, simulator, router_setup):
        fabric, lb_stub, client_stub = router_setup
        node = _make_server_node(simulator, fabric, SERVER1, StaticThresholdPolicy(4))
        node.receive(_hunting_syn(SERVER1, SERVER2))
        simulator.run()
        # The SYN-ACK goes through the load balancer with the steering SRH.
        assert len(lb_stub.received) == 1
        syn_ack = lb_stub.received[0]
        assert syn_ack.tcp.has(TCPFlag.SYN) and syn_ack.tcp.has(TCPFlag.ACK)
        assert syn_ack.src == VIP
        assert list(syn_ack.srh.traversal_order()) == [SERVER1, LB_ADDRESS, CLIENT]
        assert syn_ack.srh.active_segment == LB_ADDRESS
        assert node.hunting.stats.accepted_by_choice == 1

    def test_refusing_server_forwards_to_second_candidate(self, simulator, router_setup):
        fabric, lb_stub, client_stub = router_setup
        refusing = _make_server_node(simulator, fabric, SERVER1, NeverAcceptPolicy())
        accepting = _make_server_node(simulator, fabric, SERVER2, StaticThresholdPolicy(4))
        refusing.receive(_hunting_syn(SERVER1, SERVER2))
        simulator.run()
        # The second server accepted (forced) and answered through the LB.
        assert refusing.hunting.stats.refused == 1
        assert accepting.hunting.stats.accepted_forced == 1
        assert len(lb_stub.received) == 1
        assert list(lb_stub.received[0].srh.traversal_order())[0] == SERVER2

    def test_request_data_is_served_and_response_goes_to_client(self, simulator, router_setup):
        fabric, lb_stub, client_stub = router_setup
        node = _make_server_node(simulator, fabric, SERVER1, StaticThresholdPolicy(4))
        node.receive(_hunting_syn(SERVER1, SERVER2, request_id=42))
        # Steered request data (as the LB would deliver it mid-flow).
        data = Packet(
            src=CLIENT,
            dst=SERVER1,
            tcp=TCPSegment(
                src_port=20_000,
                dst_port=80,
                flags=TCPFlag.PSH | TCPFlag.ACK,
                payload_size=200,
                request_id=42,
            ),
            srh=SegmentRoutingHeader(segments=[VIP, SERVER1], segments_left=1),
        )
        node.receive(data)
        simulator.run()
        responses = [packet for packet in client_stub.received if packet.tcp.payload_size > 0]
        assert len(responses) == 1
        assert responses[0].src == VIP
        assert responses[0].tcp.request_id == 42
        assert node.app.stats.requests_served == 1

    def test_backlog_overflow_sends_rst_directly_to_client(self, simulator, router_setup):
        fabric, lb_stub, client_stub = router_setup
        node = _make_server_node(
            simulator, fabric, SERVER1, StaticThresholdPolicy(100), workers=1, demand=10.0
        )
        node.app.backlog.capacity = 1
        # First SYN takes the worker, second fills the backlog, third overflows.
        for port in (20_000, 20_001, 20_002):
            node.receive(_hunting_syn(SERVER1, SERVER2, port=port, request_id=port))
        simulator.run(until=0.1)
        resets = [packet for packet in client_stub.received if packet.tcp.has(TCPFlag.RST)]
        assert len(resets) == 1
        assert resets[0].dst == CLIENT

    def test_rst_from_client_is_ignored(self, simulator, router_setup):
        fabric, lb_stub, client_stub = router_setup
        node = _make_server_node(simulator, fabric, SERVER1, StaticThresholdPolicy(4))
        rst = Packet(
            src=CLIENT,
            dst=SERVER1,
            tcp=TCPSegment(src_port=20_000, dst_port=80, flags=TCPFlag.RST),
        )
        node.receive(rst)
        simulator.run()
        assert node.app.stats.connections_received == 0

    def test_packet_for_unknown_destination_raises(self, simulator, router_setup):
        fabric, lb_stub, client_stub = router_setup
        node = _make_server_node(simulator, fabric, SERVER1, StaticThresholdPolicy(4))
        stray = make_syn(CLIENT, _addr("fd00:100::77"), 20_000, 80)
        with pytest.raises(ServerError):
            node.receive(stray)

    def test_busy_threads_reflects_application(self, simulator, router_setup):
        fabric, lb_stub, client_stub = router_setup
        node = _make_server_node(
            simulator, fabric, SERVER1, StaticThresholdPolicy(4), demand=5.0
        )
        node.receive(_hunting_syn(SERVER1, SERVER2, request_id=1))
        data = Packet(
            src=CLIENT,
            dst=SERVER1,
            tcp=TCPSegment(
                src_port=20_000, dst_port=80, flags=TCPFlag.PSH | TCPFlag.ACK,
                payload_size=100, request_id=1,
            ),
            srh=SegmentRoutingHeader(segments=[VIP, SERVER1], segments_left=1),
        )
        node.receive(data)
        simulator.run(until=0.5)
        assert node.busy_threads == 1

    def test_bound_vips(self, simulator, router_setup):
        fabric, lb_stub, client_stub = router_setup
        node = _make_server_node(simulator, fabric, SERVER1, StaticThresholdPolicy(4))
        assert node.bound_vips == {VIP}
