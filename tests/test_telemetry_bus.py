"""Unit tests for the telemetry bus: rings, series, payload merge/JSON."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry.anomaly import AnomalyEvent
from repro.telemetry.bus import (
    DEFAULT_CAPACITY,
    RingBuffer,
    TelemetryBus,
    TelemetryPayload,
    TelemetrySeries,
)


class TestRingBuffer:
    def test_append_and_export_in_order(self):
        ring = RingBuffer(8)
        for step in range(5):
            ring.append(float(step), float(step * 10))
        times, values = ring.export()
        assert times.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert values.tolist() == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert len(ring) == 5

    def test_wraparound_keeps_newest_in_chronological_order(self):
        ring = RingBuffer(4)
        for step in range(10):
            ring.append(float(step), float(step))
        times, values = ring.export()
        assert times.tolist() == [6.0, 7.0, 8.0, 9.0]
        assert values.tolist() == [6.0, 7.0, 8.0, 9.0]
        assert len(ring) == 4

    def test_latest(self):
        ring = RingBuffer(3)
        ring.append(0.0, 1.0)
        ring.append(1.0, 2.5)
        assert ring.latest == 2.5

    def test_empty_latest_is_loud(self):
        with pytest.raises(TelemetryError):
            RingBuffer(3).latest

    def test_invalid_capacity_is_loud(self):
        with pytest.raises(TelemetryError):
            RingBuffer(0)


class TestTelemetryBus:
    def test_series_created_lazily_in_insertion_order(self):
        bus = TelemetryBus(capacity=16)
        bus.record("b.second", 0.0, 1.0)
        bus.record("a.first", 0.0, 2.0, kind="counter", tier="edge")
        assert bus.names() == ["b.second", "a.first"]
        assert "a.first" in bus and "missing" not in bus
        assert bus.series("a.first").kind == "counter"
        assert bus.series("a.first").tier == "edge"

    def test_kind_conflict_is_loud(self):
        bus = TelemetryBus(capacity=16)
        bus.counter("x")
        with pytest.raises(TelemetryError):
            bus.gauge("x")

    def test_unknown_series_is_loud(self):
        with pytest.raises(TelemetryError):
            TelemetryBus().series("nope")

    def test_invalid_series_kind_is_loud(self):
        with pytest.raises(TelemetryError):
            TelemetrySeries("x", "histogram", "", 8)

    def test_default_capacity(self):
        assert TelemetryBus().capacity == DEFAULT_CAPACITY

    def test_export_payload_is_picklable(self):
        bus = TelemetryBus(capacity=8)
        bus.record("s", 1.0, 2.0)
        payload = bus.export_payload(meta={"run": "t"})
        clone = pickle.loads(pickle.dumps(payload))
        times, values = clone.series("s")
        assert times.tolist() == [1.0] and values.tolist() == [2.0]
        assert clone.meta["run"] == "t"


def _payload(name="s", times=(0.0, 1.0), values=(1.0, 2.0), kind="gauge",
             capacity=8, anomalies=()):
    return TelemetryPayload(
        capacity=capacity,
        names=(name,),
        kinds=(kind,),
        tiers=("",),
        times=(np.asarray(times, dtype=np.float64),),
        values=(np.asarray(values, dtype=np.float64),),
        anomalies=tuple(anomalies),
    )


class TestPayloadMerge:
    def test_merge_zero_payloads_is_loud(self):
        with pytest.raises(TelemetryError):
            TelemetryPayload.merge([])

    def test_merge_single_payload_is_identity(self):
        payload = _payload()
        assert TelemetryPayload.merge([payload]) is payload

    def test_merge_concatenates_and_sorts_by_time(self):
        merged = TelemetryPayload.merge(
            [_payload(times=(0.0, 2.0), values=(1.0, 3.0)),
             _payload(times=(1.0, 3.0), values=(2.0, 4.0))]
        )
        times, values = merged.series("s")
        assert times.tolist() == [0.0, 1.0, 2.0, 3.0]
        assert values.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_merge_tie_keeps_payload_order(self):
        merged = TelemetryPayload.merge(
            [_payload(times=(1.0,), values=(10.0,)),
             _payload(times=(1.0,), values=(20.0,))]
        )
        _, values = merged.series("s")
        assert values.tolist() == [10.0, 20.0]

    def test_merge_unites_names_in_first_seen_order(self):
        merged = TelemetryPayload.merge(
            [_payload(name="a"), _payload(name="b"), _payload(name="a")]
        )
        assert merged.names == ("a", "b")

    def test_merge_truncates_to_newest_capacity(self):
        merged = TelemetryPayload.merge(
            [_payload(times=(0.0, 1.0, 2.0), values=(0.0, 1.0, 2.0), capacity=4),
             _payload(times=(3.0, 4.0, 5.0), values=(3.0, 4.0, 5.0), capacity=4)]
        )
        times, _ = merged.series("s")
        assert times.tolist() == [2.0, 3.0, 4.0, 5.0]

    def test_merge_kind_mismatch_is_loud(self):
        with pytest.raises(TelemetryError):
            TelemetryPayload.merge(
                [_payload(kind="gauge"), _payload(kind="counter")]
            )

    def test_merge_sorts_anomalies_and_records_provenance(self):
        late = AnomalyEvent(2.0, "s", "spike", 9.0, 1.0, 8.0, 4.0)
        early = AnomalyEvent(1.0, "s", "drop", 0.0, 1.0, -1.0, 0.5)
        merged = TelemetryPayload.merge(
            [_payload(anomalies=(late,)), _payload(anomalies=(early,))]
        )
        assert merged.anomalies == (early, late)
        assert merged.meta["merged_from"] == 2


class TestPayloadJson:
    def test_round_trip(self):
        event = AnomalyEvent(1.5, "s", "spike", 9.0, 1.0, 8.0, 4.0)
        payload = _payload(anomalies=(event,))
        payload.meta["run"] = "cell"
        clone = TelemetryPayload.from_json_dict(payload.to_json_dict())
        assert clone.names == payload.names
        assert clone.kinds == payload.kinds
        np.testing.assert_array_equal(clone.times[0], payload.times[0])
        np.testing.assert_array_equal(clone.values[0], payload.values[0])
        assert clone.anomalies == payload.anomalies
        assert clone.meta == payload.meta

    def test_malformed_json_is_loud(self):
        with pytest.raises(TelemetryError):
            TelemetryPayload.from_json_dict({"not": "a payload"})

    def test_kind_of(self):
        payload = _payload(kind="counter")
        assert payload.kind_of("s") == "counter"
        with pytest.raises(TelemetryError):
            payload.kind_of("missing")
