"""Tests for the partitioned ``scale`` scenario family."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import registry
from repro.experiments.config import ScaleConfig, TestbedConfig
from repro.experiments.scale_experiment import (
    SCALE_SCENARIO,
    frontend_port_of,
    make_pod_trace,
    make_scale_stream,
    pod_of_port,
    run_scale,
    run_scale_scenario,
)
from repro.net.tcp import EPHEMERAL_PORT_BASE


@pytest.fixture(scope="module")
def small_config():
    """A config small enough to replay in well under a second per pod."""
    return ScaleConfig(
        testbed=TestbedConfig(
            num_servers=4, workers_per_server=8, backlog_capacity=16
        ),
        pods=4,
        num_queries=600,
        max_windows=8,
    )


@pytest.fixture(scope="module")
def reference_run(small_config):
    return run_scale(small_config, partitions=1)


class TestScaleConfig:
    def test_defaults_are_million_scale(self):
        config = ScaleConfig()
        assert config.num_queries == 1_000_000
        assert config.pods == 4

    def test_pod_names_are_stable(self):
        assert ScaleConfig(pods=2).pod_names() == ("pod-0", "pod-1")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pods": 0},
            {"num_queries": 2, "pods": 4},
            {"load_factor": 0.0},
            {"service_mean": -1.0},
            {"ecmp_hash": "crc32"},
            {"boundary_latency": -1e-6},
            {"max_windows": 0},
            {"saturation_rate": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            ScaleConfig(**kwargs)


class TestFrontendSharding:
    def test_ports_cycle_over_the_ephemeral_range(self):
        assert frontend_port_of(0) == EPHEMERAL_PORT_BASE
        assert frontend_port_of(1) == EPHEMERAL_PORT_BASE + 1

    def test_stream_is_a_pure_function_of_the_config(self, small_config):
        first = make_scale_stream(small_config)
        second = make_scale_stream(small_config)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_pod_assignment_matches_the_scalar_hash(self, small_config):
        _, _, pods = make_scale_stream(small_config)
        for index in range(0, 50, 7):
            assert pods[index] == pod_of_port(
                small_config, frontend_port_of(index)
            )

    def test_pod_traces_partition_the_aggregate_stream(self, small_config):
        seen = {}
        horizons = set()
        for pod in range(small_config.pods):
            trace, horizon = make_pod_trace(small_config, pod)
            horizons.add(horizon)
            for request in trace:
                assert request.request_id not in seen
                seen[request.request_id] = pod
        assert len(seen) == small_config.num_queries
        # Every partition must run the same synchronization windows.
        assert len(horizons) == 1

    def test_out_of_range_pod_rejected(self, small_config):
        with pytest.raises(ExperimentError):
            make_pod_trace(small_config, small_config.pods)


class TestRunScale:
    def test_every_query_gets_an_outcome(self, small_config, reference_run):
        assert reference_run.completed + reference_run.failed == (
            small_config.num_queries
        )
        assert reference_run.times.size == small_config.num_queries

    def test_outcomes_arrive_in_merge_order(self, reference_run):
        assert np.all(np.diff(reference_run.times) >= 0)

    def test_partitions_do_not_change_the_fingerprint(
        self, small_config, reference_run
    ):
        partitioned = run_scale(small_config, partitions=2)
        assert partitioned.fingerprint() == reference_run.fingerprint()
        assert partitioned.pod_summaries.keys() == (
            reference_run.pod_summaries.keys()
        )

    def test_summaries_cover_every_pod(self, small_config, reference_run):
        assert sorted(reference_run.pod_summaries) == list(
            range(small_config.pods)
        )
        assert reference_run.events_executed > 0
        assert reference_run.busy_seconds > 0

    def test_nonpositive_partitions_rejected(self, small_config):
        with pytest.raises(ExperimentError):
            run_scale(small_config, partitions=0)


class TestScenarioIntegration:
    def test_registered_in_the_registry(self):
        assert registry.get("scale") is SCALE_SCENARIO
        assert "scale" in registry.names()

    def test_scenario_front_renders_with_fingerprint(self, small_config):
        result = run_scale_scenario(small_config, partitions=1, jobs=1)
        text = SCALE_SCENARIO.render(result)
        assert "fingerprint" in text
        assert "aggregate events/sec" in text

    def test_smoke_config_is_small(self):
        smoke = SCALE_SCENARIO.smoke_config()
        assert smoke.num_queries <= 5_000
