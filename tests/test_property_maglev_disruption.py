"""Property tests for Maglev table disruption (autoscaler churn guarantees).

The elastic control plane adds and removes backends continuously, and
its churn guarantees rest on :meth:`MaglevTable.disruption_versus`
behaving like a metric over backend sets: symmetric, zero for identical
sets, and bounded by the fraction of the table the changed backends
actually own (plus Maglev's small reshuffle slack among survivors —
Maglev is near-minimal, not minimal; at table size 2003 the measured
reshuffle stays under ~3%, and the paper's production size of 65537
shrinks it further).

The lower bound is exact: every slot owned by a removed backend *must*
change owner, so the disruption can never undercut the removed share.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistent_hash import MaglevTable

#: A prime comfortably above the backend counts exercised here; large
#: enough that the survivor reshuffle stays small, small enough that
#: table population keeps the test fast.
TABLE_SIZE = 2003

#: Empirical ceiling on Maglev's survivor reshuffle at TABLE_SIZE (the
#: slack the change-fraction bound allows on top of the minimal churn).
RESHUFFLE_SLACK = 0.06

_backend_universe = [f"backend-{index}" for index in range(12)]

backend_sets = st.sets(
    st.sampled_from(_backend_universe), min_size=2, max_size=10
)


def _table(backends):
    return MaglevTable(sorted(backends), table_size=TABLE_SIZE)


def _owned_share(table, backends):
    """Fraction of slots owned by ``backends`` in ``table``."""
    return sum(
        share
        for backend, share in table.slot_shares().items()
        if backend in backends
    )


@given(backends=backend_sets, other=backend_sets)
@settings(max_examples=60, deadline=None)
def test_disruption_is_symmetric(backends, other):
    first, second = _table(backends), _table(other)
    assert first.disruption_versus(second) == second.disruption_versus(first)


@given(backends=backend_sets)
@settings(max_examples=30, deadline=None)
def test_identical_backend_sets_have_zero_disruption(backends):
    assert _table(backends).disruption_versus(_table(backends)) == 0.0


@given(backends=backend_sets, other=backend_sets)
@settings(max_examples=60, deadline=None)
def test_disruption_is_bounded_by_the_backend_change_fraction(backends, other):
    """d ≤ (slots the changed backends own on either side) + slack.

    The symmetric difference of the backend sets is exactly what the
    autoscaler changed; slots owned by unchanged backends may only move
    because of Maglev's survivor reshuffle, which the slack covers.
    """
    first, second = _table(backends), _table(other)
    changed = backends ^ other
    disruption = first.disruption_versus(second)
    bound = _owned_share(first, changed) + _owned_share(second, changed)
    assert disruption <= min(1.0, bound + RESHUFFLE_SLACK)


@given(backends=backend_sets, data=st.data())
@settings(max_examples=60, deadline=None)
def test_removal_disruption_brackets_the_removed_share(backends, data):
    """Removing k backends disrupts at least their share, at most a bit more.

    This is the autoscaler's scale-down case: the lower bound is exact
    (a removed backend's slots must all change), the upper bound is the
    removed share plus the reshuffle slack.
    """
    removable = sorted(backends)
    removed = data.draw(
        st.sets(
            st.sampled_from(removable),
            min_size=1,
            max_size=len(removable) - 1,
        )
    )
    before = _table(backends)
    after = _table(backends - removed)
    disruption = before.disruption_versus(after)
    removed_share = _owned_share(before, removed)
    # 1e-9: the shares are exact integer counts over TABLE_SIZE, but
    # summing their float form can land one ulp past the disruption.
    assert disruption >= removed_share - 1e-9
    assert disruption <= min(1.0, removed_share + RESHUFFLE_SLACK) + 1e-9
