"""Property-based tests for the simulation engine and network substrate."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addressing import IPv6Address
from repro.net.srh import SegmentRoutingHeader
from repro.sim.engine import Simulator

# ----------------------------------------------------------------------
# simulation engine
# ----------------------------------------------------------------------
event_times = st.lists(
    st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


@given(times=event_times)
@settings(max_examples=100, deadline=None)
def test_events_always_execute_in_nondecreasing_time_order(times):
    simulator = Simulator(seed=0)
    executed = []
    for time in times:
        simulator.schedule_at(time, lambda t=time: executed.append(simulator.now))
    simulator.run()
    assert len(executed) == len(times)
    assert executed == sorted(executed)
    assert executed == sorted(times)


@given(times=event_times, cancel_mask=st.lists(st.booleans(), min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_cancelled_events_never_fire_and_others_always_do(times, cancel_mask):
    simulator = Simulator(seed=0)
    fired = []
    handles = []
    for index, time in enumerate(times):
        handles.append(
            simulator.schedule_at(time, lambda i=index: fired.append(i))
        )
    cancelled = set()
    for index, handle in enumerate(handles):
        if cancel_mask[index % len(cancel_mask)]:
            handle.cancel()
            cancelled.add(index)
    simulator.run()
    assert set(fired) == set(range(len(times))) - cancelled


@given(
    times=event_times,
    horizon=st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_run_until_never_executes_later_events(times, horizon):
    simulator = Simulator(seed=0)
    executed = []
    for time in times:
        simulator.schedule_at(time, lambda t=time: executed.append(t))
    simulator.run(until=horizon)
    assert all(time <= horizon for time in executed)
    # Draining afterwards executes exactly the remainder.
    simulator.run()
    assert sorted(executed) == sorted(times)


# ----------------------------------------------------------------------
# IPv6 addresses
# ----------------------------------------------------------------------
address_values = st.integers(min_value=0, max_value=(1 << 128) - 1)


@given(value=address_values)
@settings(max_examples=300, deadline=None)
def test_ipv6_format_parse_roundtrip(value):
    address = IPv6Address(value)
    assert IPv6Address.parse(str(address)) == address


@given(values=st.lists(address_values, min_size=2, max_size=10, unique=True))
@settings(max_examples=100, deadline=None)
def test_ipv6_ordering_matches_integer_ordering(values):
    addresses = [IPv6Address(value) for value in values]
    assert sorted(addresses) == [IPv6Address(value) for value in sorted(values)]


# ----------------------------------------------------------------------
# Segment Routing header
# ----------------------------------------------------------------------
segment_lists = st.lists(address_values, min_size=1, max_size=8, unique=True).map(
    lambda values: [IPv6Address(value) for value in values]
)


@given(path=segment_lists)
@settings(max_examples=200, deadline=None)
def test_srh_traversal_roundtrip(path):
    srh = SegmentRoutingHeader.from_traversal(path)
    assert list(srh.traversal_order()) == path
    assert srh.active_segment == path[0]
    assert srh.final_segment == path[-1]


@given(path=segment_lists)
@settings(max_examples=200, deadline=None)
def test_srh_advancing_visits_segments_in_order(path):
    srh = SegmentRoutingHeader.from_traversal(path)
    visited = [srh.active_segment]
    while not srh.exhausted:
        visited.append(srh.advance())
    assert visited == path


@given(path=segment_lists, data=st.data())
@settings(max_examples=200, deadline=None)
def test_srh_segments_left_is_monotonically_non_increasing(path, data):
    srh = SegmentRoutingHeader.from_traversal(path)
    previous = srh.segments_left
    while not srh.exhausted:
        jump = data.draw(st.integers(min_value=0, max_value=srh.segments_left))
        srh.set_segments_left(jump)
        assert srh.segments_left <= previous
        previous = srh.segments_left
        if srh.segments_left > 0:
            srh.advance()
            previous = srh.segments_left
    assert srh.active_segment == path[-1] or srh.segments_left == 0
