"""Property-based tests for the simulation engine and network substrate."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addressing import IPv6Address
from repro.net.packet import FlowKey, Packet, TCPSegment
from repro.net.srh import SegmentRoutingHeader
from repro.sim.engine import Simulator

# ----------------------------------------------------------------------
# simulation engine
# ----------------------------------------------------------------------
event_times = st.lists(
    st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


@given(times=event_times)
@settings(max_examples=100, deadline=None)
def test_events_always_execute_in_nondecreasing_time_order(times):
    simulator = Simulator(seed=0)
    executed = []
    for time in times:
        simulator.schedule_at(time, lambda t=time: executed.append(simulator.now))
    simulator.run()
    assert len(executed) == len(times)
    assert executed == sorted(executed)
    assert executed == sorted(times)


@given(times=event_times, cancel_mask=st.lists(st.booleans(), min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_cancelled_events_never_fire_and_others_always_do(times, cancel_mask):
    simulator = Simulator(seed=0)
    fired = []
    handles = []
    for index, time in enumerate(times):
        handles.append(
            simulator.schedule_at(time, lambda i=index: fired.append(i))
        )
    cancelled = set()
    for index, handle in enumerate(handles):
        if cancel_mask[index % len(cancel_mask)]:
            handle.cancel()
            cancelled.add(index)
    simulator.run()
    assert set(fired) == set(range(len(times))) - cancelled


@given(
    times=event_times,
    horizon=st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_run_until_never_executes_later_events(times, horizon):
    simulator = Simulator(seed=0)
    executed = []
    for time in times:
        simulator.schedule_at(time, lambda t=time: executed.append(t))
    simulator.run(until=horizon)
    assert all(time <= horizon for time in executed)
    # Draining afterwards executes exactly the remainder.
    simulator.run()
    assert sorted(executed) == sorted(times)


# ----------------------------------------------------------------------
# IPv6 addresses
# ----------------------------------------------------------------------
address_values = st.integers(min_value=0, max_value=(1 << 128) - 1)


@given(value=address_values)
@settings(max_examples=300, deadline=None)
def test_ipv6_format_parse_roundtrip(value):
    address = IPv6Address(value)
    assert IPv6Address.parse(str(address)) == address


@given(values=st.lists(address_values, min_size=2, max_size=10, unique=True))
@settings(max_examples=100, deadline=None)
def test_ipv6_ordering_matches_integer_ordering(values):
    addresses = [IPv6Address(value) for value in values]
    assert sorted(addresses) == [IPv6Address(value) for value in sorted(values)]


# ----------------------------------------------------------------------
# Segment Routing header
# ----------------------------------------------------------------------
segment_lists = st.lists(address_values, min_size=1, max_size=8, unique=True).map(
    lambda values: [IPv6Address(value) for value in values]
)


@given(path=segment_lists)
@settings(max_examples=200, deadline=None)
def test_srh_traversal_roundtrip(path):
    srh = SegmentRoutingHeader.from_traversal(path)
    assert list(srh.traversal_order()) == path
    assert srh.active_segment == path[0]
    assert srh.final_segment == path[-1]


@given(path=segment_lists)
@settings(max_examples=200, deadline=None)
def test_srh_advancing_visits_segments_in_order(path):
    srh = SegmentRoutingHeader.from_traversal(path)
    visited = [srh.active_segment]
    while not srh.exhausted:
        visited.append(srh.advance())
    assert visited == path


@given(path=segment_lists, data=st.data())
@settings(max_examples=200, deadline=None)
def test_srh_segments_left_is_monotonically_non_increasing(path, data):
    srh = SegmentRoutingHeader.from_traversal(path)
    previous = srh.segments_left
    while not srh.exhausted:
        jump = data.draw(st.integers(min_value=0, max_value=srh.segments_left))
        srh.set_segments_left(jump)
        assert srh.segments_left <= previous
        previous = srh.segments_left
        if srh.segments_left > 0:
            srh.advance()
            previous = srh.segments_left
    assert srh.active_segment == path[-1] or srh.segments_left == 0


# ----------------------------------------------------------------------
# packet flow-key cache
# ----------------------------------------------------------------------
def _fresh_flow_key(packet: Packet) -> FlowKey:
    """The flow key computed from first principles, bypassing the cache."""
    return FlowKey(
        src_address=packet.src,
        src_port=packet.tcp.src_port,
        dst_address=packet.final_destination,
        dst_port=packet.tcp.dst_port,
    )


#: Op codes for the random SRH-mutation walk below.
_FLOW_KEY_OPS = st.lists(
    st.sampled_from(["attach", "advance", "detach", "set_left", "assign_dst"]),
    min_size=0,
    max_size=30,
)


@given(ops=_FLOW_KEY_OPS, path=segment_lists, data=st.data())
@settings(max_examples=200, deadline=None)
def test_flow_key_cache_matches_fresh_computation_under_any_mutation(
    ops, path, data
):
    """`packet.flow_key()` after any sequence of sanctioned mutations
    must equal the key computed fresh from the packet's current state."""
    src = IPv6Address(1)
    dst = IPv6Address(2)
    packet = Packet(src=src, dst=dst, tcp=TCPSegment(src_port=1000, dst_port=80))
    assert packet.flow_key() == _fresh_flow_key(packet)
    for op in ops:
        if op == "attach":
            packet.attach_srh(SegmentRoutingHeader.from_traversal(path))
        elif op == "advance":
            if packet.srh is None or packet.srh.exhausted:
                continue
            packet.advance_srh()
        elif op == "detach":
            if packet.srh is None:
                continue
            packet.detach_srh()
        elif op == "set_left":
            if packet.srh is None:
                continue
            jump = data.draw(
                st.integers(min_value=0, max_value=packet.srh.segments_left)
            )
            packet.set_segments_left(jump)
        else:  # assign_dst (only meaningful without an SRH)
            if packet.srh is not None:
                continue
            packet.dst = data.draw(address_values.map(IPv6Address))
        assert packet.flow_key() == _fresh_flow_key(packet)
        # The SRH invariant must also survive every mutation.
        if packet.srh is not None:
            assert packet.dst == packet.srh.active_segment


@given(ops=_FLOW_KEY_OPS, path=segment_lists)
@settings(max_examples=100, deadline=None)
def test_flow_key_cache_copy_independence(ops, path):
    """Mutating a packet never changes the key of a prior copy()."""
    packet = Packet(
        src=IPv6Address(1),
        dst=IPv6Address(2),
        tcp=TCPSegment(src_port=1000, dst_port=80),
    )
    packet.attach_srh(SegmentRoutingHeader.from_traversal(path))
    packet.flow_key()  # warm the cache so the copy inherits it
    clone = packet.copy()
    expected = _fresh_flow_key(clone)
    for op in ops:
        if op == "advance" and packet.srh is not None and not packet.srh.exhausted:
            packet.advance_srh()
        elif op == "detach" and packet.srh is not None:
            packet.detach_srh()
        elif op == "attach":
            packet.attach_srh(SegmentRoutingHeader.from_traversal(path))
    assert clone.flow_key() == expected == _fresh_flow_key(clone)
