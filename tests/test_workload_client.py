"""Unit tests for the traffic-generator client node."""

import pytest

from repro.metrics.collector import ResponseTimeCollector
from repro.net.addressing import IPv6Address
from repro.net.fabric import LANFabric
from repro.net.packet import Packet, TCPFlag, TCPSegment
from repro.net.router import NetworkNode
from repro.net.tcp import HTTP_PORT
from repro.workload.client import REQUEST_PAYLOAD_SIZE, TrafficGeneratorNode
from repro.workload.requests import Request
from repro.workload.trace import Trace


def _addr(text):
    return IPv6Address.parse(text)


CLIENT = _addr("fd00:200::1")
VIP = _addr("fd00:300::1")


class EchoService(NetworkNode):
    """Stand-in for the LB + server side: answers SYNs and requests.

    Behaviour is configurable per test: it can answer with a SYN-ACK and
    a response, or reset the connection.
    """

    def __init__(self, simulator, reset_ports=frozenset(), response_delay=0.01):
        super().__init__(simulator, "service")
        self.add_address(VIP)
        self.reset_ports = reset_ports
        self.response_delay = response_delay
        self.syns = []
        self.requests = []

    def handle_packet(self, packet):
        tcp = packet.tcp
        if tcp.has(TCPFlag.SYN):
            self.syns.append(packet)
            flags = (
                TCPFlag.RST
                if tcp.src_port in self.reset_ports
                else TCPFlag.SYN | TCPFlag.ACK
            )
            self.send(
                Packet(
                    src=VIP,
                    dst=packet.src,
                    tcp=TCPSegment(
                        src_port=HTTP_PORT,
                        dst_port=tcp.src_port,
                        flags=flags,
                        request_id=tcp.request_id,
                    ),
                )
            )
        elif tcp.payload_size > 0:
            self.requests.append(packet)
            reply = Packet(
                src=VIP,
                dst=packet.src,
                tcp=TCPSegment(
                    src_port=HTTP_PORT,
                    dst_port=tcp.src_port,
                    flags=TCPFlag.PSH | TCPFlag.ACK,
                    payload_size=1_000,
                    request_id=tcp.request_id,
                ),
            )
            self.simulator.schedule_in(self.response_delay, lambda: self.send(reply))


def _build(simulator, reset_ports=frozenset()):
    fabric = LANFabric(simulator, latency=1e-4)
    collector = ResponseTimeCollector()
    client = TrafficGeneratorNode(simulator, "client", CLIENT, VIP, collector)
    service = EchoService(simulator, reset_ports=reset_ports)
    client.attach(fabric)
    service.attach(fabric)
    return client, service, collector


def _trace(count, spacing=0.01):
    return Trace(
        [
            Request(request_id=1_000 + index, arrival_time=index * spacing,
                    service_demand=0.05, kind="php", url=f"/item/{index}")
            for index in range(count)
        ]
    )


class TestTrafficGenerator:
    def test_full_query_lifecycle(self, simulator):
        client, service, collector = _build(simulator)
        client.schedule_trace(_trace(1))
        simulator.run()
        assert client.queries_completed == 1
        assert client.queries_failed == 0
        assert client.in_flight == 0
        assert len(service.requests) == 1
        outcome = collector.outcomes()[0]
        assert outcome.succeeded
        assert outcome.established_at is not None
        # Response time covers handshake + request + service + response.
        assert outcome.response_time > 0.01

    def test_open_loop_arrivals_follow_the_trace(self, simulator):
        client, service, collector = _build(simulator)
        client.schedule_trace(_trace(5, spacing=0.1))
        simulator.run()
        sent_times = sorted(outcome.sent_at for outcome in collector.outcomes())
        assert sent_times == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])

    def test_request_payload_is_sent_after_syn_ack(self, simulator):
        client, service, collector = _build(simulator)
        client.schedule_trace(_trace(1))
        simulator.run()
        assert service.requests[0].tcp.payload_size == REQUEST_PAYLOAD_SIZE

    def test_reset_marks_query_failed(self, simulator):
        # The first ephemeral port is 10_000; reset that connection.
        client, service, collector = _build(simulator, reset_ports={10_000})
        client.schedule_trace(_trace(2))
        simulator.run()
        assert client.queries_failed == 1
        assert client.queries_completed == 1
        assert collector.totals.failed == 1
        failure = collector.failures()[0]
        assert failure.failure_reason == "connection reset"

    def test_each_query_gets_a_distinct_source_port(self, simulator):
        client, service, collector = _build(simulator)
        client.schedule_trace(_trace(4))
        simulator.run()
        ports = {packet.tcp.src_port for packet in service.syns}
        assert len(ports) == 4

    def test_stray_packet_is_ignored(self, simulator):
        client, service, collector = _build(simulator)
        stray = Packet(
            src=VIP,
            dst=CLIENT,
            tcp=TCPSegment(src_port=80, dst_port=9_999, flags=TCPFlag.ACK, request_id=777),
        )
        client.receive(stray)
        assert client.queries_completed == 0
        assert client.queries_failed == 0

    def test_duplicate_in_flight_request_rejected(self, simulator):
        client, service, collector = _build(simulator)
        request = Request(request_id=42, arrival_time=0.0, service_demand=0.05)
        client.start_query(request)
        with pytest.raises(Exception):
            client.start_query(request)

    def test_outstanding_request_ids(self, simulator):
        client, service, collector = _build(simulator)
        request = Request(request_id=43, arrival_time=0.0, service_demand=0.05)
        client.start_query(request)
        assert client.outstanding_request_ids() == [43]
        simulator.run()
        assert client.outstanding_request_ids() == []

    def test_works_without_collector(self, simulator):
        fabric = LANFabric(simulator, latency=1e-4)
        client = TrafficGeneratorNode(simulator, "client", CLIENT, VIP, collector=None)
        service = EchoService(simulator)
        client.attach(fabric)
        service.attach(fabric)
        client.schedule_trace(_trace(1))
        simulator.run()
        assert client.queries_completed == 1


class TestSpreadUpload:
    def test_single_chunk_spread_delays_the_payload(self, simulator):
        """request_spread with request_chunks=1 sends the payload late,
        not immediately (no silently-inert configuration)."""
        from repro.net.fabric import LANFabric
        from repro.net.packet import TCPFlag
        from repro.workload.client import TrafficGeneratorNode
        from repro.workload.requests import Request
        from repro.net.addressing import IPv6Address

        from repro.net.router import NetworkNode

        from repro.net.packet import Packet, TCPSegment

        class VipSink(NetworkNode):
            """Answers the SYN with a SYN-ACK at t=0.5, records the rest."""

            def __init__(self, simulator):
                super().__init__(simulator, "vip-sink")
                self.seen = []

            def handle_packet(self, packet):
                self.seen.append((self.simulator.now, packet))
                if packet.tcp.has(TCPFlag.SYN):
                    self.simulator.schedule_at(
                        0.5,
                        lambda: self.send(
                            Packet(
                                src=packet.dst,
                                dst=packet.src,
                                tcp=TCPSegment(
                                    src_port=packet.tcp.dst_port,
                                    dst_port=packet.tcp.src_port,
                                    flags=TCPFlag.SYN | TCPFlag.ACK,
                                    request_id=packet.tcp.request_id,
                                ),
                            )
                        ),
                        label="syn-ack",
                    )

        fabric = LANFabric(simulator, latency=1e-6)
        sink = VipSink(simulator)
        sink.add_address(IPv6Address.parse("fd00:300::9"))
        sink.attach(fabric)
        client = TrafficGeneratorNode(
            simulator,
            "client",
            IPv6Address.parse("fd00:200::9"),
            IPv6Address.parse("fd00:300::9"),
            request_spread=2.0,
            request_chunks=1,
        )
        client.attach(fabric)
        sent = sink.seen

        client.start_query(Request(request_id=1, arrival_time=0.0, service_demand=0.1))
        simulator.run()
        data = [(when, p) for when, p in sent if p.tcp.has(TCPFlag.PSH)]
        assert len(data) == 1
        # Established at ~0.5 + spread 2.0 (plus one fabric hop).
        assert data[0][0] == pytest.approx(2.5, abs=1e-3)

class SelectiveService(NetworkNode):
    """Answers only the SYNs an ``answer`` predicate admits.

    Unanswered SYNs model packet loss / a black-holed path; answered
    ones get the full SYN-ACK + response exchange of ``EchoService``.
    """

    def __init__(self, simulator, answer=lambda packet: True, response_delay=0.01):
        super().__init__(simulator, "service")
        self.add_address(VIP)
        self.answer = answer
        self.response_delay = response_delay
        self.syns = []
        self.answered = []

    def handle_packet(self, packet):
        tcp = packet.tcp
        if tcp.has(TCPFlag.SYN):
            self.syns.append(packet)
            if not self.answer(packet):
                return
            self.answered.append(packet)
            self.send(
                Packet(
                    src=VIP,
                    dst=packet.src,
                    tcp=TCPSegment(
                        src_port=HTTP_PORT,
                        dst_port=tcp.src_port,
                        flags=TCPFlag.SYN | TCPFlag.ACK,
                        request_id=tcp.request_id,
                    ),
                )
            )
        elif tcp.payload_size > 0:
            reply = Packet(
                src=VIP,
                dst=packet.src,
                tcp=TCPSegment(
                    src_port=HTTP_PORT,
                    dst_port=tcp.src_port,
                    flags=TCPFlag.PSH | TCPFlag.ACK,
                    payload_size=1_000,
                    request_id=tcp.request_id,
                ),
            )
            self.simulator.schedule_in(self.response_delay, lambda: self.send(reply))


def _build_lossy(simulator, answer, **client_kwargs):
    fabric = LANFabric(simulator, latency=1e-4)
    collector = ResponseTimeCollector()
    client = TrafficGeneratorNode(
        simulator, "client", CLIENT, VIP, collector, **client_kwargs
    )
    service = SelectiveService(simulator, answer=answer)
    client.attach(fabric)
    service.attach(fabric)
    return client, service, collector


class TestSynRetransmission:
    def test_retransmits_recover_a_lost_syn(self, simulator):
        # The service ignores the first two SYNs (as if dropped in the
        # network); the client's RTO timer must retransmit and complete.
        client, service, collector = _build_lossy(
            simulator,
            answer=lambda packet: len(service.syns) > 2,
            syn_retransmit_timeout=0.1,
        )
        client.schedule_trace(_trace(1))
        simulator.run()
        assert client.queries_completed == 1
        assert client.syn_retransmits == 2
        outcome = collector.outcomes()[0]
        assert outcome.succeeded
        assert outcome.retries == 0  # same connection attempt throughout

    def test_backoff_doubles_up_to_the_cap(self, simulator):
        client, service, collector = _build_lossy(
            simulator,
            answer=lambda packet: False,
            syn_retransmit_timeout=0.1,
            syn_retransmit_cap=0.3,
            syn_retransmit_limit=4,
        )
        client.schedule_trace(_trace(1))
        simulator.run()
        # SYNs at 0, then RTOs 0.1, 0.2, 0.3 (capped), 0.3.
        times = [packet.created_at for packet in service.syns]
        gaps = [round(b - a, 6) for a, b in zip(times, times[1:])]
        assert gaps == [0.1, 0.2, 0.3, 0.3]

    def test_gives_up_after_the_retransmit_limit(self, simulator):
        client, service, collector = _build_lossy(
            simulator,
            answer=lambda packet: False,
            syn_retransmit_timeout=0.05,
            syn_retransmit_limit=2,
        )
        client.schedule_trace(_trace(1))
        simulator.run()
        assert client.queries_failed == 1
        assert client.queries_gave_up == 1
        assert client.in_flight == 0
        failure = collector.failures()[0]
        assert failure.gave_up
        assert failure.failure_reason == "syn retransmissions exhausted"

    def test_syn_timer_is_cancelled_by_the_syn_ack(self, simulator):
        client, service, collector = _build_lossy(
            simulator,
            answer=lambda packet: True,
            syn_retransmit_timeout=0.5,
        )
        client.schedule_trace(_trace(1))
        simulator.run()
        assert client.syn_retransmits == 0
        assert len(service.syns) == 1


class TestClientRetries:
    def test_retry_uses_a_fresh_source_port(self, simulator):
        # The service black-holes the client's first source port; the
        # per-attempt deadline must retry on a new port (ECMP re-hash)
        # and complete.
        client, service, collector = _build_lossy(
            simulator,
            answer=lambda packet: packet.tcp.src_port != 10_000,
            retry_timeout=0.5,
            max_retries=2,
        )
        client.schedule_trace(_trace(1))
        simulator.run()
        assert client.queries_completed == 1
        assert client.queries_retried == 1
        outcome = collector.outcomes()[0]
        assert outcome.retries == 1
        ports = [packet.tcp.src_port for packet in service.syns]
        assert ports == [10_000, 10_001]

    def test_gives_up_after_max_retries(self, simulator):
        client, service, collector = _build_lossy(
            simulator,
            answer=lambda packet: False,
            retry_timeout=0.2,
            max_retries=1,
        )
        client.schedule_trace(_trace(1))
        simulator.run()
        assert client.queries_failed == 1
        assert client.queries_retried == 1
        assert client.queries_gave_up == 1
        failure = collector.failures()[0]
        assert failure.gave_up
        assert failure.retries == 1
        assert failure.failure_reason == "client timeout"

    def test_stale_reply_from_a_previous_attempt_is_ignored(self, simulator):
        # The service answers the first attempt's SYN only *after* the
        # client has already retried on a new port: the late SYN-ACK
        # addresses the old port and must not confuse the new attempt.
        client, service, collector = _build_lossy(
            simulator,
            answer=lambda packet: packet.tcp.src_port != 10_000,
            retry_timeout=0.5,
            max_retries=2,
        )

        def late_syn_ack():
            first = service.syns[0]
            service.send(
                Packet(
                    src=VIP,
                    dst=first.src,
                    tcp=TCPSegment(
                        src_port=HTTP_PORT,
                        dst_port=first.tcp.src_port,
                        flags=TCPFlag.SYN | TCPFlag.ACK,
                        request_id=first.tcp.request_id,
                    ),
                )
            )

        simulator.schedule_at(0.6, late_syn_ack, label="late-syn-ack")
        client.schedule_trace(_trace(1))
        simulator.run()
        assert client.queries_completed == 1
        outcome = collector.outcomes()[0]
        assert outcome.retries == 1
        # Exactly one request payload was sent — on the second attempt.
        requests = [p for p in service.syns if p.tcp.src_port == 10_001]
        assert len(requests) == 1


class TestSweepUnfinished:
    def test_sweep_records_pending_queries_as_failed(self, simulator):
        # No retransmission, no retries: a lost SYN strands the query.
        client, service, collector = _build_lossy(
            simulator, answer=lambda packet: False
        )
        client.schedule_trace(_trace(2))
        simulator.run()
        assert client.in_flight == 2
        assert collector.totals.failed == 0
        swept = client.sweep_unfinished()
        assert swept == 2
        assert client.in_flight == 0
        assert client.queries_swept == 2
        assert client.queries_gave_up == 2
        assert collector.totals.failed == 2
        for failure in collector.failures():
            assert failure.gave_up
            assert failure.failure_reason == "unfinished at end of run"

    def test_sweep_is_a_noop_on_a_clean_run(self, simulator):
        client, service, collector = _build(simulator)
        client.schedule_trace(_trace(3))
        simulator.run()
        assert client.sweep_unfinished() == 0
        assert client.queries_swept == 0
        assert collector.totals.failed == 0
