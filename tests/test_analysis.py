"""Unit tests for the analytic models (supermarket model and M/M/c)."""

import pytest

from repro.analysis.power_of_choices import (
    compare_choices,
    improvement_over_random,
    marginal_benefit,
    mean_queue_length,
    mean_time_in_system,
    tail_probabilities,
)
from repro.analysis.queueing import (
    erlang_c,
    mmc_metrics,
    mmck_blocking_probability,
    saturation_rate,
)
from repro.errors import ReproError


class TestSupermarketModel:
    def test_single_choice_matches_mm1(self):
        # With d = 1 the supermarket model reduces to M/M/1: mean time 1/(1-rho).
        for load in (0.3, 0.6, 0.9):
            assert mean_time_in_system(load, 1) == pytest.approx(
                1.0 / (1.0 - load), rel=1e-3
            )

    def test_two_choices_beat_one(self):
        for load in (0.5, 0.7, 0.9, 0.95):
            assert mean_time_in_system(load, 2) < mean_time_in_system(load, 1)

    def test_improvement_grows_with_load(self):
        assert improvement_over_random(0.9) > improvement_over_random(0.6)

    def test_tail_probabilities_decreasing(self):
        tails = tail_probabilities(0.9, 2)
        assert all(tails[i] >= tails[i + 1] for i in range(len(tails) - 1))
        assert tails[0] == pytest.approx(1.0)

    def test_doubly_exponential_tail_decay(self):
        # With d = 2 the fraction of queues with >= i jobs is rho^(2^i - 1),
        # so the tail collapses much faster than with d = 1.
        tails_one = tail_probabilities(0.9, 1, max_length=10)
        tails_two = tail_probabilities(0.9, 2, max_length=10)
        assert tails_two[5] < tails_one[5] / 10

    def test_mean_queue_length_positive(self):
        assert mean_queue_length(0.7, 2) > 0

    def test_marginal_benefit_is_dominated_by_first_step(self):
        benefits = marginal_benefit(0.9, max_choices=5)
        assert benefits[0] > benefits[1] > benefits[2]

    def test_compare_choices_rows(self):
        comparison = compare_choices(0.9, [1, 2, 4])
        rows = comparison.as_rows()
        assert len(rows) == 3
        assert rows[0][2] == pytest.approx(1.0)   # d = 1 vs itself
        assert rows[1][2] > 1.0                   # d = 2 speed-up

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ReproError):
            tail_probabilities(1.2, 2)
        with pytest.raises(ReproError):
            tail_probabilities(0.5, 0)
        with pytest.raises(ReproError):
            marginal_benefit(0.5, max_choices=1)
        with pytest.raises(ReproError):
            compare_choices(0.5, [])


class TestMMc:
    def test_erlang_c_single_server_equals_utilization(self):
        # For M/M/1 the probability of waiting equals rho.
        assert erlang_c(0.6, 1.0, 1) == pytest.approx(0.6, rel=1e-6)

    def test_mmc_metrics_mm1_closed_form(self):
        metrics = mmc_metrics(0.5, 1.0, 1)
        assert metrics.mean_response_time == pytest.approx(2.0, rel=1e-6)
        assert metrics.mean_jobs_in_system == pytest.approx(1.0, rel=1e-6)

    def test_more_servers_reduce_waiting(self):
        few = mmc_metrics(1.8, 1.0, 2)
        many = mmc_metrics(1.8, 1.0, 4)
        assert many.mean_wait < few.mean_wait

    def test_unstable_system_rejected(self):
        with pytest.raises(ReproError):
            mmc_metrics(2.0, 1.0, 2)
        with pytest.raises(ReproError):
            erlang_c(3.0, 1.0, 2)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ReproError):
            mmc_metrics(-1.0, 1.0, 2)
        with pytest.raises(ReproError):
            mmc_metrics(1.0, 0.0, 2)
        with pytest.raises(ReproError):
            mmc_metrics(1.0, 1.0, 0)

    def test_utilization_field(self):
        metrics = mmc_metrics(1.0, 1.0, 2)
        assert metrics.utilization == pytest.approx(0.5)


class TestMMcK:
    def test_blocking_increases_with_load(self):
        low = mmck_blocking_probability(1.0, 1.0, 2, 6)
        high = mmck_blocking_probability(3.0, 1.0, 2, 6)
        assert high > low

    def test_blocking_decreases_with_capacity(self):
        small = mmck_blocking_probability(2.5, 1.0, 2, 4)
        large = mmck_blocking_probability(2.5, 1.0, 2, 12)
        assert large < small

    def test_blocking_is_a_probability(self):
        value = mmck_blocking_probability(5.0, 1.0, 2, 10)
        assert 0.0 <= value <= 1.0

    def test_capacity_below_servers_rejected(self):
        with pytest.raises(ReproError):
            mmck_blocking_probability(1.0, 1.0, 4, 2)


class TestSaturationRate:
    def test_paper_testbed_estimate(self):
        # 12 servers x 2 cores, 100 ms mean demand -> 240 queries/s.
        assert saturation_rate(24, 0.1) == pytest.approx(240.0)

    def test_safety_margin(self):
        assert saturation_rate(24, 0.1, safety_margin=0.9) == pytest.approx(216.0)

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            saturation_rate(0, 0.1)
        with pytest.raises(ReproError):
            saturation_rate(24, 0.0)
        with pytest.raises(ReproError):
            saturation_rate(24, 0.1, safety_margin=0.0)
