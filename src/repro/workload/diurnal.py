"""Diurnal workload: sinusoid-plus-noise arrival-rate modulation.

The autoscale scenario needs the load pattern real fleets scale against:
a smooth daily cycle — quiet trough, climbing morning ramp, afternoon
peak, evening decline — with per-interval noise on top.  This module
models one (time-compressed) day as a sinusoid,

    rate(t) = mean_rate − amplitude · cos(2π · t / period),

which starts at the trough (the elastic fleet starts small, "overnight")
and peaks mid-period.  The continuous curve is discretised into
``num_steps`` piecewise-constant :class:`~repro.workload.flash_crowd.RatePhase`
steps — each optionally perturbed by lognormal-ish multiplicative noise —
and handed to :class:`~repro.workload.flash_crowd.SteppedPoissonWorkload`,
whose memoryless per-phase generation is exact for piecewise-constant
Poisson processes.

Like every generator in this package, :meth:`DiurnalWorkload.generate`
is a pure function of its parameters and the RNG, so pool workers can
regenerate identical traces.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.workload.flash_crowd import RatePhase, SteppedPoissonWorkload
from repro.workload.service_models import ExponentialServiceTime, ServiceTimeModel
from repro.workload.trace import Trace


class DiurnalWorkload:
    """Open-loop Poisson stream whose rate follows a noisy sinusoid.

    Parameters
    ----------
    mean_rate:
        The day's average arrival rate, in queries per second.
    amplitude:
        Peak-to-mean rate swing (``0 <= amplitude <= mean_rate``): the
        rate oscillates in ``[mean_rate − amplitude, mean_rate + amplitude]``
        before noise.
    period:
        Length of one (compressed) day, in seconds.
    duration:
        Total schedule length; may cover several periods.
    num_steps:
        Piecewise-constant steps the sinusoid is discretised into.
    noise:
        Relative standard deviation of the per-step multiplicative
        noise; 0 keeps the pure sinusoid.
    min_rate:
        Floor on each step's rate after noise (defaults to 5% of
        ``mean_rate``), keeping every phase a valid Poisson stream.
    service_model:
        Per-query CPU demand model; defaults to the paper's
        exponential(100 ms).
    """

    def __init__(
        self,
        mean_rate: float,
        amplitude: float,
        period: float,
        duration: float,
        num_steps: int = 48,
        noise: float = 0.0,
        min_rate: Optional[float] = None,
        service_model: Optional[ServiceTimeModel] = None,
        start_time: float = 0.0,
    ) -> None:
        # Finiteness guards matter here: an infinite duration or rate
        # would make the per-phase arrival loop draw forever.
        if not math.isfinite(mean_rate) or mean_rate <= 0:
            raise WorkloadError(
                f"mean_rate must be positive and finite, got {mean_rate!r}"
            )
        if not 0 <= amplitude <= mean_rate:
            raise WorkloadError(
                f"amplitude must be in [0, mean_rate], got {amplitude!r} "
                f"(mean_rate {mean_rate!r})"
            )
        if not math.isfinite(period) or period <= 0:
            raise WorkloadError(
                f"period must be positive and finite, got {period!r}"
            )
        if not math.isfinite(duration) or duration <= 0:
            raise WorkloadError(
                f"duration must be positive and finite, got {duration!r}"
            )
        if num_steps <= 0:
            raise WorkloadError(f"num_steps must be positive, got {num_steps!r}")
        if noise < 0:
            raise WorkloadError(f"noise must be non-negative, got {noise!r}")
        if min_rate is not None and min_rate <= 0:
            raise WorkloadError(f"min_rate must be positive, got {min_rate!r}")
        self.mean_rate = mean_rate
        self.amplitude = amplitude
        self.period = period
        self.duration = duration
        self.num_steps = num_steps
        self.noise = noise
        self.min_rate = min_rate if min_rate is not None else 0.05 * mean_rate
        self.service_model = service_model or ExponentialServiceTime(0.1)
        self.start_time = start_time

    def rate_at(self, time: float) -> float:
        """The noiseless sinusoid's rate at schedule time ``time``."""
        return self.mean_rate - self.amplitude * math.cos(
            2.0 * math.pi * time / self.period
        )

    def phases(self, rng: Optional[np.random.Generator] = None) -> List[RatePhase]:
        """The discretised (optionally noise-perturbed) rate schedule.

        Each step's rate is the sinusoid sampled at the step midpoint;
        with ``rng`` given and ``noise > 0`` it is multiplied by
        ``exp(noise · N(0, 1))`` — multiplicative, so bursts scale with
        the prevailing rate and the trough cannot go negative.
        """
        step = self.duration / self.num_steps
        phases: List[RatePhase] = []
        for index in range(self.num_steps):
            midpoint = (index + 0.5) * step
            rate = self.rate_at(midpoint)
            if self.noise > 0 and rng is not None:
                rate *= math.exp(self.noise * float(rng.standard_normal()))
            phases.append(RatePhase(duration=step, rate=max(rate, self.min_rate)))
        return phases

    def expected_queries(self) -> float:
        """Expected arrivals over the schedule (noiseless approximation)."""
        return self.mean_rate * self.duration

    def generate(self, rng: np.random.Generator) -> Trace:
        """Generate the trace: noise draws first, then per-phase arrivals.

        The draw order is fixed (one normal per step, then the stepped
        generator's exponentials), so the trace is a deterministic
        function of the parameters and the RNG state — the scenario
        runner's requirement for worker-side regeneration.
        """
        stepped = SteppedPoissonWorkload(
            phases=self.phases(rng),
            service_model=self.service_model,
            start_time=self.start_time,
        )
        trace = stepped.generate(rng)
        trace.name = (
            f"diurnal-{self.mean_rate:g}±{self.amplitude:g}qps-"
            f"{self.period:g}s-period"
        )
        return trace

    def __repr__(self) -> str:
        return (
            f"DiurnalWorkload(mean={self.mean_rate:g}qps, "
            f"amplitude={self.amplitude:g}, period={self.period:g}s, "
            f"duration={self.duration:g}s, steps={self.num_steps}, "
            f"noise={self.noise:g})"
        )
