"""Traffic generator (the client side of the testbed).

The paper's traffic generator injects an open-loop stream of HTTP
queries (Poisson or trace replay) into the load balancer and records
per-query response times at the client.  :class:`TrafficGeneratorNode`
does the same:

* every request of the trace opens a fresh TCP connection to the VIP at
  its scheduled arrival time (open-loop: arrivals never wait for earlier
  responses, exactly like the paper's generator);
* the HTTP request is sent as soon as the SYN-ACK arrives;
* the response (or a RST, under overload) closes the query and produces
  a :class:`RequestOutcome` that is handed to the attached collector.

Response time is measured from connection initiation (SYN sent) to
response received, i.e. it includes connection setup, queueing in the
server backlog and service time — the same "page load time" the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol

from repro.errors import WorkloadError
from repro.net.addressing import IPv6Address
from repro.net.packet import Packet, TCPFlag, TCPSegment
from repro.net.router import NetworkNode
from repro.net.tcp import EphemeralPortAllocator, HTTP_PORT
from repro.sim.engine import EventHandle, Simulator
from repro.workload.requests import Request
from repro.workload.trace import Trace

#: Size in bytes of the HTTP request payload (a GET with headers).
REQUEST_PAYLOAD_SIZE = 400


@dataclass(slots=True)
class RequestOutcome:
    """Client-side record of one query's fate.

    Slotted: one is allocated per query of a replay and held until the
    collector is exported.
    """

    request_id: int
    kind: str
    url: str
    sent_at: float
    established_at: Optional[float] = None
    completed_at: Optional[float] = None
    failed: bool = False
    failure_reason: Optional[str] = None
    #: Full-connection retries performed (fresh source port each time).
    retries: int = 0
    #: True when the client exhausted its retry/retransmit budget (or the
    #: run ended) and abandoned the query rather than receiving an answer.
    gave_up: bool = False

    @property
    def response_time(self) -> Optional[float]:
        """Page load time (seconds), or ``None`` if the query failed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.sent_at

    @property
    def succeeded(self) -> bool:
        """Whether a response was received."""
        return self.completed_at is not None and not self.failed


class OutcomeSink(Protocol):
    """Anything that accepts completed request outcomes (the collector)."""

    def record(self, outcome: RequestOutcome) -> None:
        """Store one finished (or failed) query."""


@dataclass(slots=True)
class _PendingQuery:
    """In-flight client state for one query."""

    request: Request
    outcome: RequestOutcome
    src_port: int
    #: Connection attempt number (0 = the original, bumped per retry).
    #: Stale timers and packets from earlier attempts check it and bail.
    attempt: int = 0
    #: SYN retransmissions performed within the current attempt.
    syn_retransmits: int = 0
    #: Current SYN retransmission timeout (doubles per retransmit).
    rto: float = 0.0
    syn_timer: Optional[EventHandle] = None
    retry_timer: Optional[EventHandle] = None


class TrafficGeneratorNode(NetworkNode):
    """Open-loop trace-replay client.

    Parameters
    ----------
    simulator:
        Shared simulation engine.
    name:
        Node name.
    address:
        Client IPv6 address.
    vip:
        The virtual IP the queries are addressed to.
    collector:
        Sink receiving a :class:`RequestOutcome` per finished query.
    request_spread:
        When positive, the client trickles each request upload over this
        many seconds after connection establishment instead of sending it
        at once: ``request_chunks - 1`` bare-ACK segments pace the
        upload, then the request payload closes it.  Every one of those
        packets is steered by the load balancer, so the flow *depends* on
        steering state for the whole window — which is what the
        resilience experiments need to observe load-balancer churn
        breaking (or not breaking) in-flight flows.
    request_chunks:
        Number of segments the spread upload is split into (>= 1).
    syn_retransmit_timeout:
        Initial SYN retransmission timeout in seconds; the RTO doubles
        after each retransmit up to ``syn_retransmit_cap`` (the classic
        exponential backoff).  ``0`` (the default) disables SYN
        retransmission entirely — no timer is ever scheduled, keeping
        the default client bit-identical to the pre-fault-plane one.
    syn_retransmit_cap:
        Upper bound on the doubled RTO, in seconds.
    syn_retransmit_limit:
        Maximum SYN retransmissions per connection attempt; once
        exhausted the query gives up (unless a ``retry_timeout`` is
        armed, in which case the per-attempt deadline decides).
    retry_timeout:
        Per-attempt client deadline in seconds.  When it fires before a
        response arrives the whole connection is retried from scratch on
        a **fresh source port**, so the ECMP edge re-hashes the flow to
        a (likely) different load-balancer path.  ``0`` disables it.
    max_retries:
        Bounded number of full-connection retries before the client
        gives up and records the query as failed with ``gave_up`` set.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        address: IPv6Address,
        vip: IPv6Address,
        collector: Optional[OutcomeSink] = None,
        request_spread: float = 0.0,
        request_chunks: int = 1,
        syn_retransmit_timeout: float = 0.0,
        syn_retransmit_cap: float = 60.0,
        syn_retransmit_limit: int = 6,
        retry_timeout: float = 0.0,
        max_retries: int = 0,
    ) -> None:
        super().__init__(simulator, name)
        if request_spread < 0:
            raise WorkloadError(
                f"request_spread must be non-negative, got {request_spread!r}"
            )
        if request_chunks <= 0:
            raise WorkloadError(
                f"request_chunks must be positive, got {request_chunks!r}"
            )
        if syn_retransmit_timeout < 0:
            raise WorkloadError(
                "syn_retransmit_timeout must be non-negative, got "
                f"{syn_retransmit_timeout!r}"
            )
        if syn_retransmit_cap <= 0:
            raise WorkloadError(
                f"syn_retransmit_cap must be positive, got {syn_retransmit_cap!r}"
            )
        if syn_retransmit_limit < 0:
            raise WorkloadError(
                "syn_retransmit_limit must be non-negative, got "
                f"{syn_retransmit_limit!r}"
            )
        if retry_timeout < 0:
            raise WorkloadError(
                f"retry_timeout must be non-negative, got {retry_timeout!r}"
            )
        if max_retries < 0:
            raise WorkloadError(
                f"max_retries must be non-negative, got {max_retries!r}"
            )
        self.add_address(address)
        self.vip = vip
        self.collector = collector
        self.request_spread = request_spread
        self.request_chunks = request_chunks
        self.syn_retransmit_timeout = syn_retransmit_timeout
        self.syn_retransmit_cap = syn_retransmit_cap
        self.syn_retransmit_limit = syn_retransmit_limit
        self.retry_timeout = retry_timeout
        self.max_retries = max_retries
        self._ports = EphemeralPortAllocator()
        self._pending: Dict[int, _PendingQuery] = {}
        self.queries_started = 0
        self.queries_completed = 0
        self.queries_failed = 0
        self.syn_retransmits = 0
        self.queries_retried = 0
        self.queries_gave_up = 0
        self.queries_swept = 0
        #: Optional telemetry flight recorder
        #: (:class:`repro.telemetry.recorder.FlightRecorder`).  Set by
        #: the telemetry probe when attached; the client feeds it
        #: retransmission/retry/give-up events from these cold paths.
        #: ``None`` (the default) costs one predicate per event.
        self.flight_recorder = None

    # ------------------------------------------------------------------
    # trace replay
    # ------------------------------------------------------------------
    def schedule_trace(self, trace: Trace) -> None:
        """Schedule every request of ``trace`` at its arrival time.

        Arrival events share one constant label: formatting a
        per-request label here would cost one f-string per query of the
        whole replay, and the scheduled callback already identifies the
        request when diagnostics need it.
        """
        now = self.simulator.now
        schedule_at = self.simulator.schedule_at
        for request in trace:
            schedule_at(
                now + request.arrival_time,
                self._make_starter(request),
                label="arrival",
            )

    def _make_starter(self, request: Request) -> Callable[[], None]:
        return lambda: self.start_query(request)

    def _allocate_port(self, request: Request) -> int:
        """Source port for a new query.

        The base client round-robins over the ephemeral range; the
        keep-alive session client in :mod:`repro.workload.hostile`
        overrides this to derive a stable per-user port (flow affinity).
        """
        return self._ports.allocate()

    def start_query(self, request: Request) -> None:
        """Open a new connection for ``request`` right now."""
        if request.request_id in self._pending:
            raise WorkloadError(
                f"request {request.request_id} is already in flight"
            )
        src_port = self._allocate_port(request)
        outcome = RequestOutcome(
            request_id=request.request_id,
            kind=request.kind,
            url=request.url,
            sent_at=self.simulator.now,
        )
        pending = _PendingQuery(
            request=request, outcome=outcome, src_port=src_port
        )
        self._pending[request.request_id] = pending
        self.queries_started += 1
        self._send_syn(pending)
        self._arm_timers(pending)

    def _send_syn(self, pending: _PendingQuery) -> None:
        """(Re)send the SYN of ``pending``'s current connection attempt."""
        pool = self.packet_pool
        if pool is None:
            syn = Packet(
                src=self.primary_address,
                dst=self.vip,
                tcp=TCPSegment(
                    src_port=pending.src_port,
                    dst_port=HTTP_PORT,
                    flags=TCPFlag.SYN,
                    request_id=pending.request.request_id,
                ),
                created_at=self.simulator.now,
            )
        else:
            syn = pool.acquire(
                src=self.primary_address,
                dst=self.vip,
                tcp=pool.acquire_segment(
                    src_port=pending.src_port,
                    dst_port=HTTP_PORT,
                    flags=TCPFlag.SYN,
                    request_id=pending.request.request_id,
                ),
                created_at=self.simulator.now,
            )
        self.send(syn)

    # ------------------------------------------------------------------
    # retransmission and retries
    # ------------------------------------------------------------------
    def _arm_timers(self, pending: _PendingQuery) -> None:
        """Schedule SYN-RTO and per-attempt deadline timers (if enabled)."""
        request_id = pending.request.request_id
        attempt = pending.attempt
        if self.syn_retransmit_timeout > 0.0:
            pending.rto = self.syn_retransmit_timeout
            pending.syn_timer = self.simulator.schedule_in(
                pending.rto,
                lambda: self._retransmit_syn(request_id, attempt),
                label="syn-rto",
            )
        if self.retry_timeout > 0.0:
            pending.retry_timer = self.simulator.schedule_in(
                self.retry_timeout,
                lambda: self._attempt_deadline(request_id, attempt),
                label="client-timeout",
            )

    def _retransmit_syn(self, request_id: int, attempt: int) -> None:
        pending = self._pending.get(request_id)
        if (
            pending is None
            or pending.attempt != attempt
            or pending.outcome.established_at is not None
        ):
            return
        if pending.syn_retransmits >= self.syn_retransmit_limit:
            if self.retry_timeout > 0.0:
                # The per-attempt deadline decides what happens next.
                return
            pending.outcome.gave_up = True
            self._finish(
                pending, failed=True, reason="syn retransmissions exhausted"
            )
            return
        pending.syn_retransmits += 1
        self.syn_retransmits += 1
        if self.flight_recorder is not None:
            self.flight_recorder.record(
                self.simulator.now, "client", "syn-retransmit", request_id
            )
        self._send_syn(pending)
        pending.rto = min(pending.rto * 2.0, self.syn_retransmit_cap)
        pending.syn_timer = self.simulator.schedule_in(
            pending.rto,
            lambda: self._retransmit_syn(request_id, attempt),
            label="syn-rto",
        )

    def _attempt_deadline(self, request_id: int, attempt: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None or pending.attempt != attempt:
            return
        if pending.outcome.retries >= self.max_retries:
            pending.outcome.gave_up = True
            self._finish(pending, failed=True, reason="client timeout")
            return
        # Retry the whole connection on a fresh source port so the ECMP
        # edge re-hashes the flow (the previous path may be the problem).
        self._cancel_timers(pending)
        self._retire_port(pending.src_port)
        pending.attempt += 1
        pending.outcome.retries += 1
        pending.outcome.established_at = None
        pending.syn_retransmits = 0
        pending.src_port = self._allocate_port(pending.request)
        self.queries_retried += 1
        if self.flight_recorder is not None:
            self.flight_recorder.record(
                self.simulator.now, "client", "retry", request_id
            )
        self._send_syn(pending)
        self._arm_timers(pending)

    def _cancel_timers(self, pending: _PendingQuery) -> None:
        if pending.syn_timer is not None:
            pending.syn_timer.cancel()
            pending.syn_timer = None
        if pending.retry_timer is not None:
            pending.retry_timer.cancel()
            pending.retry_timer = None

    def _retire_port(self, port: int) -> None:
        """Release a source port abandoned by a retry.

        The base allocator round-robins and never reuses within a run,
        so there is nothing to do; the session-affinity client overrides
        this to release the port from its active set.
        """

    # ------------------------------------------------------------------
    # packet handling
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        request_id = packet.tcp.request_id
        if request_id is None or request_id not in self._pending:
            # Stray packet (e.g. late RST for an already-failed query).
            return
        pending = self._pending[request_id]
        tcp = packet.tcp

        # Replies carry the client's source port as their destination
        # port, so after a retry any packet from a previous attempt's
        # connection no longer matches and must be ignored (never true
        # before the first retry: attempt == 0).
        if pending.attempt and tcp.dst_port != pending.src_port:
            return

        if tcp.has(TCPFlag.RST):
            self._finish(pending, failed=True, reason="connection reset")
            return

        if tcp.has(TCPFlag.SYN) and tcp.has(TCPFlag.ACK):
            if pending.syn_timer is not None:
                pending.syn_timer.cancel()
                pending.syn_timer = None
            pending.outcome.established_at = self.simulator.now
            if self.request_spread > 0:
                # Paced upload; with request_chunks == 1 this degenerates
                # to sending the whole payload request_spread seconds
                # after establishment (no mid-upload probes).
                self._schedule_spread_upload(pending)
            else:
                self._send_request_data(pending)
            return

        if tcp.payload_size > 0 or tcp.has(TCPFlag.PSH):
            pending.outcome.completed_at = self.simulator.now
            self._finish(pending, failed=False)
            return

    def _schedule_spread_upload(self, pending: _PendingQuery) -> None:
        """Pace the request upload over :attr:`request_spread` seconds."""
        request_id = pending.request.request_id
        attempt = pending.attempt
        interval = self.request_spread / self.request_chunks
        for chunk in range(1, self.request_chunks):
            self.simulator.schedule_in(
                chunk * interval,
                lambda: self._send_upload_probe(request_id, attempt),
                label="upload",
            )
        self.simulator.schedule_in(
            self.request_spread,
            lambda: self._finish_upload(request_id, attempt),
            label="upload-final",
        )

    def _send_upload_probe(self, request_id: int, attempt: int = 0) -> None:
        """One paced mid-upload segment (a bare ACK steered by the LB)."""
        pending = self._pending.get(request_id)
        if pending is None or pending.attempt != attempt:
            # The query already finished (e.g. reset) or was retried on a
            # new connection; stop uploading on the stale one.
            return
        pool = self.packet_pool
        if pool is None:
            probe = Packet(
                src=self.primary_address,
                dst=self.vip,
                tcp=TCPSegment(
                    src_port=pending.src_port,
                    dst_port=HTTP_PORT,
                    flags=TCPFlag.ACK,
                    request_id=request_id,
                ),
                created_at=self.simulator.now,
            )
        else:
            probe = pool.acquire(
                src=self.primary_address,
                dst=self.vip,
                tcp=pool.acquire_segment(
                    src_port=pending.src_port,
                    dst_port=HTTP_PORT,
                    flags=TCPFlag.ACK,
                    request_id=request_id,
                ),
                created_at=self.simulator.now,
            )
        self.send(probe)

    def _finish_upload(self, request_id: int, attempt: int = 0) -> None:
        pending = self._pending.get(request_id)
        if pending is None or pending.attempt != attempt:
            return
        self._send_request_data(pending)

    def _send_request_data(self, pending: _PendingQuery) -> None:
        pool = self.packet_pool
        if pool is None:
            data = Packet(
                src=self.primary_address,
                dst=self.vip,
                tcp=TCPSegment(
                    src_port=pending.src_port,
                    dst_port=HTTP_PORT,
                    flags=TCPFlag.PSH | TCPFlag.ACK,
                    payload_size=REQUEST_PAYLOAD_SIZE,
                    request_id=pending.request.request_id,
                ),
                created_at=self.simulator.now,
            )
        else:
            data = pool.acquire(
                src=self.primary_address,
                dst=self.vip,
                tcp=pool.acquire_segment(
                    src_port=pending.src_port,
                    dst_port=HTTP_PORT,
                    flags=TCPFlag.PSH | TCPFlag.ACK,
                    payload_size=REQUEST_PAYLOAD_SIZE,
                    request_id=pending.request.request_id,
                ),
                created_at=self.simulator.now,
            )
        self.send(data)

    def _finish(
        self, pending: _PendingQuery, failed: bool, reason: Optional[str] = None
    ) -> None:
        self._cancel_timers(pending)
        pending.outcome.failed = failed
        pending.outcome.failure_reason = reason
        del self._pending[pending.request.request_id]
        if failed:
            self.queries_failed += 1
            if pending.outcome.gave_up:
                self.queries_gave_up += 1
            if self.flight_recorder is not None:
                self.flight_recorder.record(
                    self.simulator.now,
                    "client",
                    "gave-up" if pending.outcome.gave_up else "failed",
                    pending.request.request_id,
                )
        else:
            self.queries_completed += 1
        if self.collector is not None:
            self.collector.record(pending.outcome)

    def sweep_unfinished(self, reason: str = "unfinished at end of run") -> int:
        """Record every still-pending query as a failed outcome.

        Called at the end of a run so that queries whose SYN (or final
        data packet) was lost do not silently leak ``_PendingQuery``
        entries — completion-rate metrics stay conservative.  Returns
        the number of queries swept.
        """
        swept = list(self._pending.values())
        for pending in swept:
            pending.outcome.gave_up = True
            self._finish(pending, failed=True, reason=reason)
        self.queries_swept += len(swept)
        return len(swept)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Number of queries currently awaiting a response."""
        return len(self._pending)

    def outstanding_request_ids(self) -> List[int]:
        """Request ids still in flight (diagnostics for hung runs)."""
        return list(self._pending)

    def __repr__(self) -> str:
        return (
            f"TrafficGeneratorNode(name={self.name!r}, started={self.queries_started}, "
            f"completed={self.queries_completed}, failed={self.queries_failed}, "
            f"in_flight={self.in_flight})"
        )
