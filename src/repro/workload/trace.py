"""Trace container: an ordered collection of requests plus utilities.

Both workload generators produce a :class:`Trace`; the traffic generator
replays it.  Traces can be saved to and loaded from a simple JSON-lines
format so expensive generations (the 24-hour Wikipedia trace) can be
reused across experiments, and they support the transformations the
experiment harness needs: time-slicing, rate scaling (the paper replays
"50 % of the 24-hour trace") and time compression (used by the benchmark
suite to keep run times reasonable while preserving instantaneous load).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.workload.requests import Request, RequestCatalog, sort_by_arrival


@dataclass
class TraceSummary:
    """Aggregate statistics of a trace."""

    num_requests: int
    duration: float
    mean_rate: float
    mean_demand: float
    total_demand: float
    kinds: Dict[str, int]


class Trace:
    """An ordered sequence of :class:`~repro.workload.requests.Request`."""

    def __init__(self, requests: Iterable[Request], name: str = "trace") -> None:
        self._requests: List[Request] = sort_by_arrival(requests)
        self.name = name

    # ------------------------------------------------------------------
    # basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, index: int) -> Request:
        return self._requests[index]

    @property
    def requests(self) -> Sequence[Request]:
        """The requests, sorted by arrival time."""
        return tuple(self._requests)

    @property
    def duration(self) -> float:
        """Time of the last arrival (seconds from trace start)."""
        if not self._requests:
            return 0.0
        return self._requests[-1].arrival_time

    def catalog(self) -> RequestCatalog:
        """A request catalog covering this trace."""
        return RequestCatalog(self._requests)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def summary(self) -> TraceSummary:
        """Aggregate statistics (rate, demand, per-kind counts)."""
        if not self._requests:
            return TraceSummary(0, 0.0, 0.0, 0.0, 0.0, {})
        duration = max(self.duration, 1e-9)
        demands = [request.service_demand for request in self._requests]
        kinds: Dict[str, int] = {}
        for request in self._requests:
            kinds[request.kind] = kinds.get(request.kind, 0) + 1
        return TraceSummary(
            num_requests=len(self._requests),
            duration=duration,
            mean_rate=len(self._requests) / duration,
            mean_demand=float(np.mean(demands)),
            total_demand=float(np.sum(demands)),
            kinds=kinds,
        )

    def arrival_rate_in(self, start: float, end: float) -> float:
        """Mean arrival rate (requests/second) over a time window."""
        if end <= start:
            raise WorkloadError(f"invalid window [{start!r}, {end!r})")
        count = sum(1 for request in self._requests if start <= request.arrival_time < end)
        return count / (end - start)

    # ------------------------------------------------------------------
    # transformations (all return new traces)
    # ------------------------------------------------------------------
    def slice_time(self, start: float, end: float) -> "Trace":
        """Requests arriving in ``[start, end)``, re-based to start at 0."""
        if end <= start:
            raise WorkloadError(f"invalid window [{start!r}, {end!r})")
        selected = [
            Request(
                request_id=request.request_id,
                arrival_time=request.arrival_time - start,
                service_demand=request.service_demand,
                kind=request.kind,
                url=request.url,
                response_size=request.response_size,
                user_id=request.user_id,
            )
            for request in self._requests
            if start <= request.arrival_time < end
        ]
        return Trace(selected, name=f"{self.name}[{start:g}:{end:g}]")

    def thin(self, keep_fraction: float, rng: np.random.Generator) -> "Trace":
        """Keep each request independently with probability ``keep_fraction``.

        This is how "replaying X % of the trace" is expressed: thinning a
        Poisson-like arrival process scales its rate without distorting
        its structure.
        """
        if not 0 < keep_fraction <= 1:
            raise WorkloadError(
                f"keep fraction must be in (0, 1], got {keep_fraction!r}"
            )
        kept = [
            request
            for request in self._requests
            if float(rng.uniform()) < keep_fraction
        ]
        return Trace(kept, name=f"{self.name}@{keep_fraction:g}")

    def compress_time(self, factor: float) -> "Trace":
        """Divide all arrival times by ``factor`` (a 24 h day becomes 24/factor h).

        Compression raises the instantaneous arrival rate by ``factor``;
        it is the experiment harness's job to scale capacity or rates
        accordingly.  The harness instead uses :meth:`resample_diurnal`
        from the Wikipedia generator, which preserves instantaneous
        rates; plain compression is kept for tests and custom studies.
        """
        if factor <= 0:
            raise WorkloadError(f"compression factor must be positive, got {factor!r}")
        compressed = [
            Request(
                request_id=request.request_id,
                arrival_time=request.arrival_time / factor,
                service_demand=request.service_demand,
                kind=request.kind,
                url=request.url,
                response_size=request.response_size,
                user_id=request.user_id,
            )
            for request in self._requests
        ]
        return Trace(compressed, name=f"{self.name}/x{factor:g}")

    def filter_kind(self, kind: str) -> "Trace":
        """Requests of a single kind (e.g. only wiki pages)."""
        return Trace(
            [request for request in self._requests if request.kind == kind],
            name=f"{self.name}:{kind}",
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the trace as JSON lines (one request per line)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for request in self._requests:
                record = {
                    "request_id": request.request_id,
                    "arrival_time": request.arrival_time,
                    "service_demand": request.service_demand,
                    "kind": request.kind,
                    "url": request.url,
                    "response_size": request.response_size,
                }
                if request.user_id is not None:
                    record["user_id"] = request.user_id
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def load(cls, path, name: Optional[str] = None) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        path = Path(path)
        requests: List[Request] = []
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    requests.append(Request(**record))
                except (json.JSONDecodeError, TypeError) as exc:
                    raise WorkloadError(
                        f"invalid trace record at {path}:{line_number}"
                    ) from exc
        return cls(requests, name=name or path.stem)

    def __repr__(self) -> str:
        return f"Trace(name={self.name!r}, requests={len(self._requests)})"
