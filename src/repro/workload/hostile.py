"""Hostile and heavy-tailed workload layer.

The well-behaved workloads (Poisson, stepped, diurnal Wikipedia replay)
never stress the recovery paths the paper's resiliency argument rests
on.  This module supplies the missing adversarial/realism axis in three
pieces:

**Heavy-tailed realism.**  :class:`HeavyTailWorkload` draws a Poisson
arrival stream whose queries are a mixture of one-shot heavy-tailed
requests (bounded-Pareto CPU demand) and keep-alive *user sessions*: a
session is modelled as a single aggregated request whose demand is the
sum of a geometric-length series of lognormal per-request demands, so a
worker is pinned for the whole session exactly like an Apache-prefork
keep-alive connection — without any per-request protocol machinery.
Every arrival is attributed to one of ~10⁵–10⁶ simulated users via a
truncated Zipf draw; users exist only as integer ids on the requests
(numpy arrays end to end, no per-user objects).
:class:`SessionAffinityClient` adds the flow-affinity half: it derives a
stable source port from the user id, so a returning user's 5-tuple — and
therefore their ECMP bucket and (via the LB flow table) their server —
repeats across sessions.

**Adversarial traffic.**  :class:`SynFloodAttacker` injects SYNs with
spoofed sources at Poisson pacing.  The fabric's non-strict mode drops
replies to unbound spoofed addresses silently, so the attack needs no
address claiming: SYN-ACKs and RSTs to the spoofed sources simply
vanish, and half-open connections pin workers/backlog slots until the
server's request timeout fires.  :func:`find_colliding_flow_keys` is the
offline half of the hash-collision attack: it enumerates candidate
5-tuples against :func:`repro.net.ecmp.select_next_hop_name` — the very
function the data-plane router runs — until it has found flows that all
hash onto one chosen ECMP bucket, skewing a single LB instance.

Everything here is seed-deterministic: the generators draw from the
``numpy`` generator they are handed, and the collision search is a pure
function of its arguments.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.net.addressing import IPv6Address
from repro.net.ecmp import HASH_SCHEMES, select_next_hop_name
from repro.net.packet import FlowKey, Packet, TCPFlag, TCPSegment
from repro.net.router import NetworkNode
from repro.net.tcp import EPHEMERAL_PORT_BASE, EPHEMERAL_PORT_RANGE, HTTP_PORT
from repro.sim.engine import Simulator
from repro.workload.client import TrafficGeneratorNode
from repro.workload.requests import KIND_HEAVY, KIND_SESSION, Request
from repro.workload.service_models import (
    BoundedParetoServiceTime,
    LognormalServiceTime,
    ServiceTimeModel,
)
from repro.workload.trace import Trace


# ----------------------------------------------------------------------
# heavy-tailed session workload
# ----------------------------------------------------------------------
class HeavyTailWorkload:
    """Poisson mixture of heavy one-shot requests and keep-alive sessions.

    Parameters
    ----------
    rate:
        Arrival rate (arrivals/second); an arrival is either one heavy
        request or one whole session.
    num_arrivals:
        Number of arrivals to generate.
    heavy_fraction:
        Probability that an arrival is a one-shot heavy-tailed request
        rather than a session.
    heavy_model:
        Service-time model for heavy requests (default: bounded Pareto,
        the classic heavy-tail stand-in).
    request_model:
        Service-time model for the *individual* requests inside a
        session (default: lognormal).
    mean_session_length:
        Mean number of keep-alive requests per session (geometric, so a
        session always has at least one request).
    num_users:
        Size of the simulated user population; user ids are drawn
        Zipf-truncated into ``range(num_users)`` so popular users repeat.
    user_zipf:
        Zipf exponent of the user popularity distribution (> 1).
    size_median / size_sigma / size_cap:
        Lognormal response-size model per in-session request (bytes);
        sizes are capped at ``size_cap`` to keep the tail bounded.
    start_time:
        Offset added to every arrival time.
    """

    def __init__(
        self,
        rate: float,
        num_arrivals: int = 10_000,
        heavy_fraction: float = 0.25,
        heavy_model: Optional[ServiceTimeModel] = None,
        request_model: Optional[ServiceTimeModel] = None,
        mean_session_length: float = 4.0,
        num_users: int = 200_000,
        user_zipf: float = 1.3,
        size_median: int = 16_000,
        size_sigma: float = 1.0,
        size_cap: int = 262_144,
        start_time: float = 0.0,
    ) -> None:
        if rate <= 0:
            raise WorkloadError(f"arrival rate must be positive, got {rate!r}")
        if num_arrivals <= 0:
            raise WorkloadError(
                f"number of arrivals must be positive, got {num_arrivals!r}"
            )
        if not 0 <= heavy_fraction <= 1:
            raise WorkloadError(
                f"heavy fraction must be in [0, 1], got {heavy_fraction!r}"
            )
        if mean_session_length < 1:
            raise WorkloadError(
                f"mean session length must be >= 1, got {mean_session_length!r}"
            )
        if num_users <= 0:
            raise WorkloadError(f"num_users must be positive, got {num_users!r}")
        if user_zipf <= 1:
            raise WorkloadError(
                f"Zipf exponent must be > 1, got {user_zipf!r}"
            )
        if size_median <= 0 or size_cap < size_median:
            raise WorkloadError(
                f"invalid size model: median={size_median!r}, cap={size_cap!r}"
            )
        if size_sigma < 0:
            raise WorkloadError(f"size sigma must be >= 0, got {size_sigma!r}")
        self.rate = rate
        self.num_arrivals = num_arrivals
        self.heavy_fraction = heavy_fraction
        self.heavy_model = heavy_model or BoundedParetoServiceTime()
        self.request_model = request_model or LognormalServiceTime(
            median_seconds=0.04, sigma=0.6
        )
        self.mean_session_length = mean_session_length
        self.num_users = num_users
        self.user_zipf = user_zipf
        self.size_median = size_median
        self.size_sigma = size_sigma
        self.size_cap = size_cap
        self.start_time = start_time

    @classmethod
    def from_load_factor(
        cls, load_factor: float, capacity: float, **kwargs
    ) -> "HeavyTailWorkload":
        """Workload whose offered demand is ``load_factor × capacity``.

        ``capacity`` is the fleet's total CPU capacity in demand-seconds
        per second (``TestbedConfig.total_capacity``); the arrival rate
        is normalised by the *mixture* mean demand per arrival, which a
        session inflates by its mean length.
        """
        if not 0 < load_factor:
            raise WorkloadError(
                f"load factor must be positive, got {load_factor!r}"
            )
        if capacity <= 0:
            raise WorkloadError(f"capacity must be positive, got {capacity!r}")
        probe = cls(rate=1.0, **kwargs)
        rate = load_factor * capacity / probe.mean_arrival_demand()
        return cls(rate=rate, **kwargs)

    def mean_arrival_demand(self) -> float:
        """Expected CPU demand of one arrival (mixture mean)."""
        return (
            self.heavy_fraction * self.heavy_model.mean()
            + (1 - self.heavy_fraction)
            * self.mean_session_length
            * self.request_model.mean()
        )

    def _sample_size(self, rng: np.random.Generator) -> int:
        """One bounded-lognormal response size draw (bytes)."""
        raw = self.size_median * math.exp(
            self.size_sigma * float(rng.standard_normal())
        )
        return max(1, min(self.size_cap, int(round(raw))))

    def generate(self, rng: np.random.Generator) -> Trace:
        """Materialise the trace (requests numbered 1..N)."""
        n = self.num_arrivals
        inter = rng.exponential(1.0 / self.rate, size=n)
        arrivals = self.start_time + np.cumsum(inter)
        is_heavy = rng.uniform(size=n) < self.heavy_fraction
        # Truncated Zipf: ranks fold into the finite user population, so
        # rank 1 (most popular) maps to user 0 and the tail wraps —
        # popularity mass is preserved without materialising the users.
        users = (rng.zipf(self.user_zipf, size=n) - 1) % self.num_users
        lengths = rng.geometric(1.0 / self.mean_session_length, size=n)
        requests: List[Request] = []
        for index in range(n):
            user = int(users[index])
            if is_heavy[index]:
                demand = self.heavy_model.sample(rng)
                size = self._sample_size(rng)
                kind, url = KIND_HEAVY, "/heavy.php"
            else:
                # One aggregated request per keep-alive session: the
                # worker is held for the summed demand, and the summed
                # response models the per-request payloads.
                demand = 0.0
                size = 0
                for _ in range(int(lengths[index])):
                    demand += self.request_model.sample(rng)
                    size += self._sample_size(rng)
                kind, url = KIND_SESSION, "/session.php"
            requests.append(
                Request(
                    request_id=index + 1,
                    arrival_time=float(arrivals[index]),
                    service_demand=float(demand),
                    kind=kind,
                    url=url,
                    response_size=size,
                    user_id=user,
                )
            )
        return Trace(requests, name="heavy-tail")

    def __repr__(self) -> str:
        return (
            f"HeavyTailWorkload(rate={self.rate:.3f}, n={self.num_arrivals}, "
            f"heavy={self.heavy_fraction:g}, users={self.num_users}, "
            f"zipf={self.user_zipf:g})"
        )


@dataclass(frozen=True)
class UserConcentration:
    """Per-user breakdown of a heavy-tail trace (array-computed)."""

    num_requests: int
    num_sessions: int
    num_heavy: int
    distinct_users: int
    #: Fraction of all requests issued by the single most active user.
    top_user_share: float
    max_user_requests: int


def user_concentration(trace: Trace) -> UserConcentration:
    """User-population statistics of a trace carrying ``user_id``s.

    Pure function of the trace (no RNG), so the scenario aggregator can
    recompute it identically in every worker.
    """
    user_ids = np.asarray(
        [
            request.user_id
            for request in trace
            if request.user_id is not None
        ],
        dtype=np.int64,
    )
    if user_ids.size == 0:
        raise WorkloadError(
            f"trace {trace.name!r} carries no user ids; "
            "user_concentration needs a heavy-tail trace"
        )
    num_sessions = sum(1 for request in trace if request.kind == KIND_SESSION)
    num_heavy = sum(1 for request in trace if request.kind == KIND_HEAVY)
    _, counts = np.unique(user_ids, return_counts=True)
    max_requests = int(counts.max())
    return UserConcentration(
        num_requests=len(trace),
        num_sessions=num_sessions,
        num_heavy=num_heavy,
        distinct_users=int(counts.size),
        top_user_share=max_requests / user_ids.size,
        max_user_requests=max_requests,
    )


# ----------------------------------------------------------------------
# keep-alive flow affinity
# ----------------------------------------------------------------------
def stable_user_port(user_id: int) -> int:
    """Deterministic ephemeral source port for a simulated user.

    A returning user reuses the same (address, port) pair, so their
    5-tuple — and therefore their ECMP bucket and flow-table entry —
    repeats across sessions, which is what keep-alive affinity means at
    the network layer.
    """
    digest = hashlib.sha256(f"user-port:{user_id}".encode("utf-8")).digest()
    return EPHEMERAL_PORT_BASE + int.from_bytes(digest[:8], "big") % (
        EPHEMERAL_PORT_RANGE
    )


class SessionAffinityClient(TrafficGeneratorNode):
    """Open-loop client whose source ports follow the user, not a counter.

    Queries carrying a ``user_id`` get the user's stable port unless that
    port is currently held by an in-flight query (the same user browsing
    concurrently, or a rare hash collision between users) — then the
    client falls back to the round-robin allocator, because reusing an
    *active* 5-tuple would alias two connections on the servers.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._active_ports: Set[int] = set()
        self.affinity_hits = 0
        self.affinity_fallbacks = 0

    def _allocate_port(self, request: Request) -> int:
        port: Optional[int] = None
        if request.user_id is not None:
            candidate = stable_user_port(request.user_id)
            if candidate in self._active_ports:
                self.affinity_fallbacks += 1
            else:
                self.affinity_hits += 1
                port = candidate
        if port is None:
            port = self._ports.allocate()
            while port in self._active_ports:
                port = self._ports.allocate()
        self._active_ports.add(port)
        return port

    def _retire_port(self, port: int) -> None:
        # A retry abandons its previous connection's port; release it so
        # the user's stable port (or a fallback) can be reused later.
        self._active_ports.discard(port)

    def _finish(self, pending, failed, reason=None) -> None:
        self._active_ports.discard(pending.src_port)
        super()._finish(pending, failed, reason)


# ----------------------------------------------------------------------
# SYN flood with spoofed-source churn
# ----------------------------------------------------------------------
def spoofed_source_flows(
    vip: IPv6Address,
    source_addresses: Sequence[IPv6Address],
    num_flows: int,
    first_port: int = EPHEMERAL_PORT_BASE,
    dst_port: int = HTTP_PORT,
) -> Tuple[FlowKey, ...]:
    """Deterministic spoofed flow keys cycling over a source pool.

    Consecutive flows rotate through the spoofed sources (source churn),
    bumping the port every full rotation, so no 5-tuple repeats until
    the pool is exhausted.
    """
    if not source_addresses:
        raise WorkloadError("spoofed_source_flows needs at least one source")
    if num_flows <= 0:
        raise WorkloadError(f"num_flows must be positive, got {num_flows!r}")
    flows = []
    for index in range(num_flows):
        src = source_addresses[index % len(source_addresses)]
        port = first_port + (index // len(source_addresses)) % EPHEMERAL_PORT_RANGE
        flows.append(FlowKey(src, port, vip, dst_port))
    return tuple(flows)


class SynFloodAttacker(NetworkNode):
    """Open-loop SYN generator with spoofed sources.

    The attacker owns one real address (so it can inject into the
    fabric) but stamps each SYN with a spoofed source drawn from its
    flow list.  Replies go to the spoofed addresses, which are unbound —
    the LAN fabric in non-strict mode drops them silently — so the
    handshake never completes and the victim holds state until its own
    timeouts fire.  SYNs carry no request id: the servers only look the
    demand up when request *data* arrives, which for these flows never
    happens.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        address: IPv6Address,
        flows: Sequence[FlowKey],
    ) -> None:
        super().__init__(simulator, name)
        if not flows:
            raise WorkloadError("a SYN flood needs at least one flow key")
        self.add_address(address)
        self.flows: Tuple[FlowKey, ...] = tuple(flows)
        self.syns_sent = 0
        self.replies_received = 0

    def schedule_flood(
        self,
        rng: np.random.Generator,
        start_at: float,
        rate: float,
        num_syns: int,
    ) -> float:
        """Schedule ``num_syns`` Poisson-paced SYNs from ``start_at``.

        Flow keys are replayed round-robin from the configured list.
        Returns the time of the last scheduled SYN.
        """
        if rate <= 0:
            raise WorkloadError(f"flood rate must be positive, got {rate!r}")
        if num_syns <= 0:
            raise WorkloadError(
                f"number of SYNs must be positive, got {num_syns!r}"
            )
        offsets = np.cumsum(rng.exponential(1.0 / rate, size=num_syns))
        for index in range(num_syns):
            flow = self.flows[index % len(self.flows)]
            self.simulator.schedule_at(
                start_at + float(offsets[index]),
                self._make_firer(flow),
                label="syn-flood",
            )
        return start_at + float(offsets[-1])

    def _make_firer(self, flow: FlowKey):
        return lambda: self._fire(flow)

    def _fire(self, flow: FlowKey) -> None:
        syn = Packet(
            src=flow.src_address,
            dst=flow.dst_address,
            tcp=TCPSegment(
                src_port=flow.src_port,
                dst_port=flow.dst_port,
                flags=TCPFlag.SYN,
            ),
            created_at=self.simulator.now,
        )
        self.send(syn)
        self.syns_sent += 1

    def handle_packet(self, packet: Packet) -> None:
        # Only possible when a flow spoofs the attacker's own address;
        # counted for diagnostics, otherwise ignored.
        self.replies_received += 1

    def __repr__(self) -> str:
        return (
            f"SynFloodAttacker(name={self.name!r}, flows={len(self.flows)}, "
            f"sent={self.syns_sent})"
        )


# ----------------------------------------------------------------------
# offline hash-collision search
# ----------------------------------------------------------------------
def find_colliding_flow_keys(
    hop_names: Sequence[str],
    target_hop: str,
    vip: IPv6Address,
    source_addresses: Sequence[IPv6Address],
    count: int,
    hash_scheme: str = "rendezvous",
    first_port: int = EPHEMERAL_PORT_BASE,
    dst_port: int = HTTP_PORT,
    max_candidates: int = 1_000_000,
) -> Tuple[FlowKey, ...]:
    """5-tuples that all hash onto ``target_hop`` under ``hash_scheme``.

    A deterministic offline brute force: candidate (source, port) pairs
    are enumerated in a fixed order (source churn first, then ports) and
    kept iff :func:`repro.net.ecmp.select_next_hop_name` — the data
    plane's own selector — maps them to the target.  With *k* hops the
    expected hit rate is 1/k, so the search is cheap; ``max_candidates``
    bounds it against pathological arguments.

    The result is a pure function of the arguments (no RNG), hence
    trivially seed-stable and reproducible across processes.
    """
    if hash_scheme not in HASH_SCHEMES:
        raise WorkloadError(
            f"unknown ECMP hash scheme {hash_scheme!r}: expected one of "
            f"{HASH_SCHEMES}"
        )
    if target_hop not in hop_names:
        raise WorkloadError(
            f"collision target {target_hop!r} is not in the ECMP group "
            f"{sorted(hop_names)!r}"
        )
    if not source_addresses:
        raise WorkloadError("the collision search needs at least one source")
    if count <= 0:
        raise WorkloadError(f"collision count must be positive, got {count!r}")
    found: List[FlowKey] = []
    candidate = 0
    while len(found) < count:
        if candidate >= max_candidates:
            raise WorkloadError(
                f"collision search exhausted {max_candidates} candidates "
                f"with only {len(found)}/{count} hits on {target_hop!r}"
            )
        src = source_addresses[candidate % len(source_addresses)]
        port = (
            first_port
            + (candidate // len(source_addresses)) % EPHEMERAL_PORT_RANGE
        )
        flow = FlowKey(src, port, vip, dst_port)
        if select_next_hop_name(hop_names, flow, hash_scheme) == target_hop:
            found.append(flow)
        candidate += 1
    return tuple(found)
