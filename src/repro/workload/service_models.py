"""Service-time (CPU demand) models.

The paper uses two workloads:

* a synthetic CPU-intensive PHP script "whose duration follows an
  exponential distribution of mean 100 ms" (§V-A), and
* MediaWiki page rendering, where wiki pages hit memcached or MySQL and
  are CPU-intensive while static pages cost "of the order of a
  millisecond" (§VI-C).

The classes here generate per-request CPU demands for those workloads
(and a few extra distributions useful for sensitivity studies).  Each
model draws from the RNG it is given, so workload generation stays
reproducible and independent of the rest of the simulation.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.errors import WorkloadError


class ServiceTimeModel(abc.ABC):
    """Draws per-request CPU demands (in seconds)."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """One CPU demand draw."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected CPU demand, used by load calibration."""

    def describe(self) -> str:
        """One-line description used in experiment manifests."""
        return type(self).__name__


class ExponentialServiceTime(ServiceTimeModel):
    """Exponential demand — the paper's Poisson-workload PHP script."""

    def __init__(self, mean_seconds: float = 0.1) -> None:
        if mean_seconds <= 0:
            raise WorkloadError(f"mean must be positive, got {mean_seconds!r}")
        self._mean = mean_seconds

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def mean(self) -> float:
        return self._mean

    def describe(self) -> str:
        return f"exponential(mean={self._mean * 1000:.0f} ms)"


class DeterministicServiceTime(ServiceTimeModel):
    """Constant demand — used by tests and as a variance ablation."""

    def __init__(self, value_seconds: float) -> None:
        if value_seconds <= 0:
            raise WorkloadError(f"value must be positive, got {value_seconds!r}")
        self._value = value_seconds

    def sample(self, rng: np.random.Generator) -> float:
        return self._value

    def mean(self) -> float:
        return self._value

    def describe(self) -> str:
        return f"deterministic({self._value * 1000:.1f} ms)"


class LognormalServiceTime(ServiceTimeModel):
    """Lognormal demand, parameterised by its median and shape."""

    def __init__(self, median_seconds: float, sigma: float = 0.5) -> None:
        if median_seconds <= 0:
            raise WorkloadError(f"median must be positive, got {median_seconds!r}")
        if sigma <= 0:
            raise WorkloadError(f"sigma must be positive, got {sigma!r}")
        self._mu = math.log(median_seconds)
        self._sigma = sigma

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self._sigma))

    def mean(self) -> float:
        return math.exp(self._mu + self._sigma ** 2 / 2)

    def describe(self) -> str:
        return f"lognormal(median={math.exp(self._mu) * 1000:.0f} ms, sigma={self._sigma})"


class BoundedParetoServiceTime(ServiceTimeModel):
    """Heavy-tailed demand (bounded Pareto), for tail-sensitivity ablations."""

    def __init__(
        self,
        alpha: float = 1.5,
        lower_seconds: float = 0.01,
        upper_seconds: float = 2.0,
    ) -> None:
        if alpha <= 0:
            raise WorkloadError(f"alpha must be positive, got {alpha!r}")
        if not 0 < lower_seconds < upper_seconds:
            raise WorkloadError(
                f"bounds must satisfy 0 < lower < upper, got "
                f"{lower_seconds!r}, {upper_seconds!r}"
            )
        self._alpha = alpha
        self._lower = lower_seconds
        self._upper = upper_seconds

    def sample(self, rng: np.random.Generator) -> float:
        # Inverse-CDF sampling of the bounded Pareto distribution.
        u = float(rng.uniform())
        alpha, low, high = self._alpha, self._lower, self._upper
        ratio = (high / low) ** alpha
        value = low / (1 - u * (1 - 1 / ratio)) ** (1 / alpha)
        return float(value)

    def mean(self) -> float:
        alpha, low, high = self._alpha, self._lower, self._upper
        if alpha == 1.0:
            return low * math.log(high / low) / (1 - low / high)
        numerator = alpha * low ** alpha * (high ** (1 - alpha) - low ** (1 - alpha))
        denominator = (1 - (low / high) ** alpha) * (1 - alpha)
        return numerator / denominator

    def describe(self) -> str:
        return (
            f"bounded-pareto(alpha={self._alpha}, "
            f"range=[{self._lower * 1000:.0f}, {self._upper * 1000:.0f}] ms)"
        )


class WikiPageServiceTime(ServiceTimeModel):
    """Wiki-page rendering cost: cache-hit body with a database-miss tail.

    MediaWiki serves most page views from memcached (cheap) but a
    fraction miss the cache and hit MySQL plus the PHP parser
    (expensive).  The default parameters are the calibration recorded in
    DESIGN.md §6: a lognormal memcached-hit body with a 280 ms median and
    a 15 % MySQL-miss tail with a 700 ms median, chosen so that the peak
    of the replayed diurnal curve drives the 24-core testbed to ~90 %
    utilization — the regime the paper's testbed operates in when it
    replays 50 % of the trace.
    """

    def __init__(
        self,
        hit_median_seconds: float = 0.280,
        hit_sigma: float = 0.35,
        miss_median_seconds: float = 0.700,
        miss_sigma: float = 0.45,
        miss_probability: float = 0.15,
    ) -> None:
        if not 0 <= miss_probability <= 1:
            raise WorkloadError(
                f"miss probability must be in [0, 1], got {miss_probability!r}"
            )
        self._hit = LognormalServiceTime(hit_median_seconds, hit_sigma)
        self._miss = LognormalServiceTime(miss_median_seconds, miss_sigma)
        self._miss_probability = miss_probability

    def sample(self, rng: np.random.Generator) -> float:
        if float(rng.uniform()) < self._miss_probability:
            return self._miss.sample(rng)
        return self._hit.sample(rng)

    def mean(self) -> float:
        return (
            (1 - self._miss_probability) * self._hit.mean()
            + self._miss_probability * self._miss.mean()
        )

    def describe(self) -> str:
        return (
            f"wiki-page(hit={self._hit.describe()}, miss={self._miss.describe()}, "
            f"p_miss={self._miss_probability})"
        )


class StaticPageServiceTime(DeterministicServiceTime):
    """Static-page cost: about a millisecond, as measured in the paper."""

    def __init__(self, value_seconds: float = 0.001) -> None:
        super().__init__(value_seconds)

    def describe(self) -> str:
        return f"static-page({self.mean() * 1000:.1f} ms)"
