"""Request model shared by the workload generators and the servers.

A :class:`Request` is one query the traffic generator will issue: it has
an arrival time, a kind (which workload class it belongs to), a CPU
demand in seconds (the cost the serving application instance will pay),
and a response size.  Generators produce lists of requests; the
:class:`RequestCatalog` indexes them by id so the application servers can
look up the demand of the request they are serving — the simulated
equivalent of "the content of the request determines its cost".

Pinning the demand to the request (instead of drawing it at the server)
is what makes policy comparisons fair: when the same workload is replayed
under ``RR`` and under ``SR4``, every query costs exactly the same amount
of CPU in both runs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import WorkloadError

#: Request kinds used by the built-in workloads.
KIND_PHP = "php"
KIND_WIKI = "wiki"
KIND_STATIC = "static"
#: Kinds used by the hostile/heavy-tailed workloads: a one-shot
#: heavy-tailed request, and an aggregated keep-alive user session.
KIND_HEAVY = "heavy"
KIND_SESSION = "session"

_request_ids = itertools.count(1)


def next_request_id() -> int:
    """Globally unique request id (monotonically increasing).

    The built-in workload generators do **not** use this: they number
    their requests locally (``1..N``) so a trace is fully determined by
    its seed, which the parallel sweep runner relies on.  The helper
    remains for hand-built requests that must not collide with each
    other — but ids it mints live in a different space from generated
    traces, so never mix the two in one catalog.
    """
    return next(_request_ids)


@dataclass
class Request:
    """One query of a workload."""

    request_id: int
    arrival_time: float
    service_demand: float
    kind: str = KIND_PHP
    url: str = "/"
    response_size: int = 8_000
    #: Identity of the (simulated) user issuing the query, or ``None``
    #: for workloads without a user model.  Carried so the keep-alive
    #: session layer can give per-user flow affinity without keeping
    #: per-user objects anywhere.
    user_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise WorkloadError(
                f"request {self.request_id} has negative arrival time "
                f"{self.arrival_time!r}"
            )
        if self.service_demand <= 0:
            raise WorkloadError(
                f"request {self.request_id} has non-positive service demand "
                f"{self.service_demand!r}"
            )
        if self.response_size < 0:
            raise WorkloadError(
                f"request {self.request_id} has negative response size "
                f"{self.response_size!r}"
            )


class RequestCatalog:
    """Index of requests by id, shared between clients and servers.

    The catalog is how a server learns the CPU demand of the request it
    just received: the virtual router passes the request id up, and the
    application instance calls :meth:`demand_of`.
    """

    def __init__(self, requests: Optional[Iterable[Request]] = None) -> None:
        self._requests: Dict[int, Request] = {}
        if requests is not None:
            for request in requests:
                self.add(request)

    def add(self, request: Request) -> None:
        """Register a request; ids must be unique."""
        if request.request_id in self._requests:
            raise WorkloadError(f"duplicate request id {request.request_id!r}")
        self._requests[request.request_id] = request

    def get(self, request_id: int) -> Request:
        """The request with the given id."""
        try:
            return self._requests[request_id]
        except KeyError as exc:
            raise WorkloadError(f"unknown request id {request_id!r}") from exc

    def demand_of(self, request_id: int) -> float:
        """CPU demand (seconds) of a request — the server-side lookup."""
        return self.get(request_id).service_demand

    def response_size_of(self, request_id: int) -> int:
        """Response payload size of a request."""
        return self.get(request_id).response_size

    def __contains__(self, request_id: int) -> bool:
        return request_id in self._requests

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests.values())


def sort_by_arrival(requests: Iterable[Request]) -> List[Request]:
    """Requests sorted by arrival time (stable for equal timestamps)."""
    return sorted(requests, key=lambda request: request.arrival_time)


def total_offered_demand(requests: Iterable[Request]) -> float:
    """Sum of CPU demands — used for load-factor sanity checks."""
    return sum(request.service_demand for request in requests)
