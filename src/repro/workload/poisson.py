"""Poisson workload generator (paper §V).

The paper's synthetic workload is an open-loop Poisson stream of HTTP
queries with rate λ, each query running a CPU-bound PHP script whose
duration is exponentially distributed with mean 100 ms.  A bootstrap step
identifies λ₀, the maximum rate the 12-server swarm can sustain; the
experiments then sweep the normalized request rate ρ = λ/λ₀ across
(0, 1).

:class:`PoissonWorkload` generates such traces.  The rate can be given
either directly (``rate``) or as a normalized load factor (``rho``
together with ``saturation_rate``), matching how the experiments are
parameterised.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.workload.requests import KIND_PHP, Request
from repro.workload.service_models import ExponentialServiceTime, ServiceTimeModel
from repro.workload.trace import Trace


class PoissonWorkload:
    """Open-loop Poisson stream of CPU-bound queries.

    Parameters
    ----------
    rate:
        Arrival rate λ in queries per second.
    num_queries:
        Number of queries to generate (the paper uses batches of 20 000).
    service_model:
        Per-query CPU demand model; defaults to the paper's
        exponential(100 ms).
    start_time:
        Arrival time of the first inter-arrival interval's origin.
    """

    def __init__(
        self,
        rate: float,
        num_queries: int = 20_000,
        service_model: Optional[ServiceTimeModel] = None,
        start_time: float = 0.0,
    ) -> None:
        if rate <= 0:
            raise WorkloadError(f"arrival rate must be positive, got {rate!r}")
        if num_queries <= 0:
            raise WorkloadError(f"num_queries must be positive, got {num_queries!r}")
        self.rate = rate
        self.num_queries = num_queries
        self.service_model = service_model or ExponentialServiceTime(0.1)
        self.start_time = start_time

    @classmethod
    def from_load_factor(
        cls,
        rho: float,
        saturation_rate: float,
        num_queries: int = 20_000,
        service_model: Optional[ServiceTimeModel] = None,
    ) -> "PoissonWorkload":
        """Build a workload from a normalized load factor ρ = λ/λ₀."""
        if rho <= 0:
            raise WorkloadError(f"load factor must be positive, got {rho!r}")
        if saturation_rate <= 0:
            raise WorkloadError(
                f"saturation rate must be positive, got {saturation_rate!r}"
            )
        return cls(
            rate=rho * saturation_rate,
            num_queries=num_queries,
            service_model=service_model,
        )

    def generate(self, rng: np.random.Generator) -> Trace:
        """Generate the trace of arrivals and CPU demands.

        Request ids are local to the trace (``1..num_queries``), so the
        trace — ids included — is fully determined by the generator's
        parameters and ``rng`` seed.  The parallel sweep runner relies
        on this to regenerate identical traces inside pool workers.
        """
        inter_arrivals = rng.exponential(1.0 / self.rate, size=self.num_queries)
        arrival_times = self.start_time + np.cumsum(inter_arrivals)
        requests = [
            Request(
                request_id=index + 1,
                arrival_time=float(arrival_times[index]),
                service_demand=self.service_model.sample(rng),
                kind=KIND_PHP,
                url="/compute.php",
            )
            for index in range(self.num_queries)
        ]
        return Trace(requests, name=f"poisson-{self.rate:g}qps")

    def expected_duration(self) -> float:
        """Expected length of the generated trace, in seconds."""
        return self.num_queries / self.rate

    def offered_load(self, total_cores: int) -> float:
        """Offered CPU load as a fraction of ``total_cores`` capacity."""
        if total_cores <= 0:
            raise WorkloadError(f"total_cores must be positive, got {total_cores!r}")
        return self.rate * self.service_model.mean() / total_cores

    def __repr__(self) -> str:
        return (
            f"PoissonWorkload(rate={self.rate:g}, queries={self.num_queries}, "
            f"service={self.service_model.describe()})"
        )
