"""Stepped-rate Poisson workload: flash crowds and load steps.

The flash-crowd scenario needs an arrival process whose rate *jumps*:
a steady baseline, a sudden overload spike (the crowd arriving), and a
recovery phase.  A Poisson process with piecewise-constant rate is
exactly that, and — because the exponential inter-arrival distribution
is memoryless — it can be generated exactly by running an independent
Poisson stream inside each phase: arrivals within ``[start, end)`` at
rate λ are the truncated cumulative sums of exponential(1/λ) draws.

:class:`SteppedPoissonWorkload` generalises
:class:`~repro.workload.poisson.PoissonWorkload` to any such schedule of
:class:`RatePhase` steps.  Like every generator in this package it is a
pure function of its parameters and the RNG seed, and numbers requests
``1..N`` trace-locally, so pool workers can regenerate identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workload.requests import KIND_PHP, Request
from repro.workload.service_models import ExponentialServiceTime, ServiceTimeModel
from repro.workload.trace import Trace


@dataclass(frozen=True)
class RatePhase:
    """One constant-rate step of a stepped arrival schedule."""

    duration: float
    rate: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise WorkloadError(
                f"phase duration must be positive, got {self.duration!r}"
            )
        if self.rate <= 0:
            raise WorkloadError(f"phase rate must be positive, got {self.rate!r}")


class SteppedPoissonWorkload:
    """Open-loop Poisson stream with a piecewise-constant rate schedule.

    Parameters
    ----------
    phases:
        The rate schedule, replayed in order from ``start_time``.
    service_model:
        Per-query CPU demand model; defaults to the paper's
        exponential(100 ms).
    start_time:
        Trace time at which the first phase begins.
    """

    def __init__(
        self,
        phases: Sequence[RatePhase],
        service_model: Optional[ServiceTimeModel] = None,
        start_time: float = 0.0,
    ) -> None:
        if not phases:
            raise WorkloadError("a stepped workload needs at least one phase")
        self.phases: Tuple[RatePhase, ...] = tuple(phases)
        self.service_model = service_model or ExponentialServiceTime(0.1)
        self.start_time = start_time

    @property
    def total_duration(self) -> float:
        """Length of the whole schedule, in seconds."""
        return sum(phase.duration for phase in self.phases)

    def expected_queries(self) -> float:
        """Expected number of arrivals over the schedule."""
        return sum(phase.duration * phase.rate for phase in self.phases)

    def phase_boundaries(self) -> List[float]:
        """Trace times at which each phase begins (plus the final end)."""
        boundaries = [self.start_time]
        for phase in self.phases:
            boundaries.append(boundaries[-1] + phase.duration)
        return boundaries

    def generate(self, rng: np.random.Generator) -> Trace:
        """Generate the trace of arrivals and CPU demands.

        Each phase contributes the arrivals of an independent Poisson
        stream truncated to the phase window, which is exact for a
        piecewise-constant-rate Poisson process.  Request ids are local
        to the trace (``1..N``).
        """
        arrival_times: List[float] = []
        phase_start = self.start_time
        for phase in self.phases:
            phase_end = phase_start + phase.duration
            time = phase_start
            while True:
                time += float(rng.exponential(1.0 / phase.rate))
                if time >= phase_end:
                    break
                arrival_times.append(time)
            phase_start = phase_end
        requests = [
            Request(
                request_id=index + 1,
                arrival_time=arrival_time,
                service_demand=self.service_model.sample(rng),
                kind=KIND_PHP,
                url="/compute.php",
            )
            for index, arrival_time in enumerate(arrival_times)
        ]
        rates = "/".join(f"{phase.rate:g}" for phase in self.phases)
        return Trace(requests, name=f"stepped-poisson-{rates}qps")

    def __repr__(self) -> str:
        steps = ", ".join(
            f"{phase.rate:g}qps x {phase.duration:g}s" for phase in self.phases
        )
        return f"SteppedPoissonWorkload([{steps}], service={self.service_model.describe()})"
