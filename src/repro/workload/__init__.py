"""Workload generators and the traffic-generator client.

Provides the paper's two workloads — the Poisson stream of CPU-bound PHP
queries (§V) and the 24-hour Wikipedia replay (§VI, synthesised per the
substitution recorded in DESIGN.md) — plus the request/trace data model
and the open-loop client node that replays traces against the load
balancer.
"""

from repro.workload.client import (
    OutcomeSink,
    RequestOutcome,
    TrafficGeneratorNode,
)
from repro.workload.diurnal import DiurnalWorkload
from repro.workload.flash_crowd import RatePhase, SteppedPoissonWorkload
from repro.workload.hostile import (
    HeavyTailWorkload,
    SessionAffinityClient,
    SynFloodAttacker,
    UserConcentration,
    find_colliding_flow_keys,
    spoofed_source_flows,
    stable_user_port,
    user_concentration,
)
from repro.workload.poisson import PoissonWorkload
from repro.workload.requests import (
    KIND_HEAVY,
    KIND_PHP,
    KIND_SESSION,
    KIND_STATIC,
    KIND_WIKI,
    Request,
    RequestCatalog,
    next_request_id,
    sort_by_arrival,
    total_offered_demand,
)
from repro.workload.service_models import (
    BoundedParetoServiceTime,
    DeterministicServiceTime,
    ExponentialServiceTime,
    LognormalServiceTime,
    ServiceTimeModel,
    StaticPageServiceTime,
    WikiPageServiceTime,
)
from repro.workload.trace import Trace, TraceSummary
from repro.workload.wikipedia import (
    DiurnalRateCurve,
    SECONDS_PER_DAY,
    SyntheticWikipediaWorkload,
)

__all__ = [
    "Request",
    "RequestCatalog",
    "next_request_id",
    "sort_by_arrival",
    "total_offered_demand",
    "KIND_PHP",
    "KIND_WIKI",
    "KIND_STATIC",
    "KIND_HEAVY",
    "KIND_SESSION",
    "HeavyTailWorkload",
    "SessionAffinityClient",
    "SynFloodAttacker",
    "UserConcentration",
    "find_colliding_flow_keys",
    "spoofed_source_flows",
    "stable_user_port",
    "user_concentration",
    "ServiceTimeModel",
    "ExponentialServiceTime",
    "DeterministicServiceTime",
    "LognormalServiceTime",
    "BoundedParetoServiceTime",
    "WikiPageServiceTime",
    "StaticPageServiceTime",
    "Trace",
    "TraceSummary",
    "PoissonWorkload",
    "RatePhase",
    "SteppedPoissonWorkload",
    "DiurnalWorkload",
    "DiurnalRateCurve",
    "SyntheticWikipediaWorkload",
    "SECONDS_PER_DAY",
    "TrafficGeneratorNode",
    "RequestOutcome",
    "OutcomeSink",
]
