"""Partitioned intra-run simulation: one run, several simulator processes.

:mod:`repro.experiments.runner` parallelises *across* independent runs;
this module parallelises *within* one run.  The testbed is sliced at its
natural boundary — the front-end ECMP stage that spreads flows over
load-balancer/server pods — into partitions.  Each partition owns its
own :class:`~repro.sim.engine.Simulator` and executes its share of the
run; partitions exchange timestamped items as pickled
:class:`~repro.net.channel.BatchFrame` messages over ``multiprocessing``
pipes.

Synchronization is conservative lookahead: with a boundary latency of
``L``, a partition that has executed every event up to time ``T``
(:meth:`~repro.sim.engine.Simulator.run_window`) may promise the
watermark ``T`` — anything it emits later is at least ``L`` in the
future, so no peer waiting on the watermark can receive a straggler in
its past.  The driver runs each partition in windows and flushes one
frame per window (empty frames are null messages that only advance the
watermark).

Determinism does not depend on scheduling: the coordinator merges all
frames by ``(time, partition index, per-partition emission order)``
(:func:`~repro.net.channel.merge_frames`), which is a pure function of
what the partitions emitted.  Running every partition serially in one
process (``processes=1``) goes through the *same* worker code and the
same merge, so partitioned and serial runs are bit-identical by
construction — pinned by the golden tests of the ``scale`` scenario
family and the hypothesis property test in
``tests/test_partition_property.py``.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.net.channel import (
    BatchFrame,
    CollectingSender,
    FrameSender,
    MergedItem,
    PipeChannelReceiver,
    PipeChannelSender,
    merge_frames,
)

#: A partition worker: builds the partition's world from the task
#: payload, runs its simulator in lookahead windows, stages timestamped
#: items on the sender, and closes it (optionally with a summary dict).
#: Must be a module-level callable so it pickles to worker processes.
PartitionWorker = Callable[["PartitionTask", FrameSender], None]

#: Summary key carrying a worker failure back to the coordinator.
ERROR_KEY = "error"


class PartitionSupervisionError(SimulationError):
    """A partition stalled past the heartbeat deadline (or crashed).

    Carries the indices of the offending partitions and whatever
    closing-frame summaries the healthy partitions had already
    delivered, so callers can report partial progress instead of
    blocking forever on a hung child.
    """

    def __init__(
        self,
        message: str,
        partitions: Sequence[int],
        summaries: Optional[Dict[int, Dict[str, Any]]] = None,
    ) -> None:
        super().__init__(message)
        self.partitions = tuple(partitions)
        self.summaries: Dict[int, Dict[str, Any]] = dict(summaries or {})


@dataclass(frozen=True)
class PartitionTask:
    """One partition's slice of the run.

    ``payload`` is an opaque picklable description of the slice (for the
    ``scale`` family: the scenario config plus the pod index).
    """

    index: int
    payload: Any = None


@dataclass
class PartitionResult:
    """The merged outcome of a partitioned run."""

    #: Every emitted item in the deterministic merged order.
    items: List[MergedItem]
    #: Closing-frame summaries keyed by partition index.
    summaries: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    def summary_total(self, key: str) -> float:
        """Sum a numeric summary field across partitions (missing = 0)."""
        return sum(summary.get(key, 0) for summary in self.summaries.values())


def window_ends(horizon: float, lookahead: float, max_windows: int = 64) -> List[float]:
    """Window boundaries for a run of length ``horizon``.

    The conservative rule only requires windows of at least the boundary
    lookahead; anything larger is also safe (it just batches more per
    frame).  Since a datacenter-scale lookahead (~µs) against a
    seconds-long run would mean millions of synchronization points, the
    driver coalesces windows to at most ``max_windows`` per run — the
    watermark still moves monotonically and every item still lands in a
    frame whose watermark covers it.
    """
    if horizon <= 0:
        return []
    if lookahead < 0:
        raise SimulationError(f"lookahead must be non-negative, got {lookahead!r}")
    if max_windows < 1:
        raise SimulationError(f"max_windows must be positive, got {max_windows!r}")
    window = max(lookahead, horizon / max_windows)
    ends: List[float] = []
    count = 1
    while True:
        end = window * count
        if end >= horizon:
            ends.append(horizon)
            return ends
        ends.append(end)
        count += 1


def run_partition_serially(
    worker: PartitionWorker, task: PartitionTask
) -> List[BatchFrame]:
    """Run one partition in-process and return its emitted frames."""
    sender = CollectingSender(task.index)
    worker(task, sender)
    sender.close()
    return sender.frames


def _partition_process_main(
    worker: PartitionWorker, assignments: Sequence
) -> None:
    """Child-process entry: run assigned partitions, one pipe each."""
    for task, connection in assignments:
        sender = PipeChannelSender(connection, task.index)
        try:
            worker(task, sender)
            sender.close()
        except BaseException as exc:  # noqa: BLE001 - relayed to the parent
            # A worker that dies silently would deadlock the coordinator
            # waiting for this partition's sentinel; relay the failure
            # through the sentinel's summary instead.
            sender.close(summary={ERROR_KEY: f"{type(exc).__name__}: {exc}"})
            raise
        finally:
            connection.close()


def run_partitioned(
    worker: PartitionWorker,
    tasks: Sequence[PartitionTask],
    processes: int = 1,
    mp_context: Optional[multiprocessing.context.BaseContext] = None,
    heartbeat_timeout: Optional[float] = None,
) -> PartitionResult:
    """Execute every partition task and merge the emitted frames.

    ``processes=1`` runs all partitions serially in this process (no
    pipes, no pickling); ``processes=N`` distributes partitions
    round-robin over N worker processes speaking pickled frames — at
    most ``len(tasks)`` of them, so extra processes never spawn idle
    workers.  Both paths run the same worker code and the same
    deterministic merge, so the result is identical for any
    ``processes`` value.

    ``heartbeat_timeout`` supervises the multi-process path: a partition
    that sends nothing (not even a window's null frame) for that many
    wall-clock seconds is declared hung, its siblings are terminated,
    and :class:`PartitionSupervisionError` is raised naming the stalled
    partitions with the summaries collected so far attached — instead of
    the coordinator blocking in its drain loop forever.  ``None`` (the
    default) disables supervision.
    """
    if not tasks:
        return PartitionResult(items=[])
    indices = [task.index for task in tasks]
    if len(set(indices)) != len(indices):
        raise SimulationError(f"partition indices must be unique, got {indices!r}")
    if processes < 1:
        raise SimulationError(f"processes must be positive, got {processes!r}")
    if heartbeat_timeout is not None and heartbeat_timeout <= 0:
        raise SimulationError(
            f"heartbeat_timeout must be positive, got {heartbeat_timeout!r}"
        )

    frames: List[BatchFrame] = []
    if processes == 1 or len(tasks) == 1:
        for task in tasks:
            frames.extend(run_partition_serially(worker, task))
    else:
        context = mp_context if mp_context is not None else multiprocessing.get_context()
        num_processes = min(processes, len(tasks))
        plans: List[List] = [[] for _ in range(num_processes)]
        receivers: List[PipeChannelReceiver] = []
        for position, task in enumerate(tasks):
            receive_end, send_end = context.Pipe(duplex=False)
            receivers.append(PipeChannelReceiver(receive_end))
            plans[position % num_processes].append((task, send_end))
        children = [
            context.Process(
                target=_partition_process_main, args=(worker, plan), daemon=True
            )
            for plan in plans
        ]
        for child in children:
            child.start()
        # The parent's copies of the send ends must be closed, or EOF on
        # a crashed child would never be observable.
        for plan in plans:
            for _, send_end in plan:
                send_end.close()
        try:
            frames = _drain(receivers, indices, heartbeat_timeout)
        except BaseException:
            # A supervision (or any other) failure must not leave the
            # finally-block joining a hung child forever.
            for child in children:
                if child.is_alive():
                    child.terminate()
            raise
        finally:
            for child in children:
                child.join()
            for receiver in receivers:
                receiver.connection.close()

    result = PartitionResult(items=merge_frames(frames))
    for frame in frames:
        if frame.final and frame.summary is not None:
            result.summaries[frame.partition] = frame.summary
    failures = {
        partition: summary[ERROR_KEY]
        for partition, summary in result.summaries.items()
        if ERROR_KEY in summary
    }
    if failures:
        raise SimulationError(f"partition worker(s) failed: {failures!r}")
    return result


def _drain(
    receivers: Sequence[PipeChannelReceiver],
    partitions: Sequence[int],
    heartbeat_timeout: Optional[float] = None,
) -> List[BatchFrame]:
    """Collect frames until every receiver has delivered its sentinel.

    Like :func:`repro.net.channel.drain_receivers`, but a crashed child
    (EOF before the sentinel) raises :class:`SimulationError` naming the
    partitions still open instead of a bare channel error; and when
    ``heartbeat_timeout`` is set, a partition heard from less recently
    than that many wall-clock seconds raises
    :class:`PartitionSupervisionError` (every frame — even a window's
    empty null message — counts as a heartbeat).
    """
    from multiprocessing.connection import wait

    by_connection = {receiver.connection: receiver for receiver in receivers}
    partition_of = {
        receiver.connection: partition
        for receiver, partition in zip(receivers, partitions)
    }
    open_connections = list(by_connection)
    frames: List[BatchFrame] = []
    last_heard = {connection: time.monotonic() for connection in open_connections}
    while open_connections:
        ready = wait(open_connections, timeout=heartbeat_timeout)
        now = time.monotonic()
        for connection in ready:
            last_heard[connection] = now
            try:
                frame = by_connection[connection].recv()
            except EOFError:
                raise SimulationError(
                    "a partition process exited before sending its sentinel "
                    f"frame ({len(open_connections)} partition(s) still open)"
                ) from None
            frames.append(frame)
            if frame.final:
                open_connections.remove(connection)
        if heartbeat_timeout is None:
            continue
        stalled = sorted(
            partition_of[connection]
            for connection in open_connections
            if now - last_heard[connection] > heartbeat_timeout
        )
        if stalled:
            summaries = {
                frame.partition: frame.summary
                for frame in frames
                if frame.final and frame.summary is not None
            }
            names = ", ".join(str(partition) for partition in stalled)
            raise PartitionSupervisionError(
                f"partition(s) {names} sent no frame for more than "
                f"{heartbeat_timeout:g}s (hung or crashed worker); "
                f"{len(summaries)} partition(s) had already completed",
                partitions=stalled,
                summaries=summaries,
            )
    return frames
