"""Discrete-event simulation engine.

The engine is a classic event-list simulator: callbacks are scheduled at
absolute or relative simulated times, stored on a binary heap, and
executed in time order.  It is the substrate underneath the whole
reproduction — the network links, TCP handshakes, worker-thread service
completions, and workload arrival processes are all engine events.

Design points
-------------
* **Stable ordering.**  Events at the same timestamp run in scheduling
  order (FIFO), via a monotonically increasing sequence number.  This
  makes simulations deterministic, which the experiment harness and the
  property-based tests rely on.
* **Cancellation without heap surgery.**  :meth:`EventHandle.cancel`
  marks the event dead; the main loop skips dead events when they are
  popped.  This is O(1) and keeps the heap simple.  When dead entries
  come to dominate — more than half of a non-trivial heap, which
  happens in long replays that churn timers (re-attached samplers, LB
  kill/add recovery retries) — the heap is compacted in one O(n) pass,
  so cancelled events cannot pin memory until their timestamp is
  finally popped.
* **No wall-clock coupling.**  The engine never sleeps; a 24-hour
  Wikipedia replay runs as fast as Python can drain the event heap.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.errors import SchedulingError, SimulationError
from repro.sim.clock import SimulationClock
from repro.sim.random_streams import RandomStreams

EventCallback = Callable[[], None]

#: Heaps smaller than this are never compacted — a linear sweep of a
#: few dozen entries costs more bookkeeping than the dead entries do.
_COMPACTION_MIN_HEAP = 64


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry: ordered by (time, sequence number)."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Set once the event has left the heap (executed or discarded), so
    #: a late ``cancel()`` does not count toward the compaction trigger.
    done: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel."""

    __slots__ = ("_event", "_simulator")

    def __init__(
        self, event: _ScheduledEvent, simulator: Optional["Simulator"] = None
    ) -> None:
        self._event = event
        self._simulator = simulator

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label given at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is a no-op."""
        if self._event.cancelled:
            return
        self._event.cancelled = True
        if self._simulator is not None and not self._event.done:
            self._simulator._note_cancelled()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(time={self.time!r}, label={self.label!r}, {state})"


class Simulator:
    """Discrete-event simulator with a shared clock and RNG streams.

    Parameters
    ----------
    seed:
        Root seed for the named random streams (see
        :class:`~repro.sim.random_streams.RandomStreams`).
    start_time:
        Initial simulated time, in seconds.
    """

    def __init__(self, seed: Optional[int] = 0, start_time: float = 0.0) -> None:
        self.clock = SimulationClock(start_time)
        self.streams = RandomStreams(seed)
        self._heap: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._cancelled_on_heap = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.clock.now:
            raise SchedulingError(
                f"cannot schedule event {label!r} at {time!r}, "
                f"which is before current time {self.clock.now!r}"
            )
        event = _ScheduledEvent(
            time=float(time),
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return EventHandle(event, self)

    def schedule_in(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` after a relative ``delay`` (seconds)."""
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule event {label!r} with negative delay {delay!r}"
            )
        return self.schedule_at(self.clock.now + delay, callback, label)

    # ------------------------------------------------------------------
    # heap hygiene
    # ------------------------------------------------------------------
    def _discard(self, event: _ScheduledEvent) -> None:
        """Bookkeeping for an event that just left the heap."""
        event.done = True
        if event.cancelled:
            self._cancelled_on_heap -= 1

    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel` for an on-heap event."""
        self._cancelled_on_heap += 1
        self._maybe_compact_heap()

    def _maybe_compact_heap(self) -> None:
        """Rebuild the heap once cancelled entries exceed half of it.

        Long replays that churn timers (re-attached samplers, LB
        kill/add recovery) otherwise keep dead events on the heap until
        their timestamp is popped; the rebuild is one O(n) pass and
        preserves the (time, sequence) order of every live event, so it
        never changes simulation results.
        """
        if len(self._heap) < _COMPACTION_MIN_HEAP:
            return
        if self._cancelled_on_heap * 2 <= len(self._heap):
            return
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_on_heap = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time.
            ``None`` runs until the event heap is empty.
        max_events:
            Safety valve: stop after executing this many events.

        Returns
        -------
        float
            The simulated time when the run stopped.  ``run(until=T)``
            returns ``T`` whenever every live event at or before ``T``
            has been executed — including runs ended by ``max_events``
            or :meth:`stop` after the last such event.  A run cut short
            with work still pending at or before the horizon returns
            the time of the last executed event instead, so the
            unprocessed events remain in the clock's future.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed_this_run = 0
        try:
            while self._heap:
                if self._stopped:
                    break
                if max_events is not None and executed_this_run >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    self._discard(heapq.heappop(self._heap))
                    continue
                if until is not None and event.time > until:
                    break
                self._discard(heapq.heappop(self._heap))
                self.clock.advance(event.time)
                event.callback()
                self._events_executed += 1
                executed_this_run += 1
            # Honour `run(until=T) == T` whenever no live event remains
            # at or before the horizon, regardless of why the loop ended
            # (heap drained, next event past the horizon, `max_events`
            # exhausted, or `stop()` after the last pre-horizon event).
            if until is not None and until > self.clock.now:
                next_time = self.peek_next_time()
                if next_time is None or next_time > until:
                    self.clock.advance(until)
        finally:
            self._running = False
        return self.clock.now

    def step(self) -> bool:
        """Execute exactly one pending event.

        Returns ``True`` if an event was executed, ``False`` if the heap
        is empty (cancelled events are discarded silently).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            self._discard(event)
            if event.cancelled:
                continue
            self.clock.advance(event.time)
            event.callback()
            self._events_executed += 1
            return True
        return False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def peek_next_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if none are pending."""
        while self._heap and self._heap[0].cancelled:
            self._discard(heapq.heappop(self._heap))
        if not self._heap:
            return None
        return self._heap[0].time

    def drain(self) -> int:
        """Discard all pending events; returns how many were discarded."""
        count = 0
        for event in self._heap:
            event.done = True
            if not event.cancelled:
                count += 1
        self._heap.clear()
        self._cancelled_on_heap = 0
        return count

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now!r}, pending={self.pending_events}, "
            f"executed={self._events_executed})"
        )


@dataclass
class PeriodicTask:
    """Helper that re-schedules a callback at a fixed period.

    Used by components that need a heartbeat (e.g. the metrics sampler
    that records per-server load every ``interval`` seconds for Figure 4).
    """

    simulator: Simulator
    interval: float
    callback: EventCallback
    label: str = "periodic"
    _handle: Optional[EventHandle] = field(default=None, init=False, repr=False)
    _active: bool = field(default=False, init=False, repr=False)

    def start(self, first_delay: Optional[float] = None) -> None:
        """Start ticking; the first tick fires after ``first_delay`` (default: one interval)."""
        if self.interval <= 0:
            raise SchedulingError(
                f"periodic task {self.label!r} needs a positive interval, "
                f"got {self.interval!r}"
            )
        if self._active:
            return
        self._active = True
        delay = self.interval if first_delay is None else first_delay
        self._handle = self.simulator.schedule_in(delay, self._tick, self.label)

    def stop(self) -> None:
        """Stop ticking; pending tick (if any) is cancelled."""
        self._active = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def active(self) -> bool:
        """Whether the task is currently scheduled to keep ticking."""
        return self._active

    def _tick(self) -> None:
        if not self._active:
            return
        self.callback()
        if self._active:
            self._handle = self.simulator.schedule_in(
                self.interval, self._tick, self.label
            )


def exponential_delay(rng: Any, mean: float) -> float:
    """Draw an exponentially distributed delay with the given mean.

    Thin wrapper used throughout the workload generators so the
    distribution used for "exponential" is defined in exactly one place.
    """
    if mean <= 0:
        raise SimulationError(f"exponential mean must be positive, got {mean!r}")
    return float(rng.exponential(mean))
