"""Discrete-event simulation engine.

The engine is a classic event-list simulator: callbacks are scheduled at
absolute or relative simulated times, stored on a binary heap, and
executed in time order.  It is the substrate underneath the whole
reproduction — the network links, TCP handshakes, worker-thread service
completions, and workload arrival processes are all engine events.

Design points
-------------
* **Stable ordering.**  Events at the same timestamp run in scheduling
  order (FIFO), via a monotonically increasing sequence number.  This
  makes simulations deterministic, which the experiment harness and the
  property-based tests rely on.
* **Tuple heap entries.**  The heap stores ``(time, sequence, event)``
  tuples, so heap sifts compare in C (time first, unique sequence as the
  tie-break; the event object is never compared).  A full replay pushes
  and pops one entry per event, and the comparison-heavy dataclass heap
  this replaced was the single hottest function of a run.
* **Cancellation without heap surgery.**  :meth:`EventHandle.cancel`
  marks the event dead; the main loop skips dead events when they are
  popped.  This is O(1) and keeps the heap simple.  When dead entries
  come to dominate — more than half of a non-trivial heap, which
  happens in long replays that churn timers (re-attached samplers, LB
  kill/add recovery retries) — the heap is compacted in one O(n) pass,
  so cancelled events cannot pin memory until their timestamp is
  finally popped.
* **Callbacks are released eagerly.**  An event that leaves the heap
  (executed or discarded) drops its callback reference, so an
  :class:`EventHandle` kept around by a component cannot pin the
  callback's closure — and everything it captured, packets included —
  for the rest of a replay.
* **Batched dispatch.**  The run loop (factored into
  :mod:`repro.sim._fastloop` so it can optionally be compiled) drains
  all ready entries sharing the current timestamp in one pass — one
  clock advance and one cancelled-entry sweep per batch — with a
  singleton fast path for the common case of a unique timestamp.
  :attr:`Simulator.batch_stats` reports the observed batch-size
  distribution.
* **No wall-clock coupling.**  The engine never sleeps; a 24-hour
  Wikipedia replay runs as fast as Python can drain the event heap.

Setting ``REPRO_COMPILED=1`` in the environment makes this module
prefer a compiled build of the run loop (``repro.sim._fastloop_c``,
produced by ``make build-fast``) and fall back to the pure-Python loop
when no build is present.  :data:`COMPILED_LOOP` reports which one is
active.
"""

from __future__ import annotations

import heapq
import itertools
import os
from dataclasses import dataclass, field
from math import isfinite
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SchedulingError, SimulationError
from repro.sim.clock import SimulationClock
from repro.sim.random_streams import RandomStreams

if os.environ.get("REPRO_COMPILED") == "1":
    try:
        from repro.sim import _fastloop_c as _fastloop  # type: ignore[no-redef]
    except ImportError:  # no compiled build present: pure Python is canonical
        from repro.sim import _fastloop
else:
    from repro.sim import _fastloop

_run_loop = _fastloop.run_loop
#: True when the mypyc-compiled run loop is active (``REPRO_COMPILED=1``
#: and ``make build-fast`` has produced ``repro.sim._fastloop_c``).
COMPILED_LOOP: bool = bool(getattr(_fastloop, "COMPILED", False))

EventCallback = Callable[[], None]

#: Heaps smaller than this are never compacted — a linear sweep of a
#: few dozen entries costs more bookkeeping than the dead entries do.
_COMPACTION_MIN_HEAP = 64


class _ScheduledEvent:
    """Internal event record carried inside a ``(time, seq, event)`` entry.

    The record itself is never compared (the unique sequence number
    settles every tie before tuple comparison reaches it); it exists so
    handles can observe and cancel the event after it was pushed.
    """

    __slots__ = ("time", "sequence", "callback", "label", "cancelled", "done")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Optional[EventCallback],
        label: str = "",
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.cancelled = False
        #: Set once the event has left the heap (executed or discarded),
        #: so a late ``cancel()`` does not count toward the compaction
        #: trigger.
        self.done = False


#: The heap entry type: time, scheduling sequence number, event record.
_HeapEntry = Tuple[float, int, _ScheduledEvent]


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`, usable to cancel."""

    __slots__ = ("_event", "_simulator")

    def __init__(
        self, event: _ScheduledEvent, simulator: Optional["Simulator"] = None
    ) -> None:
        self._event = event
        self._simulator = simulator

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label given at scheduling time."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is a no-op."""
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        if event.done:
            return
        # Still on the heap: the callback can be dropped right away (the
        # run loop will skip the entry), and the owning simulator keeps
        # count so it can decide when compaction pays off.
        event.callback = None
        if self._simulator is not None:
            self._simulator._note_cancelled()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(time={self.time!r}, label={self.label!r}, {state})"


@dataclass(frozen=True)
class BatchStats:
    """Batch-size distribution observed by the run loop so far.

    A *batch* is one clock advance: either a singleton (an event whose
    timestamp no other ready event shared — the overwhelmingly common
    case in packet-grain replays) or a same-timestamp group executed in
    one pass.  ``size_counts`` maps batch size to occurrence count,
    singletons included under size 1.
    """

    batches: int
    events: int
    max_size: int
    size_counts: Dict[int, int]

    @property
    def mean_size(self) -> float:
        """Average events per clock advance (0.0 before any event ran)."""
        if self.batches == 0:
            return 0.0
        return self.events / self.batches


class Simulator:
    """Discrete-event simulator with a shared clock and RNG streams.

    Parameters
    ----------
    seed:
        Root seed for the named random streams (see
        :class:`~repro.sim.random_streams.RandomStreams`).
    start_time:
        Initial simulated time, in seconds.
    """

    def __init__(self, seed: Optional[int] = 0, start_time: float = 0.0) -> None:
        self.clock = SimulationClock(start_time)
        self.streams = RandomStreams(seed)
        self._heap: List[_HeapEntry] = []
        self._sequence = itertools.count()
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._cancelled_on_heap = 0
        # Batched-dispatch state: one scratch list reused across batches
        # (the run loop clears it after each batch) and the batch-size
        # tallies behind :attr:`batch_stats`.  Singletons are a bare
        # counter because they are the common case and a dict update per
        # event would be measurable.
        self._batch: List[_ScheduledEvent] = []
        self._batch_singletons = 0
        self._batch_size_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (for diagnostics)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def batch_stats(self) -> BatchStats:
        """Batch-size distribution of every event executed so far."""
        size_counts = dict(self._batch_size_counts)
        if self._batch_singletons:
            size_counts[1] = size_counts.get(1, 0) + self._batch_singletons
        batches = sum(size_counts.values())
        events = sum(size * count for size, count in size_counts.items())
        max_size = max(size_counts) if size_counts else 0
        return BatchStats(
            batches=batches,
            events=events,
            max_size=max_size,
            size_counts=size_counts,
        )

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        time = float(time)
        if not isfinite(time):
            # NaN in particular would slip past the ordering guard below
            # (every comparison with NaN is false) and silently corrupt
            # the heap order for every event sifted past it.
            raise SchedulingError(
                f"cannot schedule event {label!r} at non-finite time {time!r}"
            )
        if time < self.clock._now:
            raise SchedulingError(
                f"cannot schedule event {label!r} at {time!r}, "
                f"which is before current time {self.clock._now!r}"
            )
        event = _ScheduledEvent(time, next(self._sequence), callback, label)
        heapq.heappush(self._heap, (time, event.sequence, event))
        return EventHandle(event, self)

    def schedule_in(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` after a relative ``delay`` (seconds)."""
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule event {label!r} with negative delay {delay!r}"
            )
        # A NaN delay passes the check above (NaN < 0 is false) but turns
        # the absolute time non-finite, which schedule_at rejects.
        return self.schedule_at(self.clock._now + delay, callback, label)

    def _schedule_delivery(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> None:
        """Fire-and-forget ``schedule_in`` for the packet-delivery path.

        Per-packet deliveries are never cancelled, so the
        :class:`EventHandle` that :meth:`schedule_in` allocates for every
        call is pure overhead on the hottest scheduling site of a replay.
        This keeps the same validation outcome (negative, NaN and
        infinite delays all raise :class:`SchedulingError`, since the
        clock is always finite) and draws from the same sequence counter,
        so event ordering is identical to the handle-returning path.
        """
        time = self.clock._now + delay
        if not (delay >= 0.0 and isfinite(time)):
            raise SchedulingError(
                f"cannot schedule delivery {label!r} with delay {delay!r}"
            )
        event = _ScheduledEvent(time, next(self._sequence), callback, label)
        heapq.heappush(self._heap, (time, event.sequence, event))

    # ------------------------------------------------------------------
    # heap hygiene
    # ------------------------------------------------------------------
    def _discard(self, event: _ScheduledEvent) -> None:
        """Bookkeeping for an event that just left the heap unexecuted."""
        event.done = True
        event.callback = None
        if event.cancelled:
            self._cancelled_on_heap -= 1

    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel` for an on-heap event."""
        self._cancelled_on_heap += 1
        self._maybe_compact_heap()

    def _maybe_compact_heap(self) -> None:
        """Rebuild the heap once cancelled entries exceed half of it.

        Long replays that churn timers (re-attached samplers, LB
        kill/add recovery) otherwise keep dead events on the heap until
        their timestamp is popped; the rebuild is one O(n) pass and
        preserves the (time, sequence) order of every live event, so it
        never changes simulation results.
        """
        if len(self._heap) < _COMPACTION_MIN_HEAP:
            return
        if self._cancelled_on_heap * 2 <= len(self._heap):
            return
        survivors: List[_HeapEntry] = []
        for entry in self._heap:
            event = entry[2]
            if event.cancelled:
                event.done = True
            else:
                survivors.append(entry)
        # In-place replacement, NOT rebinding: run() holds a local alias
        # to this list while callbacks execute, and a callback that
        # cancels enough events lands here mid-run.  Rebinding would
        # leave the loop draining the stale pre-compaction list.
        self._heap[:] = survivors
        heapq.heapify(self._heap)
        self._cancelled_on_heap = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time.
            ``None`` runs until the event heap is empty.
        max_events:
            Safety valve: stop after executing this many events.

        Returns
        -------
        float
            The simulated time when the run stopped.  ``run(until=T)``
            returns ``T`` whenever every live event at or before ``T``
            has been executed — including runs ended by ``max_events``
            or :meth:`stop` after the last such event.  A run cut short
            with work still pending at or before the horizon returns
            the time of the last executed event instead, so the
            unprocessed events remain in the clock's future.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        clock = self.clock
        try:
            # The event-execution loop lives in repro.sim._fastloop (the
            # module-level `_run_loop` binding, possibly the compiled
            # build) so one source of truth serves both paths.
            _run_loop(self, until, max_events)
            # Honour `run(until=T) == T` whenever no live event remains
            # at or before the horizon, regardless of why the loop ended
            # (heap drained, next event past the horizon, `max_events`
            # exhausted, or `stop()` after the last pre-horizon event).
            if until is not None and until > clock._now:
                next_time = self.peek_next_time()
                if next_time is None or next_time > until:
                    clock.advance(until)
        finally:
            self._running = False
        return clock._now

    def run_window(self, window_end: float) -> int:
        """Run one conservative-lookahead window and report its size.

        Executes every live event with ``time <= window_end``, advances
        the clock to exactly ``window_end`` (even when the window is
        empty), and returns the number of events executed in the window.
        Partitioned drivers (:mod:`repro.sim.partition`) call this once
        per synchronization window: after it returns, this simulator can
        guarantee a watermark of ``window_end`` to its peers, because no
        event at or before that time remains and any message it sends
        later carries at least the boundary latency of delay.
        """
        before = self._events_executed
        self.run(until=window_end)
        return self._events_executed - before

    def step(self) -> bool:
        """Execute exactly one pending event.

        Returns ``True`` if an event was executed, ``False`` if the heap
        is empty.  Cancelled events are discarded silently, through the
        same :meth:`_discard` bookkeeping as the main loop, so stepping
        over them keeps the compaction counter exact.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            event = entry[2]
            if event.cancelled:
                self._discard(event)
                continue
            event.done = True
            callback = event.callback
            event.callback = None
            self.clock._now = entry[0]
            callback()
            self._events_executed += 1
            return True
        return False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def peek_next_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if none are pending."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            self._discard(heapq.heappop(heap)[2])
        if not heap:
            return None
        return heap[0][0]

    def drain(self) -> int:
        """Discard all pending events; returns how many were discarded."""
        count = 0
        for entry in self._heap:
            event = entry[2]
            event.done = True
            event.callback = None
            if not event.cancelled:
                count += 1
        self._heap.clear()
        self._cancelled_on_heap = 0
        return count

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now!r}, pending={self.pending_events}, "
            f"executed={self._events_executed})"
        )


@dataclass
class PeriodicTask:
    """Helper that re-schedules a callback at a fixed period.

    Used by components that need a heartbeat (e.g. the metrics sampler
    that records per-server load every ``interval`` seconds for Figure 4).
    """

    simulator: Simulator
    interval: float
    callback: EventCallback
    label: str = "periodic"
    _handle: Optional[EventHandle] = field(default=None, init=False, repr=False)
    _active: bool = field(default=False, init=False, repr=False)

    def start(self, first_delay: Optional[float] = None) -> None:
        """Start ticking; the first tick fires after ``first_delay`` (default: one interval)."""
        if self.interval <= 0:
            raise SchedulingError(
                f"periodic task {self.label!r} needs a positive interval, "
                f"got {self.interval!r}"
            )
        if self._active:
            return
        self._active = True
        delay = self.interval if first_delay is None else first_delay
        self._handle = self.simulator.schedule_in(delay, self._tick, self.label)

    def stop(self) -> None:
        """Stop ticking; pending tick (if any) is cancelled."""
        self._active = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def active(self) -> bool:
        """Whether the task is currently scheduled to keep ticking."""
        return self._active

    def _tick(self) -> None:
        if not self._active:
            return
        self.callback()
        if self._active:
            self._handle = self.simulator.schedule_in(
                self.interval, self._tick, self.label
            )


def exponential_delay(rng: Any, mean: float) -> float:
    """Draw an exponentially distributed delay with the given mean.

    Thin wrapper used throughout the workload generators so the
    distribution used for "exponential" is defined in exactly one place.
    """
    if mean <= 0:
        raise SimulationError(f"exponential mean must be positive, got {mean!r}")
    return float(rng.exponential(mean))
