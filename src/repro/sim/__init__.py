"""Discrete-event simulation substrate.

This package provides the event-driven execution core used by every other
subsystem of the SRLB reproduction: a simulation clock, an event-heap
engine with cancellable events and periodic tasks, and named reproducible
random streams.
"""

from repro.sim.clock import SimulationClock
from repro.sim.engine import (
    EventHandle,
    PeriodicTask,
    Simulator,
    exponential_delay,
)
from repro.sim.random_streams import RandomStreams

__all__ = [
    "SimulationClock",
    "Simulator",
    "EventHandle",
    "PeriodicTask",
    "RandomStreams",
    "exponential_delay",
]
