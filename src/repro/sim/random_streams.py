"""Named, reproducible random-number streams.

Every stochastic component of the reproduction (arrival processes,
service-time draws, candidate selection, the RR baseline's server choice,
...) draws from its *own* named stream.  Streams are spawned from a single
root seed with :class:`numpy.random.SeedSequence`, so

* two runs with the same root seed are bit-for-bit identical, and
* changing how often one component draws does not perturb the others
  (no shared-stream coupling), which keeps policy comparisons fair: the
  arrival process seen by RR and by SR4 in a comparison run is the same.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.errors import SimulationError


class RandomStreams:
    """Factory of named :class:`numpy.random.Generator` child streams."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        if seed is not None and seed < 0:
            raise SimulationError(f"seed must be non-negative, got {seed!r}")
        self._seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> Optional[int]:
        """Root seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The child seed is derived from the root seed and a stable hash of
        the name, so the set of *other* streams requested does not affect
        the values a given stream produces.
        """
        if not name:
            raise SimulationError("stream name must be a non-empty string")
        if name not in self._streams:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_stable_name_key(name),),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def names(self) -> Iterable[str]:
        """Names of the streams created so far (mainly for debugging)."""
        return tuple(self._streams)

    def __repr__(self) -> str:
        return f"RandomStreams(seed={self._seed!r}, streams={sorted(self._streams)!r})"


def _stable_name_key(name: str) -> int:
    """Deterministic 63-bit integer key for a stream name.

    Python's builtin ``hash`` is salted per process, so a small FNV-1a
    hash is used instead to keep runs reproducible across processes.
    """
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value & 0x7FFFFFFFFFFFFFFF
