"""The simulator's inner run loop, batched by timestamp.

This module holds exactly one function — :func:`run_loop` — factored out
of :meth:`repro.sim.engine.Simulator.run` so it can optionally be
compiled (see ``tools/build_fastloop.py`` and the ``REPRO_COMPILED``
gate in :mod:`repro.sim.engine`).  It is deliberately plain Python: no
decorators, no closures, no dynamic features — the subset mypyc
compiles well.  The pure-Python version here is canonical; the compiled
build is a byte-identical copy under the module name
``repro.sim._fastloop_c``.

Batching
--------
The loop executes events in ``(time, sequence)`` order, exactly like
the serial loop it replaced, but drains *all ready entries sharing the
current timestamp* off the heap in one pass before running them: one
clock advance, one cancelled-entry sweep, and one heap interaction per
batch instead of per event.  Timer-heavy scenarios (synchronized
samplers, window boundaries, per-tick housekeeping) spend a measurable
share of their heap traffic on same-timestamp runs.

Most timestamps in a packet-grain replay are distinct floats, so the
common case takes a **singleton fast path**: when the entry just popped
is not followed by another entry at the same time, it executes
immediately with no batch bookkeeping at all.  This keeps the batched
loop from taxing the case it cannot help.

Equivalence argument (why goldens stay bit-identical):

* Batch members are popped in heap order, so they execute in the same
  ``(time, sequence)`` order as the serial loop.
* Events scheduled *by* a batch member carry sequence numbers larger
  than every drained member's, so they cannot belong earlier in the
  current batch; they land on the heap and are picked up afterwards —
  exactly when the serial loop would reach them.
* A member cancelled by an earlier member of its own batch is skipped
  (the serial loop would have discarded it when popped); its callback
  reference is dropped here because :meth:`EventHandle.cancel` leaves
  callbacks of off-heap events alone.
* ``stop()`` mid-batch pushes the unexecuted live members back onto the
  heap (same ``(time, sequence)`` entries, ``done`` flag restored), so
  a later ``run()`` resumes in the identical order.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Optional

#: Flipped to True in the compiled copy by ``tools/build_fastloop.py``.
COMPILED = False


def run_loop(sim: Any, until: Optional[float], max_events: Optional[int]) -> int:
    """Drain the simulator's heap; returns the number of events executed.

    The caller (:meth:`Simulator.run`) owns the re-entrancy guard, the
    ``_stopped`` reset and the final clock advance to the horizon; this
    function owns only the event-execution loop.
    """
    heap = sim._heap
    clock = sim.clock
    batch = sim._batch
    size_counts = sim._batch_size_counts
    executed = 0
    singletons = 0
    try:
        while heap:
            if sim._stopped:
                break
            if max_events is not None and executed >= max_events:
                break
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heappop(heap)
                sim._discard(event)
                continue
            time = entry[0]
            if until is not None and time > until:
                break
            heappop(heap)
            if not heap or heap[0][0] != time:
                # Singleton fast path: no other ready entry shares this
                # timestamp, so skip the batch machinery entirely.
                event.done = True
                callback = event.callback
                event.callback = None
                clock._now = time
                singletons += 1
                callback()
                sim._events_executed += 1
                executed += 1
                continue
            # Batch path: drain every live entry at `time` (up to the
            # max_events allowance), then execute the batch in one pass.
            event.done = True
            batch.append(event)
            allowance = -1 if max_events is None else max_events - executed
            while heap and heap[0][0] == time:
                if 0 <= allowance <= len(batch):
                    break
                member = heap[0][2]
                heappop(heap)
                if member.cancelled:
                    sim._discard(member)
                    continue
                member.done = True
                batch.append(member)
            size = len(batch)
            size_counts[size] = size_counts.get(size, 0) + 1
            clock._now = time
            index = 0
            try:
                while index < size:
                    member = batch[index]
                    index += 1
                    callback = member.callback
                    member.callback = None
                    if member.cancelled:
                        # Cancelled by an earlier member of this batch,
                        # after it had already left the heap: cancel()
                        # saw done=True and left the callback to us.
                        continue
                    callback()
                    sim._events_executed += 1
                    executed += 1
                    if sim._stopped:
                        break
            finally:
                if index < size:
                    # stop() (or an exception) interrupted the batch:
                    # restore the unexecuted live members so a resumed
                    # run pops them in the identical order.  Members
                    # already cancelled are dropped, matching what the
                    # serial loop would do when popping them.
                    while index < size:
                        member = batch[index]
                        index += 1
                        if member.cancelled:
                            member.callback = None
                            continue
                        member.done = False
                        heappush(heap, (time, member.sequence, member))
                batch.clear()
    finally:
        sim._batch_singletons += singletons
    return executed
