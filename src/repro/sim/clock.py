"""Simulation clock.

The clock is a tiny object shared between the engine and every simulated
component.  Keeping it separate from the engine lets components hold a
reference to "the current time" without also being able to schedule or
cancel events, which keeps responsibilities narrow and tests simple.

Time is a ``float`` number of **seconds** since the start of the
simulation.  All of the repro library uses seconds; workloads that are
naturally expressed in milliseconds convert at the boundary.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimulationClock:
    """Monotonically non-decreasing simulated time source.

    Only the simulation engine is expected to call :meth:`advance`;
    everything else treats the clock as read-only through :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    def advance(self, new_time: float) -> None:
        """Move the clock forward to ``new_time``.

        Raises :class:`~repro.errors.SimulationError` if this would move
        time backwards, which would indicate a corrupted event queue.
        """
        if new_time < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {self._now!r} -> {new_time!r}"
            )
        self._now = float(new_time)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock, used when an engine is reused between runs."""
        if start < 0:
            raise SimulationError(f"clock cannot reset to negative time {start!r}")
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimulationClock(now={self._now!r})"
