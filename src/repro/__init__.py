"""SRLB reproduction: the power of choices in load balancing with Segment Routing.

This library is a full, from-scratch reproduction of *"SRLB: The Power of
Choices in Load Balancing with Segment Routing"* (Desmouceaux et al.,
ICDCS 2017): the Service Hunting mechanism built on IPv6 Segment Routing,
the SRc / SRdyn connection-acceptance policies, the supporting data-center
substrate (IPv6/SR network, TCP handshake with backlog overflow, Apache-like
application servers on processor-shared cores), the paper's two workloads
(Poisson and a synthetic Wikipedia replay), and the experiment harness that
regenerates every figure of the evaluation.

Quick start
-----------
>>> from repro.experiments import (
...     TestbedConfig, rr_policy, sr_policy, run_poisson_once)
>>> result = run_poisson_once(
...     TestbedConfig(), sr_policy(4), load_factor=0.7, num_queries=500)
>>> result.mean_response_time > 0
True

See ``examples/`` for complete, commented scenarios and ``benchmarks/``
for the per-figure reproduction harnesses.
"""

from repro._version import __version__
from repro import analysis, core, experiments, metrics, net, server, sim, workload
from repro.errors import ReproError

__all__ = [
    "__version__",
    "ReproError",
    "sim",
    "net",
    "server",
    "core",
    "workload",
    "metrics",
    "experiments",
    "analysis",
]
