"""Performance-tracking harness utilities.

The repository's functional benchmarks (``benchmarks/bench_*.py``) check
*what* the simulator computes; this module is about *how fast* it
computes it.  It provides the small pieces the perf benchmark driver
(``benchmarks/bench_perf_hotpath.py``, ``make perf``) is built from:

* :func:`time_cell` — run one simulation cell under a wall-clock timer
  and return a :class:`CellMeasurement` (events/sec is the headline
  metric: it is workload-independent enough to compare across PRs as
  long as the cell definition and seeds stay fixed);
* :class:`PerfReport` — load/store ``BENCH_PERF.json``, the committed
  perf trajectory.  Each (profile, cell) slot keeps up to three records:
  ``pre_pr`` (the last measured numbers *before* a hot-path PR, captured
  with the same harness), ``baseline`` (the committed reference the CI
  perf-smoke job compares against) and ``latest`` (whatever ``make
  perf`` measured most recently);
* :func:`compare_to_baseline` — the tolerance check used by the CI
  perf-smoke job (generous, because CI machines vary widely).

Timings exclude trace generation and testbed construction: the timed
section is exactly the event-loop replay, which is what the hot-path
optimisations target.
"""

from __future__ import annotations

import gc
import json
import os
import platform as _platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Fields round-tripped through ``BENCH_PERF.json`` for one measurement.
#: The machine-context fields make "absolute numbers are only comparable
#: within one machine" checkable in review: two records whose contexts
#: differ must only be compared as ratios against same-machine peers.
_RECORD_FIELDS = (
    "events_per_sec",
    "wall_seconds",
    "events",
    "simulated_seconds",
    "queries",
    "cpu_count",
    "python",
    "platform",
)


def machine_context() -> Dict[str, Any]:
    """The machine identity stamped into every stored perf record."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": _platform.python_version(),
        "platform": _platform.platform(),
    }


@dataclass(frozen=True)
class CellMeasurement:
    """One timed run of one benchmark cell."""

    name: str
    wall_seconds: float
    #: Simulator events executed inside the timed section.
    events: int
    simulated_seconds: float
    #: Workload queries finished (sanity check that the cell did real work).
    queries: int

    @property
    def events_per_sec(self) -> float:
        """The headline throughput metric."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds

    def to_record(self) -> Dict[str, Any]:
        """JSON-ready representation (plain scalars only)."""
        record: Dict[str, Any] = {
            "events_per_sec": round(self.events_per_sec, 1),
            "wall_seconds": round(self.wall_seconds, 4),
            "events": self.events,
            "simulated_seconds": round(self.simulated_seconds, 3),
            "queries": self.queries,
        }
        record.update(machine_context())
        return record


#: A cell body: builds its platform, replays its workload, and returns
#: ``(events_executed, simulated_seconds, queries_finished)``.  Only the
#: call itself is timed, so the body must do its expensive setup in the
#: enclosing ``prepare`` step (see :class:`PerfCell`).
CellBody = Callable[[], Tuple[int, float, int]]


@dataclass(frozen=True)
class PerfCell:
    """One named perf-benchmark cell.

    ``prepare`` does the untimed setup (trace generation, testbed
    construction) and returns the :data:`CellBody` that ``time_cell``
    measures.  A fresh body is prepared for every repeat so repeats do
    not share simulator state.
    """

    name: str
    description: str
    prepare: Callable[[], CellBody]


def time_cell(cell: PerfCell, repeats: int = 1) -> CellMeasurement:
    """Measure ``cell``, returning the best (highest events/sec) repeat.

    Garbage is collected before each timed section so earlier cells'
    litter is not charged to this one; the collector stays enabled
    during the run because the hot paths' allocation behaviour *is*
    part of what is being measured.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats!r}")
    best: Optional[CellMeasurement] = None
    for _ in range(repeats):
        body = cell.prepare()
        gc.collect()
        started = time.perf_counter()
        events, simulated, queries = body()
        wall = time.perf_counter() - started
        measurement = CellMeasurement(
            name=cell.name,
            wall_seconds=wall,
            events=events,
            simulated_seconds=simulated,
            queries=queries,
        )
        if best is None or measurement.events_per_sec > best.events_per_sec:
            best = measurement
    assert best is not None
    return best


@dataclass
class ComparisonRow:
    """Outcome of comparing one cell against a stored record."""

    cell: str
    current: float
    reference: float
    #: current / reference; > 1.0 means faster than the reference.
    ratio: float
    ok: bool


def compare_to_baseline(
    measurements: Dict[str, CellMeasurement],
    baseline: Dict[str, Dict[str, float]],
    tolerance: float,
) -> List[ComparisonRow]:
    """Check measurements against stored baseline records.

    A cell fails when its events/sec drops below ``(1 - tolerance)``
    times the baseline.  Cells missing from the baseline are skipped
    (they are new; the next ``--write baseline`` run will pin them).
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance!r}")
    rows: List[ComparisonRow] = []
    for name, measurement in measurements.items():
        record = baseline.get(name)
        if record is None:
            continue
        reference = float(record["events_per_sec"])
        current = measurement.events_per_sec
        ratio = current / reference if reference > 0 else float("inf")
        rows.append(
            ComparisonRow(
                cell=name,
                current=current,
                reference=reference,
                ratio=ratio,
                ok=ratio >= 1.0 - tolerance,
            )
        )
    return rows


@dataclass
class PerfReport:
    """The persistent perf trajectory behind ``BENCH_PERF.json``."""

    methodology: str = ""
    #: profile -> cell -> slot ("pre_pr" | "baseline" | "latest") -> record.
    profiles: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = field(
        default_factory=dict
    )

    SLOTS = ("pre_pr", "baseline", "latest")

    @classmethod
    def load(cls, path: Path) -> "PerfReport":
        """Load a report, returning an empty one when the file is absent."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(
            methodology=data.get("methodology", ""),
            profiles=data.get("profiles", {}),
        )

    def save(self, path: Path) -> None:
        """Write the report back out (stable key order, human-diffable)."""
        payload = {
            "schema": 1,
            "metric": "events_per_sec",
            "methodology": self.methodology,
            "profiles": {
                profile: {
                    cell: {
                        slot: dict(records[slot])
                        for slot in self.SLOTS
                        if slot in records
                    }
                    for cell, records in sorted(cells.items())
                }
                for profile, cells in sorted(self.profiles.items())
            },
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
        )

    def records(self, profile: str, slot: str) -> Dict[str, Dict[str, float]]:
        """All cells' records in one slot of one profile."""
        cells = self.profiles.get(profile, {})
        return {
            cell: records[slot] for cell, records in cells.items() if slot in records
        }

    def store(
        self, profile: str, slot: str, measurements: Dict[str, CellMeasurement]
    ) -> None:
        """Store measurements into one slot, creating levels as needed."""
        if slot not in self.SLOTS:
            raise ValueError(f"unknown slot {slot!r}: expected one of {self.SLOTS}")
        cells = self.profiles.setdefault(profile, {})
        for name, measurement in measurements.items():
            record = measurement.to_record()
            assert set(record) == set(_RECORD_FIELDS)
            cells.setdefault(name, {})[slot] = record


def format_report(
    measurements: Dict[str, CellMeasurement],
    pre_pr: Optional[Dict[str, Dict[str, float]]] = None,
    baseline: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Human-readable results table with optional speedup columns."""
    lines = [
        f"{'cell':<24} {'events/s':>12} {'wall s':>9} {'events':>10} "
        f"{'vs pre-PR':>10} {'vs base':>9}"
    ]
    for name, m in measurements.items():
        def _ratio(records: Optional[Dict[str, Dict[str, float]]]) -> str:
            if not records or name not in records:
                return "-"
            reference = float(records[name]["events_per_sec"])
            if reference <= 0:
                return "-"
            return f"{m.events_per_sec / reference:.2f}x"

        lines.append(
            f"{name:<24} {m.events_per_sec:>12,.0f} {m.wall_seconds:>9.3f} "
            f"{m.events:>10,} {_ratio(pre_pr):>10} {_ratio(baseline):>9}"
        )
    return "\n".join(lines)
