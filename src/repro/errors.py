"""Exception hierarchy for the SRLB reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
applications embedding the library can catch a single base class.  The
sub-classes mirror the subsystems: simulation engine, network substrate,
server substrate, load-balancer core, workload generation, and the
experiment harness.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised for invalid use of the discrete-event simulation engine."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or on a stopped engine."""


class NetworkError(ReproError):
    """Base class for errors in the IPv6 / Segment Routing substrate."""


class AddressError(NetworkError):
    """Raised for malformed IPv6 addresses or prefixes."""


class SegmentRoutingError(NetworkError):
    """Raised for invalid Segment Routing header manipulation."""


class RoutingError(NetworkError):
    """Raised when a packet cannot be forwarded (no route, TTL expired...)."""


class TCPError(NetworkError):
    """Raised for invalid TCP state transitions in the simplified TCP model."""


class ServerError(ReproError):
    """Base class for errors in the application-server substrate."""


class WorkerPoolError(ServerError):
    """Raised for invalid worker-pool operations (double release, etc.)."""


class BacklogOverflowError(ServerError):
    """Raised when a connection is pushed onto a full accept backlog."""


class LoadBalancerError(ReproError):
    """Base class for errors in the SRLB core."""


class PolicyError(LoadBalancerError):
    """Raised for invalid connection-acceptance policy configuration."""


class SelectionError(LoadBalancerError):
    """Raised when a candidate-selection scheme cannot produce candidates."""


class FlowTableError(LoadBalancerError):
    """Raised for invalid flow-table operations."""


class MetricsValidationError(ReproError, ValueError):
    """Raised for degenerate metric-filter parameters.

    Also derives from :class:`ValueError` so callers treating a bad
    EWMA interval/time-constant as an ordinary value error catch it
    without importing the library's hierarchy — while the
    every-error-is-a-ReproError contract above still holds.
    """


class TelemetryError(ReproError):
    """Raised for invalid telemetry bus, recorder or detector usage."""


class WorkloadError(ReproError):
    """Raised for invalid workload or trace configuration."""


class ExperimentError(ReproError):
    """Raised when an experiment is misconfigured or fails to converge."""


class CalibrationError(ExperimentError):
    """Raised when the λ₀ calibration procedure cannot find a stable rate."""
