"""Command-line interface for the SRLB reproduction.

Installed as the ``srlb-repro`` console script (also runnable as
``python -m repro.cli``).  The sub-commands cover the common workflows:

``calibrate``
    Print the testbed's analytic saturation rate λ₀ and, optionally, run
    the empirical bracketing search the paper describes.

``poisson``
    Run the Poisson workload (paper §V) for one or more policies at one
    or more load factors and print the response-time comparison.

``wikipedia``
    Run the (optionally time-compressed) synthetic Wikipedia replay
    (paper §VI) under RR and SR4 and print the Figure 6 table plus the
    whole-day quartiles.

``figure``
    Regenerate a single figure of the paper (2–8) at a chosen scale and
    print the same series the paper plots.

``resilience``
    Front the testbed with an ECMP load-balancer tier, kill (or add)
    instances mid-run, and print the broken-flow fraction per
    candidate-selection scheme (the paper's §II-B resiliency claim).

``flash-crowd``
    Replay a stepped arrival schedule (baseline → overload spike →
    recovery) under each policy and print per-phase response times.

``heterogeneous-fleet``
    Split the fleet into fast and slow CPU tiers and print, per policy,
    response times plus how accepted queries split between the tiers
    relative to capacity.

``autoscale``
    Replay a diurnal (sinusoid-plus-noise) workload under static,
    reactive and predictive provisioning and print capacity-seconds
    against the p99 SLO, plus the fleet-size trajectory.

``heavy-tail``
    Replay a heavy-tailed mixture (bounded-Pareto one-shots plus
    keep-alive user sessions with Zipf popularity and per-user flow
    affinity) under each policy and print per-kind response times.

``adversarial``
    Replay a legitimate Poisson workload while a SYN flood, a
    hash-collision flood concentrated on one ECMP bucket, or a gray
    failure (degraded-but-alive server, watchdog quarantine) happens
    mid-run, and print what the legitimate flows experienced.

``chaos``
    Replay a legitimate Poisson workload while the fabric misbehaves —
    i.i.d./bursty packet loss with corruption, scheduled link flaps, or
    latency jitter with bounded reordering — with client SYN
    retransmission, bounded retries and server load-shedding armed, and
    print per-cell recovery next to the fault counters.

``scale``
    Run one partitioned million-client replay: the aggregate query
    stream is ECMP-sharded over identical pods, each pod simulated by
    its own partition, and the merged result printed with its
    determinism fingerprint (identical for any ``--partitions``).

``scenarios``
    List every scenario family registered in
    :mod:`repro.experiments.registry` (``--json`` for tooling).

``dashboard``
    Render a telemetry report JSON (written by ``--telemetry-out``)
    into a self-contained HTML dashboard and print the terminal
    sparkline summary.

Most commands accept ``--servers`` / ``--workers`` / ``--cores`` to
resize the simulated testbed; defaults match the paper's platform.
Every scenario sub-command additionally accepts ``--telemetry`` (stream
in-sim counters during the run and print a sparkline summary) and
``--telemetry-out DIR`` (also save ``telemetry.json`` plus
``dashboard.html``); telemetry never changes results.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro._version import __version__
from repro.errors import ReproError
from repro.experiments.calibration import (
    analytic_saturation_rate,
    find_empirical_saturation_rate,
)
from repro.experiments.config import (
    HIGH_LOAD_FACTOR,
    LIGHT_LOAD_FACTOR,
    AdversarialConfig,
    AutoscaleConfig,
    ChaosConfig,
    ChurnEvent,
    FlashCrowdConfig,
    HeavyTailConfig,
    HeterogeneousFleetConfig,
    PoissonSweepConfig,
    PolicySpec,
    ResilienceConfig,
    ScaleConfig,
    TestbedConfig,
    WikipediaReplayConfig,
    paper_policy_suite,
    rr_policy,
    sr_policy,
    srdyn_policy,
)
from repro.experiments import figures, registry
from repro.experiments.adversarial_experiment import run_adversarial
from repro.experiments.autoscale_experiment import run_autoscale
from repro.experiments.chaos_experiment import run_chaos
from repro.experiments.heavy_tail_experiment import run_heavy_tail
from repro.experiments.flash_crowd_experiment import run_flash_crowd
from repro.experiments.heterogeneous_experiment import run_heterogeneous_fleet
from repro.experiments.poisson_experiment import PoissonSweep
from repro.experiments.resilience_experiment import (
    render_resilience_table,
    run_resilience_comparison,
)
from repro.experiments.scale_experiment import run_scale_scenario
from repro.experiments.wikipedia_experiment import WikipediaReplay, make_wikipedia_trace
from repro.metrics.reporting import format_table


# ----------------------------------------------------------------------
# argument helpers
# ----------------------------------------------------------------------
def _policy_spec_from_name(name: str) -> PolicySpec:
    """Translate a CLI policy name into a :class:`PolicySpec`."""
    if name == "RR":
        return rr_policy()
    if name == "SRdyn":
        return srdyn_policy()
    if name.startswith("SR") and name[2:].isdigit():
        return sr_policy(int(name[2:]))
    raise ReproError(
        f"unknown policy {name!r}: expected RR, SRdyn or SR<threshold> (e.g. SR4)"
    )


def _testbed_from_args(args: argparse.Namespace) -> TestbedConfig:
    return TestbedConfig(
        num_servers=args.servers,
        workers_per_server=args.workers,
        cores_per_server=args.cores,
        seed=args.seed,
    )


def _add_testbed_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--servers", type=int, default=12, help="number of servers (paper: 12)")
    parser.add_argument("--workers", type=int, default=32, help="workers per server (paper: 32)")
    parser.add_argument("--cores", type=int, default=2, help="cores per server (paper: 2)")
    parser.add_argument("--seed", type=int, default=0, help="testbed RNG seed")


def _jobs_count(text: str) -> int:
    """Parse and validate a ``--jobs`` value at the argparse layer.

    Rejecting negatives here yields a clear usage error (exit status 2)
    instead of a traceback out of the multiprocessing pool.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer number of worker processes, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = all cores, 1 = in-process), got {value}"
        )
    return value


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help="inter-run fan-out: worker processes running *independent* "
        "runs (sweep cells) concurrently (default 1 = in-process, "
        "0 = all cores); distinct from --partitions, which splits one "
        "run across processes; results are identical for any value",
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="stream in-sim counters during the run and print a "
        "sparkline summary afterwards (never changes results)",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="DIR",
        help="write telemetry.json and dashboard.html to this directory "
        "(implies --telemetry)",
    )


def _telemetry_requested(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "telemetry", False) or getattr(args, "telemetry_out", None)
    )


def _emit_telemetry(args: argparse.Namespace) -> None:
    """Print the sparkline summary and save the report, post-run."""
    from repro.telemetry import render as telemetry_render
    from repro.telemetry import runtime as telemetry_runtime

    report = telemetry_runtime.last_report()
    if not report:
        print("\ntelemetry: no payloads were published by this run")
        return
    for key, payload in report.items():
        print()
        print(telemetry_render.render_summary(payload, title=f"telemetry [{key}]"))
    out_dir = getattr(args, "telemetry_out", None)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        report_path = telemetry_render.save_report(
            os.path.join(out_dir, "telemetry.json"), report.items()
        )
        html_path = os.path.join(out_dir, "dashboard.html")
        page = telemetry_render.render_dashboard(
            {str(key): payload for key, payload in report.items()},
            title=f"srlb-repro {args.command}",
        )
        with open(html_path, "w", encoding="utf-8") as handle:
            handle.write(page)
        print()
        print(f"telemetry report : {report_path}")
        print(f"dashboard        : {html_path}")


def _partitions_count(text: str) -> int:
    """Parse and validate a ``--partitions`` value at the argparse layer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer number of partition processes, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (1 = run every partition in-process), got {value}"
        )
    return value


def _check_parallelism_budget(jobs: int, partitions: int) -> None:
    """Reject multiplicative over-subscription of the machine.

    ``--jobs`` fans out across independent runs and ``--partitions``
    splits one run; using both multiplies the process count.  Asking for
    more simultaneous workers than the machine has CPUs is never what
    the user wants (it only adds scheduling churn), so it is a usage
    error rather than a silent slowdown.
    """
    available = os.cpu_count() or 1
    effective_jobs = available if jobs == 0 else jobs
    if effective_jobs > 1 and partitions > 1 and effective_jobs * partitions > available:
        raise ReproError(
            f"--jobs {effective_jobs} x --partitions {partitions} = "
            f"{effective_jobs * partitions} worker processes, but this machine "
            f"has {available} CPU(s); lower one of them (use --jobs for "
            "fanning out independent runs, --partitions for splitting one run)"
        )


# ----------------------------------------------------------------------
# sub-commands
# ----------------------------------------------------------------------
def _command_calibrate(args: argparse.Namespace) -> int:
    testbed = _testbed_from_args(args)
    analytic = analytic_saturation_rate(testbed, args.service_mean)
    print(
        f"analytic saturation rate λ₀ = {analytic:.1f} queries/s "
        f"({testbed.total_cores} cores / {args.service_mean:.3f} s mean demand)"
    )
    if args.empirical:
        result = find_empirical_saturation_rate(
            testbed,
            service_mean=args.service_mean,
            num_queries=args.queries,
            num_iterations=args.iterations,
        )
        print(
            f"empirical saturation rate ≈ {result.saturation_rate:.1f} queries/s "
            f"({result.ratio_to_analytic:.2f}x the analytic estimate, "
            f"{len(result.probes)} probe runs)"
        )
    return 0


def _command_poisson(args: argparse.Namespace) -> int:
    testbed = _testbed_from_args(args)
    policy_names = args.policy or ["RR", "SR4", "SRdyn"]
    specs = [_policy_spec_from_name(name) for name in policy_names]
    load_factors = args.rho or [HIGH_LOAD_FACTOR]

    config = PoissonSweepConfig(
        testbed=testbed,
        load_factors=tuple(dict.fromkeys(load_factors)),
        num_queries=args.queries,
        service_mean=args.service_mean,
        policies=tuple(specs),
    )
    sweep = PoissonSweep(config).run(jobs=args.jobs)
    rows: List[List[object]] = []
    for load_factor in load_factors:
        for spec in specs:
            result = sweep.run(spec.name, load_factor)
            summary = result.summary
            rows.append(
                [
                    load_factor,
                    spec.name,
                    summary.mean,
                    summary.median,
                    summary.p90,
                    result.connections_reset,
                ]
            )
    print(
        format_table(
            ["rho", "policy", "mean (s)", "median (s)", "p90 (s)", "resets"],
            rows,
            title=(
                f"Poisson workload, {args.queries} queries per run, "
                f"{testbed.num_servers} servers"
            ),
        )
    )
    return 0


def _command_wikipedia(args: argparse.Namespace) -> int:
    testbed = _testbed_from_args(args)
    config = dataclasses.replace(
        WikipediaReplayConfig(),
        testbed=testbed,
        replay_fraction=args.replay_fraction,
        static_per_wiki=args.static_per_wiki,
    ).compressed(duration=args.duration)
    trace = make_wikipedia_trace(config)
    print(
        f"generated synthetic trace: {len(trace)} requests over "
        f"{trace.duration:.0f} s (replay fraction {args.replay_fraction:g})"
    )
    result = WikipediaReplay(config).run(trace=trace, jobs=args.jobs)
    print()
    print(figures.render_figure6(result))
    print()
    for name in result.policies():
        q1, median, q3 = result.run(name).wiki_quartiles()
        print(f"{name}: whole-day median={median:.3f} s, third quartile={q3:.3f} s")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    testbed = _testbed_from_args(args)
    number = args.number
    if number == 2:
        load_factors = tuple(
            round(float(value), 3) for value in np.linspace(0.3, 0.88, args.points)
        )
        config = PoissonSweepConfig(
            testbed=testbed,
            load_factors=load_factors,
            num_queries=args.queries,
            policies=tuple(paper_policy_suite()),
        )
        print(figures.render_figure2(PoissonSweep(config).run(jobs=args.jobs)))
        return 0
    if number in (3, 4, 5):
        load_factor = LIGHT_LOAD_FACTOR if number == 5 else HIGH_LOAD_FACTOR
        sample_load = number == 4
        specs = (
            (rr_policy(), sr_policy(4))
            if number == 4
            else tuple(paper_policy_suite())
        )
        sweep = PoissonSweep(
            PoissonSweepConfig(
                testbed=testbed,
                load_factors=(load_factor,),
                num_queries=args.queries,
                policies=tuple(specs),
            )
        ).run(sample_load=sample_load, jobs=args.jobs)
        runs = {spec.name: sweep.run(spec.name, load_factor) for spec in specs}
        if number == 4:
            print(figures.render_figure4(runs))
        else:
            print(
                figures.render_figure_cdf(
                    runs, title=f"Figure {number}: CDF of page load time, rho={load_factor}"
                )
            )
        return 0
    if number in (6, 7, 8):
        config = dataclasses.replace(
            WikipediaReplayConfig(), testbed=testbed, static_per_wiki=0.5
        ).compressed(duration=args.duration)
        result = WikipediaReplay(config).run(jobs=args.jobs)
        if number == 6:
            print(figures.render_figure6(result))
        elif number == 7:
            for name in result.policies():
                print(figures.render_figure7(result, name))
                print()
        else:
            print(figures.render_figure8(result))
        return 0
    raise ReproError(f"unknown figure number {number!r}: the paper has figures 2-8")


def _command_resilience(args: argparse.Namespace) -> int:
    testbed = dataclasses.replace(
        _testbed_from_args(args),
        num_load_balancers=args.lbs,
        ecmp_hash=args.ecmp_hash,
        request_spread=args.spread,
        request_chunks=args.chunks,
        # Free workers pinned by abandoned flows well after a legitimate
        # upload would have finished.
        request_timeout=2 * args.spread + 1.0,
    )
    # Default to one mid-run kill only when no churn was requested at
    # all; an explicit --add-at alone means an add-only schedule.
    kill_fractions = args.kill_at
    if kill_fractions is None and not args.add_at:
        kill_fractions = [0.5]
    churn: List[ChurnEvent] = [
        ChurnEvent(at_fraction=fraction, action="kill")
        for fraction in (kill_fractions or [])
    ]
    churn.extend(
        ChurnEvent(at_fraction=fraction, action="add")
        for fraction in (args.add_at or [])
    )
    churn.sort(key=lambda event: event.at_fraction)
    config = ResilienceConfig(
        testbed=testbed,
        load_factor=args.rho,
        num_queries=args.queries,
        acceptance_policy=args.policy,
        selection_schemes=tuple(args.scheme or ["random", "consistent-hash"]),
        churn=tuple(churn),
    )
    comparison = run_resilience_comparison(config, jobs=args.jobs)
    print(render_resilience_table(comparison))
    for scheme in comparison.schemes():
        run = comparison.run(scheme)
        for observation in run.observations:
            print(
                f"{scheme}: {observation.event.action} {observation.instance} "
                f"at t={observation.at_time:.1f}s with "
                f"{len(observation.in_flight_ids)} queries in flight"
                + (
                    f", {observation.flow_entries_lost} flow entries lost"
                    if observation.event.action == "kill"
                    else ""
                )
            )
    return 0


def _command_flash_crowd(args: argparse.Namespace) -> int:
    testbed = _testbed_from_args(args)
    policy_names = args.policy or ["RR", "SR4", "SRdyn"]
    config = FlashCrowdConfig(
        testbed=testbed,
        baseline_load=args.baseline_rho,
        spike_load=args.spike_rho,
        baseline_duration=args.baseline_duration,
        spike_duration=args.spike_duration,
        recovery_duration=args.recovery_duration,
        bin_width=args.bin_width,
        policies=tuple(_policy_spec_from_name(name) for name in policy_names),
    )
    result = run_flash_crowd(config, jobs=args.jobs)
    print(figures.render_scenario_figure("flash-crowd", result))
    return 0


def _command_heterogeneous_fleet(args: argparse.Namespace) -> int:
    policy_names = args.policy or ["RR", "SR4", "SRdyn"]
    config = HeterogeneousFleetConfig(
        num_fast=args.fast,
        num_slow=args.slow,
        fast_speed=args.fast_speed,
        slow_speed=args.slow_speed,
        workers_per_server=args.workers,
        cores_per_server=args.cores,
        seed=args.seed,
        load_factors=tuple(dict.fromkeys(args.rho or [0.85])),
        num_queries=args.queries,
        policies=tuple(_policy_spec_from_name(name) for name in policy_names),
    )
    result = run_heterogeneous_fleet(config, jobs=args.jobs)
    print(figures.render_scenario_figure("heterogeneous-fleet", result))
    return 0


def _command_autoscale(args: argparse.Namespace) -> int:
    config = AutoscaleConfig(
        workers_per_server=args.workers,
        cores_per_server=args.cores,
        seed=args.seed,
        min_servers=args.min_servers,
        max_servers=args.max_servers,
        mean_load=args.mean_load,
        load_amplitude=args.load_amplitude,
        period=args.period,
        duration=args.duration,
        slo_p99=args.slo_p99,
        modes=tuple(dict.fromkeys(args.mode or ["static", "reactive", "predictive"])),
    )
    if args.time_factor != 1.0:
        config = config.scaled(args.time_factor)
    result = run_autoscale(config, jobs=args.jobs)
    print(figures.render_scenario_figure("autoscale", result))
    return 0


def _command_heavy_tail(args: argparse.Namespace) -> int:
    policy_names = args.policy or ["RR", "SR4", "SRdyn"]
    config = HeavyTailConfig(
        testbed=_testbed_from_args(args),
        load_factor=args.rho,
        num_arrivals=args.arrivals,
        heavy_fraction=args.heavy_fraction,
        mean_session_length=args.session_length,
        num_users=args.users,
        user_zipf=args.user_zipf,
        policies=tuple(_policy_spec_from_name(name) for name in policy_names),
    )
    result = run_heavy_tail(config, jobs=args.jobs)
    print(figures.render_scenario_figure("heavy-tail", result))
    return 0


def _command_adversarial(args: argparse.Namespace) -> int:
    modes = tuple(
        dict.fromkeys(
            args.mode or ["baseline", "syn-flood", "hash-collision", "gray-failure"]
        )
    )
    testbed = dataclasses.replace(
        _testbed_from_args(args),
        num_load_balancers=args.lbs,
        flow_idle_timeout=args.flow_idle_timeout,
        request_timeout=args.request_timeout,
    )
    config = AdversarialConfig(
        testbed=testbed,
        load_factor=args.rho,
        num_queries=args.queries,
        service_mean=args.service_mean,
        modes=modes,
        flood_rate_factor=args.flood_rate_factor,
        flood_sources=args.flood_sources,
        collision_flows=args.collision_flows,
        collision_target=args.collision_target,
        degraded_speed=args.degraded_speed,
    )
    result = run_adversarial(config, jobs=args.jobs)
    print(figures.render_scenario_figure("adversarial", result))
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    modes = tuple(
        dict.fromkeys(args.mode or ["baseline", "loss", "flap", "jitter"])
    )
    testbed = dataclasses.replace(
        _testbed_from_args(args),
        num_load_balancers=args.lbs,
        flow_idle_timeout=5.0,
        request_timeout=2.0,
        syn_retransmit_timeout=args.syn_rto,
        syn_retransmit_cap=args.syn_rto_cap,
        syn_retransmit_limit=args.syn_rto_limit,
        retry_timeout=args.retry_timeout,
        max_retries=args.max_retries,
        backlog_shed_watermark=args.shed_watermark,
    )
    config = ChaosConfig(
        testbed=testbed,
        load_factor=args.rho,
        num_queries=args.queries,
        service_mean=args.service_mean,
        modes=modes,
        loss_rate=args.loss_rate,
        flap_count=args.flap_count,
        flap_down=args.flap_down,
        jitter_mean=args.jitter_mean,
    )
    result = run_chaos(config, jobs=args.jobs)
    print(figures.render_scenario_figure("chaos", result))
    return 0


def _command_scale(args: argparse.Namespace) -> int:
    _check_parallelism_budget(args.jobs, args.partitions)
    config = ScaleConfig(
        testbed=_testbed_from_args(args),
        pods=args.pods,
        num_queries=args.queries,
        load_factor=args.rho,
        service_mean=args.service_mean,
        acceptance_policy=args.policy,
        ecmp_hash=args.ecmp_hash,
        max_windows=args.windows,
    )
    result = run_scale_scenario(config, partitions=args.partitions, jobs=args.jobs)
    print(figures.render_scenario_figure("scale", result))
    return 0


def _command_dashboard(args: argparse.Namespace) -> int:
    from repro.telemetry import render as telemetry_render

    cells = telemetry_render.load_report(args.report)
    for key, payload in cells:
        print(telemetry_render.render_summary(payload, title=f"telemetry [{key}]"))
        print()
    page = telemetry_render.render_dashboard(dict(cells), title=args.title)
    out = args.out
    os.makedirs(os.path.dirname(os.path.abspath(out)), exist_ok=True)
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(page)
    print(f"dashboard written to {out}")
    return 0


def _command_scenarios(args: argparse.Namespace) -> int:
    import json

    if args.json:
        catalogue = [
            {
                "name": spec.name,
                "description": spec.title,
                "cells": [
                    str(cell.key) for cell in spec.cells(spec.default_config())
                ],
            }
            for spec in registry.specs()
        ]
        print(json.dumps(catalogue, indent=2))
        return 0
    rows = [[spec.name, spec.title] for spec in registry.specs()]
    print(
        format_table(
            ["scenario", "description"],
            rows,
            title="Registered scenario families",
        )
    )
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="srlb-repro",
        description="Reproduction of 'SRLB: The Power of Choices in Load Balancing "
        "with Segment Routing' (ICDCS 2017).",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    calibrate = subparsers.add_parser(
        "calibrate", help="estimate the testbed saturation rate λ₀"
    )
    _add_testbed_arguments(calibrate)
    calibrate.add_argument("--service-mean", type=float, default=0.1)
    calibrate.add_argument(
        "--empirical", action="store_true", help="also run the empirical search"
    )
    calibrate.add_argument("--queries", type=int, default=3_000)
    calibrate.add_argument("--iterations", type=int, default=4)
    calibrate.set_defaults(handler=_command_calibrate)

    poisson = subparsers.add_parser("poisson", help="run the Poisson workload (paper §V)")
    _add_testbed_arguments(poisson)
    poisson.add_argument(
        "--policy",
        action="append",
        help="policy to run (RR, SR<k>, SRdyn); repeatable; default RR, SR4, SRdyn",
    )
    poisson.add_argument(
        "--rho", action="append", type=float, help="load factor; repeatable; default 0.88"
    )
    poisson.add_argument("--queries", type=int, default=3_000)
    poisson.add_argument("--service-mean", type=float, default=0.1)
    _add_jobs_argument(poisson)
    _add_telemetry_arguments(poisson)
    poisson.set_defaults(handler=_command_poisson)

    wikipedia = subparsers.add_parser(
        "wikipedia", help="run the synthetic Wikipedia replay (paper §VI)"
    )
    _add_testbed_arguments(wikipedia)
    wikipedia.add_argument(
        "--duration", type=float, default=480.0, help="compressed day length in seconds"
    )
    wikipedia.add_argument("--replay-fraction", type=float, default=0.5)
    wikipedia.add_argument("--static-per-wiki", type=float, default=0.5)
    _add_jobs_argument(wikipedia)
    _add_telemetry_arguments(wikipedia)
    wikipedia.set_defaults(handler=_command_wikipedia)

    figure = subparsers.add_parser("figure", help="regenerate one figure of the paper (2-8)")
    _add_testbed_arguments(figure)
    figure.add_argument("number", type=int, help="figure number, 2-8")
    figure.add_argument("--queries", type=int, default=2_000)
    figure.add_argument("--points", type=int, default=4, help="load factors for figure 2")
    figure.add_argument(
        "--duration", type=float, default=480.0, help="compressed day for figures 6-8"
    )
    _add_jobs_argument(figure)
    _add_telemetry_arguments(figure)
    figure.set_defaults(handler=_command_figure)

    resilience = subparsers.add_parser(
        "resilience",
        help="measure broken flows under load-balancer churn (ECMP tier)",
    )
    _add_testbed_arguments(resilience)
    resilience.add_argument(
        "--lbs", type=int, default=4, help="load-balancer instances in the tier"
    )
    resilience.add_argument(
        "--scheme",
        action="append",
        help="selection scheme (random, consistent-hash); repeatable; default both",
    )
    resilience.add_argument(
        "--policy", default="SR8", help="acceptance policy on the servers"
    )
    resilience.add_argument("--rho", type=float, default=0.6, help="load factor")
    resilience.add_argument("--queries", type=int, default=4_000)
    resilience.add_argument(
        "--kill-at",
        action="append",
        type=float,
        help="kill one instance at this fraction of the run; repeatable; default 0.5",
    )
    resilience.add_argument(
        "--add-at",
        action="append",
        type=float,
        help="add one instance at this fraction of the run; repeatable",
    )
    resilience.add_argument(
        "--ecmp-hash",
        choices=["rendezvous", "modulo"],
        default="rendezvous",
        help="flow-to-instance mapping of the ECMP edge",
    )
    resilience.add_argument(
        "--spread", type=float, default=2.0, help="request upload spread in seconds"
    )
    resilience.add_argument(
        "--chunks", type=int, default=5, help="segments per spread upload"
    )
    _add_jobs_argument(resilience)
    _add_telemetry_arguments(resilience)
    resilience.set_defaults(handler=_command_resilience)

    flash_crowd = subparsers.add_parser(
        "flash-crowd",
        help="replay a baseline -> spike -> recovery arrival schedule",
    )
    _add_testbed_arguments(flash_crowd)
    flash_crowd.add_argument(
        "--policy",
        action="append",
        help="policy to run (RR, SR<k>, SRdyn); repeatable; default RR, SR4, SRdyn",
    )
    flash_crowd.add_argument(
        "--baseline-rho", type=float, default=0.5, help="baseline load factor"
    )
    flash_crowd.add_argument(
        "--spike-rho", type=float, default=1.5, help="load factor during the spike"
    )
    flash_crowd.add_argument(
        "--baseline-duration", type=float, default=40.0, help="baseline phase, seconds"
    )
    flash_crowd.add_argument(
        "--spike-duration", type=float, default=15.0, help="spike phase, seconds"
    )
    flash_crowd.add_argument(
        "--recovery-duration", type=float, default=45.0, help="recovery phase, seconds"
    )
    flash_crowd.add_argument(
        "--bin-width", type=float, default=5.0, help="figure time-bin width, seconds"
    )
    _add_jobs_argument(flash_crowd)
    _add_telemetry_arguments(flash_crowd)
    flash_crowd.set_defaults(handler=_command_flash_crowd)

    heterogeneous = subparsers.add_parser(
        "heterogeneous-fleet",
        help="run the Poisson workload over mixed fast/slow server tiers",
    )
    heterogeneous.add_argument(
        "--fast", type=int, default=4, help="servers in the fast tier"
    )
    heterogeneous.add_argument(
        "--slow", type=int, default=8, help="servers in the slow tier"
    )
    heterogeneous.add_argument(
        "--fast-speed", type=float, default=2.0, help="fast-tier CPU speed multiplier"
    )
    heterogeneous.add_argument(
        "--slow-speed", type=float, default=0.75, help="slow-tier CPU speed multiplier"
    )
    heterogeneous.add_argument(
        "--workers", type=int, default=32, help="Apache workers per server"
    )
    heterogeneous.add_argument(
        "--cores", type=int, default=2, help="CPU cores per server"
    )
    heterogeneous.add_argument("--seed", type=int, default=0, help="testbed RNG seed")
    heterogeneous.add_argument(
        "--policy",
        action="append",
        help="policy to run (RR, SR<k>, SRdyn); repeatable; default RR, SR4, SRdyn",
    )
    heterogeneous.add_argument(
        "--rho", action="append", type=float, help="load factor; repeatable; default 0.85"
    )
    heterogeneous.add_argument("--queries", type=int, default=4_000)
    _add_jobs_argument(heterogeneous)
    _add_telemetry_arguments(heterogeneous)
    heterogeneous.set_defaults(handler=_command_heterogeneous_fleet)

    autoscale = subparsers.add_parser(
        "autoscale",
        help="compare static vs elastic provisioning under a diurnal load",
    )
    autoscale.add_argument(
        "--workers", type=int, default=32, help="Apache workers per server"
    )
    autoscale.add_argument(
        "--cores", type=int, default=2, help="CPU cores per server"
    )
    autoscale.add_argument("--seed", type=int, default=0, help="testbed RNG seed")
    autoscale.add_argument(
        "--min-servers", type=int, default=4, help="elastic fleet floor"
    )
    autoscale.add_argument(
        "--max-servers",
        type=int,
        default=12,
        help="elastic fleet ceiling (and the static fleet's size)",
    )
    autoscale.add_argument(
        "--mean-load",
        type=float,
        default=0.5,
        help="day-average load as a fraction of the max fleet's capacity",
    )
    autoscale.add_argument(
        "--load-amplitude",
        type=float,
        default=0.3,
        help="peak-to-mean swing of the diurnal sinusoid",
    )
    autoscale.add_argument(
        "--period", type=float, default=240.0, help="compressed day length, seconds"
    )
    autoscale.add_argument(
        "--duration", type=float, default=480.0, help="total schedule length, seconds"
    )
    autoscale.add_argument(
        "--slo-p99", type=float, default=1.5, help="p99 response-time target, seconds"
    )
    autoscale.add_argument(
        "--mode",
        action="append",
        help="provisioning mode (static, reactive, predictive); repeatable; "
        "default all three",
    )
    autoscale.add_argument(
        "--time-factor",
        type=float,
        default=1.0,
        help="compress the day and every control-plane clock by this factor",
    )
    _add_jobs_argument(autoscale)
    _add_telemetry_arguments(autoscale)
    autoscale.set_defaults(handler=_command_autoscale)

    heavy_tail = subparsers.add_parser(
        "heavy-tail",
        help="heavy-tailed Pareto/lognormal sessions with Zipf user affinity",
    )
    _add_testbed_arguments(heavy_tail)
    heavy_tail.add_argument(
        "--policy",
        action="append",
        help="policy to run (RR, SR<k>, SRdyn); repeatable; default RR, SR4, SRdyn",
    )
    heavy_tail.add_argument(
        "--rho", type=float, default=0.7, help="offered load over fleet capacity"
    )
    heavy_tail.add_argument(
        "--arrivals", type=int, default=4_000, help="arrivals (sessions + one-shots)"
    )
    heavy_tail.add_argument(
        "--heavy-fraction",
        type=float,
        default=0.25,
        help="probability an arrival is a one-shot bounded-Pareto request",
    )
    heavy_tail.add_argument(
        "--session-length",
        type=float,
        default=4.0,
        help="mean keep-alive requests per session (geometric)",
    )
    heavy_tail.add_argument(
        "--users", type=int, default=200_000, help="simulated user population size"
    )
    heavy_tail.add_argument(
        "--user-zipf",
        type=float,
        default=1.3,
        help="Zipf exponent of user popularity (> 1)",
    )
    _add_jobs_argument(heavy_tail)
    _add_telemetry_arguments(heavy_tail)
    heavy_tail.set_defaults(handler=_command_heavy_tail)

    adversarial = subparsers.add_parser(
        "adversarial",
        help="SYN flood, ECMP hash-collision skew and gray failure mid-run",
    )
    _add_testbed_arguments(adversarial)
    adversarial.add_argument(
        "--lbs", type=int, default=4, help="load-balancer tier size (>= 2)"
    )
    adversarial.add_argument(
        "--rho", type=float, default=0.55, help="legitimate load factor"
    )
    adversarial.add_argument(
        "--queries", type=int, default=4_000, help="legitimate queries"
    )
    adversarial.add_argument("--service-mean", type=float, default=0.05)
    adversarial.add_argument(
        "--mode",
        action="append",
        choices=["baseline", "syn-flood", "hash-collision", "gray-failure"],
        help="attack mode to run; repeatable; default all four",
    )
    adversarial.add_argument(
        "--flood-rate-factor",
        type=float,
        default=3.0,
        help="flood intensity as a multiple of the legitimate rate",
    )
    adversarial.add_argument(
        "--flood-sources",
        type=int,
        default=32,
        help="spoofed source pool size (source churn)",
    )
    adversarial.add_argument(
        "--collision-flows",
        type=int,
        default=256,
        help="distinct colliding 5-tuples the offline search finds",
    )
    adversarial.add_argument(
        "--collision-target",
        type=int,
        default=0,
        help="index of the LB instance the collision flood concentrates on",
    )
    adversarial.add_argument(
        "--degraded-speed",
        type=float,
        default=0.2,
        help="gray-failure victim CPU speed multiplier (0, 1)",
    )
    adversarial.add_argument(
        "--flow-idle-timeout",
        type=float,
        default=5.0,
        help="LB flow-table idle timeout (housekeeping reclaims after this)",
    )
    adversarial.add_argument(
        "--request-timeout",
        type=float,
        default=2.0,
        help="server-side request timeout freeing workers pinned by the flood",
    )
    _add_jobs_argument(adversarial)
    _add_telemetry_arguments(adversarial)
    adversarial.set_defaults(handler=_command_adversarial)

    chaos = subparsers.add_parser(
        "chaos",
        help="packet loss, link flaps and jitter against a retrying client",
    )
    _add_testbed_arguments(chaos)
    chaos.add_argument(
        "--lbs", type=int, default=2, help="load-balancer tier size (>= 2)"
    )
    chaos.add_argument(
        "--rho", type=float, default=0.6, help="legitimate load factor"
    )
    chaos.add_argument(
        "--queries", type=int, default=4_000, help="legitimate queries"
    )
    chaos.add_argument("--service-mean", type=float, default=0.05)
    chaos.add_argument(
        "--mode",
        action="append",
        choices=["baseline", "loss", "flap", "jitter"],
        help="impairment cell to run; repeatable; default all four",
    )
    chaos.add_argument(
        "--loss-rate",
        type=float,
        default=0.01,
        help="i.i.d. packet loss probability of the loss cell",
    )
    chaos.add_argument(
        "--flap-count",
        type=int,
        default=2,
        help="scheduled link-down windows of the flap cell",
    )
    chaos.add_argument(
        "--flap-down",
        type=float,
        default=0.25,
        help="length of each link-down window in seconds",
    )
    chaos.add_argument(
        "--jitter-mean",
        type=float,
        default=0.002,
        help="mean exponential extra latency (s) of the jitter cell",
    )
    chaos.add_argument(
        "--syn-rto",
        type=float,
        default=0.2,
        help="initial SYN retransmission timeout in seconds (0 disables)",
    )
    chaos.add_argument(
        "--syn-rto-cap",
        type=float,
        default=2.0,
        help="upper bound on the exponentially backed-off SYN RTO",
    )
    chaos.add_argument(
        "--syn-rto-limit",
        type=int,
        default=4,
        help="maximum SYN retransmissions per connection attempt",
    )
    chaos.add_argument(
        "--retry-timeout",
        type=float,
        default=1.5,
        help="per-attempt client deadline before retrying on a fresh port",
    )
    chaos.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="full-connection retries before the client gives up",
    )
    chaos.add_argument(
        "--shed-watermark",
        type=int,
        default=112,
        help="backlog depth above which servers fast-RST new SYNs (0 disables)",
    )
    _add_jobs_argument(chaos)
    _add_telemetry_arguments(chaos)
    chaos.set_defaults(handler=_command_chaos)

    scale = subparsers.add_parser(
        "scale",
        help="one partitioned replay: millions of queries over ECMP pods",
    )
    _add_testbed_arguments(scale)
    scale.add_argument(
        "--queries",
        type=int,
        default=1_000_000,
        help="aggregate queries across the whole deployment",
    )
    scale.add_argument(
        "--pods",
        type=int,
        default=4,
        help="identical LB/server pods the front-end ECMP stage shards over",
    )
    scale.add_argument(
        "--partitions",
        type=_partitions_count,
        default=1,
        help="intra-run parallelism: processes executing this one run's "
        "pods (default 1 = in-process); never changes results, only "
        "wall-clock — distinct from --jobs, which fans out independent runs",
    )
    scale.add_argument(
        "--rho", type=float, default=0.8, help="load factor per pod"
    )
    scale.add_argument("--service-mean", type=float, default=0.02)
    scale.add_argument(
        "--policy", default="SR8", help="acceptance policy on the servers"
    )
    scale.add_argument(
        "--ecmp-hash",
        choices=["rendezvous", "modulo"],
        default="rendezvous",
        help="flow-to-pod mapping of the modeled front-end ECMP stage",
    )
    scale.add_argument(
        "--windows",
        type=int,
        default=64,
        help="max synchronization windows per run (lookahead coalescing)",
    )
    _add_jobs_argument(scale)
    _add_telemetry_arguments(scale)
    scale.set_defaults(handler=_command_scale)

    scenarios = subparsers.add_parser(
        "scenarios", help="list every registered scenario family"
    )
    scenarios.add_argument(
        "--json",
        action="store_true",
        help="machine-readable catalogue (name, description, cell keys)",
    )
    scenarios.set_defaults(handler=_command_scenarios)

    dashboard = subparsers.add_parser(
        "dashboard",
        help="render a saved telemetry report into an HTML dashboard",
    )
    dashboard.add_argument(
        "report", help="telemetry report JSON written by --telemetry-out"
    )
    dashboard.add_argument(
        "--out",
        default="dashboard.html",
        help="HTML file to write (default dashboard.html)",
    )
    dashboard.add_argument(
        "--title",
        default="Telemetry dashboard",
        help="page title of the rendered dashboard",
    )
    dashboard.set_defaults(handler=_command_dashboard)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``srlb-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    telemetry_on = _telemetry_requested(args)
    was_enabled = False
    if telemetry_on:
        from repro.telemetry import runtime as telemetry_runtime

        was_enabled = telemetry_runtime.telemetry_enabled()
        telemetry_runtime.enable()
    try:
        status = args.handler(args)
        if telemetry_on and status == 0:
            _emit_telemetry(args)
        return status
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if telemetry_on and not was_enabled:
            from repro.telemetry import runtime as telemetry_runtime

            telemetry_runtime.disable()


if __name__ == "__main__":
    sys.exit(main())
