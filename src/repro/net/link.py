"""Point-to-point link model.

The experimental platform of the paper bridged all VPP instances on a
single link, so the default testbed uses the shared
:class:`~repro.net.fabric.LANFabric`.  Point-to-point links are still
provided as a substrate: they are useful for building multi-hop
topologies in examples, and for the ablation that adds network latency
between racks.

A link adds a fixed propagation latency plus a serialization delay
derived from the configured bandwidth, and models a finite FIFO output
queue (tail-drop) per direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol

from repro.errors import NetworkError
from repro.net.channel import DeliveryChannel, InProcessChannel
from repro.net.packet import Packet
from repro.sim.engine import Simulator


class PacketSink(Protocol):
    """Anything that can receive a packet from the network."""

    def receive(self, packet: Packet) -> None:
        """Handle an incoming packet."""


@dataclass
class LinkStats:
    """Per-direction link counters.

    ``packets_dropped`` is the unified drop total; every drop is also
    counted in exactly one of the reason counters (the same accounting
    scheme as :class:`~repro.net.fabric.FabricStats`, documented in
    docs/architecture.md):

    * ``packets_dropped_queue_full`` — tail-drop at send time because
      the per-direction output queue was full;
    * ``packets_dropped_sink_detached`` — the receiving endpoint was
      detached, either at send time or while the packet was in flight.
      Mid-flight drops are also counted in ``packets_sent`` (the link
      carried the packet; the sink was gone on arrival).

    The remaining reason counters are incremented only by the fault
    pipelines of :mod:`repro.net.faults`, which reuse this stats record
    so fault drops live in the same unified taxonomy:

    * ``packets_dropped_loss`` — independent (i.i.d.) packet loss;
    * ``packets_dropped_burst`` — Gilbert–Elliott bursty loss;
    * ``packets_dropped_corrupted`` — corruption-as-drop (the frame
      fails its checksum at the receiver);
    * ``packets_dropped_link_down`` — offered during a scheduled flap
      window.

    ``packets_delayed_jitter`` and ``packets_reordered`` count delay
    shaping, not drops — they do not contribute to ``packets_dropped``.
    """

    packets_sent: int = 0
    packets_dropped: int = 0
    bytes_sent: int = 0
    packets_dropped_queue_full: int = 0
    packets_dropped_sink_detached: int = 0
    packets_dropped_loss: int = 0
    packets_dropped_burst: int = 0
    packets_dropped_corrupted: int = 0
    packets_dropped_link_down: int = 0
    packets_delayed_jitter: int = 0
    packets_reordered: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Flat numeric counters (the uniform telemetry-sampler API).

        One entry per counter, drop reasons included — this is how the
        telemetry probe streams fault-plane accounting as time series
        and how the chaos scenario exposes per-reason totals in its
        payload without naming each field.
        """
        return {
            "packets_sent": self.packets_sent,
            "packets_dropped": self.packets_dropped,
            "bytes_sent": self.bytes_sent,
            "packets_dropped_queue_full": self.packets_dropped_queue_full,
            "packets_dropped_sink_detached": self.packets_dropped_sink_detached,
            "packets_dropped_loss": self.packets_dropped_loss,
            "packets_dropped_burst": self.packets_dropped_burst,
            "packets_dropped_corrupted": self.packets_dropped_corrupted,
            "packets_dropped_link_down": self.packets_dropped_link_down,
            "packets_delayed_jitter": self.packets_delayed_jitter,
            "packets_reordered": self.packets_reordered,
        }


class Link:
    """Bidirectional point-to-point link between two packet sinks.

    Parameters
    ----------
    simulator:
        The simulation engine used to schedule deliveries.
    endpoint_a, endpoint_b:
        The two attached nodes.
    latency:
        One-way propagation delay in seconds.
    bandwidth_bps:
        Link speed in bits per second; ``None`` means infinitely fast
        (no serialization delay and no queueing).
    queue_capacity:
        Maximum number of packets that may be in flight per direction
        before tail-drop kicks in.  Only enforced when a bandwidth is
        configured.
    """

    def __init__(
        self,
        simulator: Simulator,
        endpoint_a: PacketSink,
        endpoint_b: PacketSink,
        latency: float = 50e-6,
        bandwidth_bps: Optional[float] = None,
        queue_capacity: int = 1024,
        channel: Optional[DeliveryChannel] = None,
    ) -> None:
        if latency < 0:
            raise NetworkError(f"link latency must be non-negative, got {latency!r}")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise NetworkError(f"link bandwidth must be positive, got {bandwidth_bps!r}")
        if queue_capacity <= 0:
            raise NetworkError(f"queue capacity must be positive, got {queue_capacity!r}")
        self._simulator = simulator
        self._endpoints = (endpoint_a, endpoint_b)
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.queue_capacity = queue_capacity
        self.channel: DeliveryChannel = (
            channel if channel is not None else InProcessChannel(simulator)
        )
        # Per-direction state, keyed by the *receiving* endpoint index.
        self._busy_until: Dict[int, float] = {0: 0.0, 1: 0.0}
        self._in_flight: Dict[int, int] = {0: 0, 1: 0}
        self._detached: Dict[int, bool] = {0: False, 1: False}
        self.stats: Dict[int, LinkStats] = {0: LinkStats(), 1: LinkStats()}
        # One arrival guard per direction, interned at construction
        # instead of one closure per transmitted packet.  The guards
        # read mutable link state (in-flight counts, detach flags)
        # through `self`, so sharing them across packets is safe.
        self._arrival_guards = {
            0: self._make_arrival_guard(0),
            1: self._make_arrival_guard(1),
        }

    def _make_arrival_guard(self, direction: int):
        stats = self.stats[direction]

        def arrives() -> bool:
            if self.bandwidth_bps is not None:
                self._in_flight[direction] -= 1
            if self._detached[direction]:
                # Detached while the packet was in flight: same counter
                # as the send-time case in transmit().
                stats.packets_dropped += 1
                stats.packets_dropped_sink_detached += 1
                return False
            return True

        return arrives

    def detach(self, endpoint: PacketSink) -> None:
        """Detach ``endpoint``: packets toward it are dropped from now on.

        Drops — whether the detach happened before the send or while the
        packet was in flight — are counted uniformly as
        ``packets_dropped_sink_detached`` (plus the ``packets_dropped``
        total) on the sending direction's stats.
        """
        if endpoint is self._endpoints[0]:
            self._detached[0] = True
        elif endpoint is self._endpoints[1]:
            self._detached[1] = True
        else:
            raise NetworkError("node is not attached to this link")

    def other_end(self, endpoint: PacketSink) -> PacketSink:
        """The endpoint opposite to ``endpoint``."""
        if endpoint is self._endpoints[0]:
            return self._endpoints[1]
        if endpoint is self._endpoints[1]:
            return self._endpoints[0]
        raise NetworkError("node is not attached to this link")

    def transmit(self, sender: PacketSink, packet: Packet) -> bool:
        """Send ``packet`` from ``sender`` to the opposite endpoint.

        Returns ``True`` if the packet was accepted, ``False`` if it was
        tail-dropped because the output queue is full.
        """
        if sender is self._endpoints[0]:
            direction = 1
        elif sender is self._endpoints[1]:
            direction = 0
        else:
            raise NetworkError("sender is not attached to this link")
        receiver = self._endpoints[direction]
        stats = self.stats[direction]

        if self._detached[direction]:
            stats.packets_dropped += 1
            stats.packets_dropped_sink_detached += 1
            return False

        if self.bandwidth_bps is None:
            delivery_delay = self.latency
        else:
            if self._in_flight[direction] >= self.queue_capacity:
                stats.packets_dropped += 1
                stats.packets_dropped_queue_full += 1
                return False
            serialization = packet.size_bytes() * 8 / self.bandwidth_bps
            start = max(self._simulator.now, self._busy_until[direction])
            finish = start + serialization
            self._busy_until[direction] = finish
            delivery_delay = (finish - self._simulator.now) + self.latency
            self._in_flight[direction] += 1

        stats.packets_sent += 1
        stats.bytes_sent += packet.size_bytes()

        self.channel.deliver(
            receiver,
            packet,
            delivery_delay,
            "link-delivery",
            self._arrival_guards[direction],
        )
        return True
