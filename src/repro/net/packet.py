"""Packet and TCP-segment models.

The reproduction simulates traffic at packet grain: each HTTP query is a
short TCP conversation (SYN, SYN-ACK, request, response, reset on
overload), and the Service Hunting logic manipulates the Segment Routing
header carried by individual packets.  The classes here are deliberately
small value objects; behaviour lives in the nodes that send and receive
them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import NetworkError
from repro.net.addressing import IPv6Address
from repro.net.srh import SegmentRoutingHeader

#: Fixed IPv6 header size in bytes.
IPV6_HEADER_SIZE = 40
#: Simplified TCP header size in bytes (no options).
TCP_HEADER_SIZE = 20
#: Default hop limit for newly created packets.
DEFAULT_HOP_LIMIT = 64

_packet_ids = itertools.count(1)


class TCPFlag(enum.Flag):
    """TCP control flags used by the simplified TCP model."""

    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    FIN = enum.auto()
    RST = enum.auto()
    PSH = enum.auto()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self is TCPFlag.NONE:
            return "-"
        return "|".join(flag.name for flag in TCPFlag if flag and flag in self)


@dataclass(frozen=True)
class FlowKey:
    """The 4-tuple identifying a TCP flow towards a VIP.

    The protocol is implicitly TCP, so only source/destination address
    and port are carried.  The load balancer's flow table and the
    consistent-hashing selection scheme are keyed by this value.
    """

    src_address: IPv6Address
    src_port: int
    dst_address: IPv6Address
    dst_port: int

    def reversed(self) -> "FlowKey":
        """The key of the reverse direction of the flow."""
        return FlowKey(
            src_address=self.dst_address,
            src_port=self.dst_port,
            dst_address=self.src_address,
            dst_port=self.src_port,
        )

    def __str__(self) -> str:
        return (
            f"{self.src_address}:{self.src_port} -> "
            f"{self.dst_address}:{self.dst_port}"
        )


@dataclass
class TCPSegment:
    """A (simplified) TCP segment.

    ``request_id`` threads the workload's request identity through the
    network so the metrics collector can match responses to requests
    without deep-packet inspection; real systems achieve the same with
    the flow 5-tuple, which is also available via :class:`FlowKey`.
    """

    src_port: int
    dst_port: int
    flags: TCPFlag = TCPFlag.NONE
    payload_size: int = 0
    request_id: Optional[int] = None

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 < port <= 0xFFFF:
                raise NetworkError(f"invalid TCP port {port!r}")
        if self.payload_size < 0:
            raise NetworkError(f"negative TCP payload size {self.payload_size!r}")

    def has(self, flag: TCPFlag) -> bool:
        """Whether the given flag is set."""
        return bool(self.flags & flag)

    def size_bytes(self) -> int:
        """Wire size of the segment."""
        return TCP_HEADER_SIZE + self.payload_size


@dataclass
class Packet:
    """An IPv6 packet, optionally carrying a Segment Routing header.

    The IPv6 destination address always equals the SRH's active segment
    while an SRH is present — maintaining that invariant is the
    responsibility of whoever inserts or advances the SRH (see
    :meth:`attach_srh` and :meth:`advance_srh`).
    """

    src: IPv6Address
    dst: IPv6Address
    tcp: TCPSegment
    srh: Optional[SegmentRoutingHeader] = None
    hop_limit: int = DEFAULT_HOP_LIMIT
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if self.hop_limit <= 0:
            raise NetworkError(f"invalid hop limit {self.hop_limit!r}")
        if self.srh is not None and self.srh.active_segment != self.dst:
            raise NetworkError(
                "packet destination must equal the SRH active segment "
                f"(dst={self.dst}, active={self.srh.active_segment})"
            )

    # ------------------------------------------------------------------
    # flow identity
    # ------------------------------------------------------------------
    def flow_key(self) -> FlowKey:
        """Forward-direction flow key of this packet."""
        return FlowKey(
            src_address=self.src,
            src_port=self.tcp.src_port,
            dst_address=self.final_destination,
            dst_port=self.tcp.dst_port,
        )

    @property
    def final_destination(self) -> IPv6Address:
        """Where the packet is ultimately headed (last SRH segment if any)."""
        if self.srh is not None:
            return self.srh.final_segment
        return self.dst

    # ------------------------------------------------------------------
    # segment routing helpers
    # ------------------------------------------------------------------
    def attach_srh(self, srh: SegmentRoutingHeader) -> None:
        """Attach an SRH and point the destination at its active segment."""
        self.srh = srh
        self.dst = srh.active_segment

    def detach_srh(self) -> None:
        """Remove the SRH, keeping the current destination address."""
        self.srh = None

    def advance_srh(self) -> IPv6Address:
        """Advance the SRH by one segment and update the destination."""
        if self.srh is None:
            raise NetworkError("packet has no SRH to advance")
        self.dst = self.srh.advance()
        return self.dst

    def set_segments_left(self, value: int) -> IPv6Address:
        """Set SegmentsLeft (Service Hunting semantics) and update dst."""
        if self.srh is None:
            raise NetworkError("packet has no SRH")
        self.dst = self.srh.set_segments_left(value)
        return self.dst

    # ------------------------------------------------------------------
    # forwarding helpers
    # ------------------------------------------------------------------
    def decrement_hop_limit(self) -> None:
        """Consume one hop; raises when the hop limit is exhausted."""
        if self.hop_limit <= 1:
            raise NetworkError(f"hop limit exhausted for packet {self.packet_id}")
        self.hop_limit -= 1

    def size_bytes(self) -> int:
        """Total wire size (IPv6 + optional SRH + TCP segment)."""
        size = IPV6_HEADER_SIZE + self.tcp.size_bytes()
        if self.srh is not None:
            size += self.srh.size_bytes()
        return size

    def copy(self) -> "Packet":
        """Deep-enough copy for retransmission (new packet id)."""
        return replace(
            self,
            srh=self.srh.copy() if self.srh is not None else None,
            packet_id=next(_packet_ids),
        )

    def describe(self) -> str:
        """Readable one-line description, used by logging and tests."""
        srh_text = f" {self.srh}" if self.srh is not None else ""
        return (
            f"pkt#{self.packet_id} [{self.tcp.flags}] "
            f"{self.src}:{self.tcp.src_port} -> {self.dst}:{self.tcp.dst_port}"
            f"{srh_text}"
        )


def make_syn(
    src: IPv6Address,
    dst: IPv6Address,
    src_port: int,
    dst_port: int,
    request_id: Optional[int] = None,
    created_at: float = 0.0,
) -> Packet:
    """Convenience constructor for a connection-request (SYN) packet."""
    return Packet(
        src=src,
        dst=dst,
        tcp=TCPSegment(
            src_port=src_port,
            dst_port=dst_port,
            flags=TCPFlag.SYN,
            request_id=request_id,
        ),
        created_at=created_at,
    )


def make_reset(
    flow_key: FlowKey,
    request_id: Optional[int] = None,
    created_at: float = 0.0,
) -> Packet:
    """RST addressed to the initiator of ``flow_key``.

    ``flow_key`` is the client-to-service direction; the reset travels
    the other way, from the flow's destination (the VIP or server) back
    to its source.  Used by the load balancer (steering miss), the
    server application (backlog overflow, request timeout) and the
    virtual router (data for a non-existent connection).
    """
    return Packet(
        src=flow_key.dst_address,
        dst=flow_key.src_address,
        tcp=TCPSegment(
            src_port=flow_key.dst_port,
            dst_port=flow_key.src_port,
            flags=TCPFlag.RST,
            request_id=request_id,
        ),
        created_at=created_at,
    )


def reply_ports(packet: Packet) -> Tuple[int, int]:
    """Source/destination ports for a reply to ``packet``."""
    return packet.tcp.dst_port, packet.tcp.src_port
