"""Packet and TCP-segment models.

The reproduction simulates traffic at packet grain: each HTTP query is a
short TCP conversation (SYN, SYN-ACK, request, response, reset on
overload), and the Service Hunting logic manipulates the Segment Routing
header carried by individual packets.  The classes here are deliberately
small value objects; behaviour lives in the nodes that send and receive
them.

Every class is slotted and hand-written: the simulator creates a handful
of packets per query and reads their flow identity at every hop, so the
dataclass machinery this replaced (generated ``__init__``/``__eq__``
plus per-call flow-key construction) was measurable across a full
replay.  :meth:`Packet.flow_key` is cached on the packet and invalidated
by exactly the mutations that can change the flow identity — attaching
or detaching an SRH, or assigning :attr:`Packet.dst` — while SRH
*advancement* (``advance_srh``/``set_segments_left``) keeps the cache,
because it can only move the active segment along a fixed segment list
whose final segment (the flow's true destination) never changes.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional, Tuple

from repro.errors import NetworkError
from repro.net.addressing import IPv6Address
from repro.net.srh import SegmentRoutingHeader

#: Fixed IPv6 header size in bytes.
IPV6_HEADER_SIZE = 40
#: Simplified TCP header size in bytes (no options).
TCP_HEADER_SIZE = 20
#: Default hop limit for newly created packets.
DEFAULT_HOP_LIMIT = 64

_packet_ids = itertools.count(1)


class TCPFlag(enum.Flag):
    """TCP control flags used by the simplified TCP model."""

    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    FIN = enum.auto()
    RST = enum.auto()
    PSH = enum.auto()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self is TCPFlag.NONE:
            return "-"
        return "|".join(flag.name for flag in TCPFlag if flag and flag in self)


class FlowKey:
    """The 4-tuple identifying a TCP flow towards a VIP.

    The protocol is implicitly TCP, so only source/destination address
    and port are carried.  The load balancer's flow table and the
    consistent-hashing selection scheme are keyed by this value, so the
    hash is computed once at construction (with the same tuple formula
    the earlier frozen dataclass used, keeping hash values identical).
    """

    __slots__ = ("src_address", "src_port", "dst_address", "dst_port", "_hash", "_rev")

    def __init__(
        self,
        src_address: IPv6Address,
        src_port: int,
        dst_address: IPv6Address,
        dst_port: int,
    ) -> None:
        _set = object.__setattr__
        _set(self, "src_address", src_address)
        _set(self, "src_port", src_port)
        _set(self, "dst_address", dst_address)
        _set(self, "dst_port", dst_port)
        _set(self, "_hash", hash((src_address, src_port, dst_address, dst_port)))
        _set(self, "_rev", None)

    def __setattr__(self, name: str, value: object) -> None:
        # The cached hash (and reverse-key link) make mutation unsafe
        # for a dict key, so enforce the immutability the frozen
        # dataclass this replaced provided.
        raise AttributeError(f"FlowKey is immutable (cannot set {name!r})")

    def reversed(self) -> "FlowKey":
        """The key of the reverse direction of the flow (cached).

        Steering-signal handling derives the forward key from a
        SYN-ACK's reverse direction at least twice per acceptance
        (ownership check, then learning); keys are immutable, so the
        two directions can simply point at each other.
        """
        rev = self._rev
        if rev is None:
            rev = FlowKey(
                src_address=self.dst_address,
                src_port=self.dst_port,
                dst_address=self.src_address,
                dst_port=self.src_port,
            )
            object.__setattr__(rev, "_rev", self)
            object.__setattr__(self, "_rev", rev)
        return rev

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other.__class__ is FlowKey:
            return (
                self.src_address == other.src_address
                and self.src_port == other.src_port
                and self.dst_address == other.dst_address
                and self.dst_port == other.dst_port
            )
        return NotImplemented

    def __reduce__(self):
        return (
            FlowKey,
            (self.src_address, self.src_port, self.dst_address, self.dst_port),
        )

    def __repr__(self) -> str:
        return (
            f"FlowKey(src_address={self.src_address!r}, "
            f"src_port={self.src_port!r}, dst_address={self.dst_address!r}, "
            f"dst_port={self.dst_port!r})"
        )

    def __str__(self) -> str:
        return (
            f"{self.src_address}:{self.src_port} -> "
            f"{self.dst_address}:{self.dst_port}"
        )


class TCPSegment:
    """A (simplified) TCP segment.

    ``request_id`` threads the workload's request identity through the
    network so the metrics collector can match responses to requests
    without deep-packet inspection; real systems achieve the same with
    the flow 5-tuple, which is also available via :class:`FlowKey`.
    """

    __slots__ = ("src_port", "dst_port", "flags", "payload_size", "request_id")

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        flags: TCPFlag = TCPFlag.NONE,
        payload_size: int = 0,
        request_id: Optional[int] = None,
    ) -> None:
        for port in (src_port, dst_port):
            if not 0 < port <= 0xFFFF:
                raise NetworkError(f"invalid TCP port {port!r}")
        if payload_size < 0:
            raise NetworkError(f"negative TCP payload size {payload_size!r}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.flags = flags
        self.payload_size = payload_size
        self.request_id = request_id

    def has(self, flag: TCPFlag) -> bool:
        """Whether the given flag is set."""
        # Integer masking on the members' stored value sidesteps both
        # enum.Flag.__and__ (which constructs a Flag member per call)
        # and the .value descriptor; this runs several times per packet
        # at every hop.
        return bool(self.flags._value_ & flag._value_)

    def size_bytes(self) -> int:
        """Wire size of the segment."""
        return TCP_HEADER_SIZE + self.payload_size

    def __eq__(self, other: object) -> bool:
        if other.__class__ is TCPSegment:
            return (
                self.src_port == other.src_port
                and self.dst_port == other.dst_port
                and self.flags == other.flags
                and self.payload_size == other.payload_size
                and self.request_id == other.request_id
            )
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"TCPSegment(src_port={self.src_port!r}, dst_port={self.dst_port!r}, "
            f"flags={self.flags!r}, payload_size={self.payload_size!r}, "
            f"request_id={self.request_id!r})"
        )


class Packet:
    """An IPv6 packet, optionally carrying a Segment Routing header.

    The IPv6 destination address always equals the SRH's active segment
    while an SRH is present — maintaining that invariant is the
    responsibility of whoever inserts or advances the SRH (see
    :meth:`attach_srh` and :meth:`advance_srh`).
    """

    __slots__ = (
        "src",
        "_dst",
        "tcp",
        "srh",
        "hop_limit",
        "packet_id",
        "created_at",
        "_flow_key",
        "in_flight",
    )

    def __init__(
        self,
        src: IPv6Address,
        dst: IPv6Address,
        tcp: TCPSegment,
        srh: Optional[SegmentRoutingHeader] = None,
        hop_limit: int = DEFAULT_HOP_LIMIT,
        packet_id: Optional[int] = None,
        created_at: float = 0.0,
    ) -> None:
        if hop_limit <= 0:
            raise NetworkError(f"invalid hop limit {hop_limit!r}")
        if srh is not None and srh.active_segment != dst:
            raise NetworkError(
                "packet destination must equal the SRH active segment "
                f"(dst={dst}, active={srh.active_segment})"
            )
        self.src = src
        self._dst = dst
        self.tcp = tcp
        self.srh = srh
        self.hop_limit = hop_limit
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        self.created_at = created_at
        self._flow_key: Optional[FlowKey] = None
        #: Maintained by pooled delivery channels: True while a delivery
        #: of this packet is scheduled.  See :class:`PacketPool`.
        self.in_flight = False

    # ------------------------------------------------------------------
    # destination (flow-key cache invalidation point)
    # ------------------------------------------------------------------
    @property
    def dst(self) -> IPv6Address:
        """Current IPv6 destination address."""
        return self._dst

    @dst.setter
    def dst(self, value: IPv6Address) -> None:
        self._dst = value
        # Without an SRH the destination *is* the flow's destination, so
        # any assignment may change the flow identity.
        self._flow_key = None

    # ------------------------------------------------------------------
    # flow identity
    # ------------------------------------------------------------------
    def flow_key(self) -> FlowKey:
        """Forward-direction flow key of this packet (cached)."""
        key = self._flow_key
        if key is None:
            tcp = self.tcp
            srh = self.srh
            key = self._flow_key = FlowKey(
                self.src,
                tcp.src_port,
                self._dst if srh is None else srh.segments[0],
                tcp.dst_port,
            )
        return key

    @property
    def final_destination(self) -> IPv6Address:
        """Where the packet is ultimately headed (last SRH segment if any)."""
        if self.srh is not None:
            return self.srh.final_segment
        return self._dst

    # ------------------------------------------------------------------
    # segment routing helpers
    # ------------------------------------------------------------------
    def attach_srh(self, srh: SegmentRoutingHeader) -> None:
        """Attach an SRH and point the destination at its active segment."""
        self.srh = srh
        self._dst = srh.active_segment
        self._flow_key = None

    def detach_srh(self) -> None:
        """Remove the SRH, keeping the current destination address."""
        self.srh = None
        self._flow_key = None

    def advance_srh(self) -> IPv6Address:
        """Advance the SRH by one segment and update the destination.

        The cached flow key survives: advancing only decrements
        ``SegmentsLeft``, and the flow key is built from the *final*
        segment, which never moves.
        """
        if self.srh is None:
            raise NetworkError("packet has no SRH to advance")
        self._dst = self.srh.advance()
        return self._dst

    def set_segments_left(self, value: int) -> IPv6Address:
        """Set SegmentsLeft (Service Hunting semantics) and update dst.

        Keeps the cached flow key, for the same reason as
        :meth:`advance_srh`.
        """
        if self.srh is None:
            raise NetworkError("packet has no SRH")
        self._dst = self.srh.set_segments_left(value)
        return self._dst

    # ------------------------------------------------------------------
    # forwarding helpers
    # ------------------------------------------------------------------
    def decrement_hop_limit(self) -> None:
        """Consume one hop; raises when the hop limit is exhausted."""
        if self.hop_limit <= 1:
            raise NetworkError(f"hop limit exhausted for packet {self.packet_id}")
        self.hop_limit -= 1

    def size_bytes(self) -> int:
        """Total wire size (IPv6 + optional SRH + TCP segment)."""
        size = IPV6_HEADER_SIZE + self.tcp.size_bytes()
        if self.srh is not None:
            size += self.srh.size_bytes()
        return size

    def copy(self) -> "Packet":
        """Deep-enough copy for retransmission (new packet id).

        An internal fast path: the source packet already satisfies the
        constructor invariants, so they are not re-validated.  The TCP
        segment is shared (it is never mutated in place); the SRH is
        copied because advancement mutates it.
        """
        clone = Packet.__new__(Packet)
        clone.src = self.src
        clone._dst = self._dst
        clone.tcp = self.tcp
        clone.srh = self.srh.copy() if self.srh is not None else None
        clone.hop_limit = self.hop_limit
        clone.packet_id = next(_packet_ids)
        clone.created_at = self.created_at
        clone._flow_key = self._flow_key
        clone.in_flight = False
        return clone

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Packet:
            return (
                self.packet_id == other.packet_id
                and self.src == other.src
                and self._dst == other._dst
                and self.tcp == other.tcp
                and self.srh == other.srh
                and self.hop_limit == other.hop_limit
                and self.created_at == other.created_at
            )
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"Packet(src={self.src!r}, dst={self._dst!r}, tcp={self.tcp!r}, "
            f"srh={self.srh!r}, hop_limit={self.hop_limit!r}, "
            f"packet_id={self.packet_id!r}, created_at={self.created_at!r})"
        )

    def describe(self) -> str:
        """Readable one-line description, used by logging and tests."""
        srh_text = f" {self.srh}" if self.srh is not None else ""
        return (
            f"pkt#{self.packet_id} [{self.tcp.flags}] "
            f"{self.src}:{self.tcp.src_port} -> {self._dst}:{self.tcp.dst_port}"
            f"{srh_text}"
        )


class PacketPool:
    """Free lists of :class:`Packet` and :class:`TCPSegment` objects.

    A packet-grain replay allocates a handful of packets per query and
    drops every one of them within microseconds of simulated time; the
    pool recycles those carcasses so the steady state allocates nothing.

    Reuse can never leak state because :meth:`acquire` *re-runs the
    ordinary constructor* on the recycled object: every slot — the
    flow-key cache, SRH, destination, flags, the lot — is reassigned
    through ``__init__`` with full validation, and a fresh ``packet_id``
    is drawn from the same global counter a new object would use.  A
    pooled packet is therefore field-for-field identical to a freshly
    constructed one (pinned by a hypothesis property test), and pooled
    runs are bit-identical to unpooled ones.

    Ownership protocol (enforced by the pooled delivery channel, see
    :class:`~repro.net.channel.PooledInProcessChannel`): the channel
    sets :attr:`Packet.in_flight` when a delivery is scheduled and
    clears it when it fires; after ``sink.receive(packet)`` returns, a
    packet whose flag is still clear was not re-sent, so no component
    holds it (nodes never retain packets beyond ``receive``) and it goes
    back on the free list.  Pool use is opt-in per testbed
    (``TestbedConfig.packet_pooling``); the unpooled path stays the
    reference.
    """

    __slots__ = ("max_size", "_packets", "_segments", "reused", "released")

    def __init__(self, max_size: int = 4096) -> None:
        if max_size < 0:
            raise NetworkError(f"negative pool size {max_size!r}")
        self.max_size = max_size
        self._packets: list = []
        self._segments: list = []
        #: Acquisitions served from the free list (diagnostics).
        self.reused = 0
        #: Objects returned to the free lists (diagnostics).
        self.released = 0

    def __len__(self) -> int:
        return len(self._packets)

    def acquire(
        self,
        src: IPv6Address,
        dst: IPv6Address,
        tcp: TCPSegment,
        srh: Optional[SegmentRoutingHeader] = None,
        hop_limit: int = DEFAULT_HOP_LIMIT,
        packet_id: Optional[int] = None,
        created_at: float = 0.0,
    ) -> Packet:
        """A packet, recycled when possible; same contract as ``Packet(...)``."""
        packets = self._packets
        if packets:
            packet = packets.pop()
            self.reused += 1
            packet.__init__(src, dst, tcp, srh, hop_limit, packet_id, created_at)
            return packet
        return Packet(src, dst, tcp, srh, hop_limit, packet_id, created_at)

    def acquire_segment(
        self,
        src_port: int,
        dst_port: int,
        flags: TCPFlag = TCPFlag.NONE,
        payload_size: int = 0,
        request_id: Optional[int] = None,
    ) -> TCPSegment:
        """A TCP segment, recycled when possible; same contract as ``TCPSegment(...)``."""
        segments = self._segments
        if segments:
            segment = segments.pop()
            self.reused += 1
            segment.__init__(src_port, dst_port, flags, payload_size, request_id)
            return segment
        return TCPSegment(src_port, dst_port, flags, payload_size, request_id)

    def release(self, packet: Packet) -> None:
        """Return a dead packet (and its segment) to the free lists.

        The caller asserts nothing references the packet any more.  All
        object references are dropped here so a parked carcass cannot
        pin an SRH or a segment; the remaining scalar slots are
        reassigned by the constructor on reuse.
        """
        segment = packet.tcp
        if segment is not None and len(self._segments) < self.max_size:
            self._segments.append(segment)
            self.released += 1
        packet.tcp = None
        packet.srh = None
        packet._flow_key = None
        if len(self._packets) < self.max_size:
            self._packets.append(packet)
            self.released += 1


def make_syn(
    src: IPv6Address,
    dst: IPv6Address,
    src_port: int,
    dst_port: int,
    request_id: Optional[int] = None,
    created_at: float = 0.0,
    pool: Optional[PacketPool] = None,
) -> Packet:
    """Convenience constructor for a connection-request (SYN) packet."""
    if pool is not None:
        return pool.acquire(
            src=src,
            dst=dst,
            tcp=pool.acquire_segment(
                src_port=src_port,
                dst_port=dst_port,
                flags=TCPFlag.SYN,
                request_id=request_id,
            ),
            created_at=created_at,
        )
    return Packet(
        src=src,
        dst=dst,
        tcp=TCPSegment(
            src_port=src_port,
            dst_port=dst_port,
            flags=TCPFlag.SYN,
            request_id=request_id,
        ),
        created_at=created_at,
    )


def make_reset(
    flow_key: FlowKey,
    request_id: Optional[int] = None,
    created_at: float = 0.0,
    pool: Optional[PacketPool] = None,
) -> Packet:
    """RST addressed to the initiator of ``flow_key``.

    ``flow_key`` is the client-to-service direction; the reset travels
    the other way, from the flow's destination (the VIP or server) back
    to its source.  Used by the load balancer (steering miss), the
    server application (backlog overflow, request timeout) and the
    virtual router (data for a non-existent connection).
    """
    if pool is not None:
        return pool.acquire(
            src=flow_key.dst_address,
            dst=flow_key.src_address,
            tcp=pool.acquire_segment(
                src_port=flow_key.dst_port,
                dst_port=flow_key.src_port,
                flags=TCPFlag.RST,
                request_id=request_id,
            ),
            created_at=created_at,
        )
    return Packet(
        src=flow_key.dst_address,
        dst=flow_key.src_address,
        tcp=TCPSegment(
            src_port=flow_key.dst_port,
            dst_port=flow_key.src_port,
            flags=TCPFlag.RST,
            request_id=request_id,
        ),
        created_at=created_at,
    )


def reply_ports(packet: Packet) -> Tuple[int, int]:
    """Source/destination ports for a reply to ``packet``."""
    return packet.tcp.dst_port, packet.tcp.src_port
