"""IPv6 addressing for the simulated data center.

SRLB is built on IPv6 Segment Routing: applications are identified by
virtual IP addresses (VIPs), servers by their physical addresses, and SR
segments are themselves IPv6 addresses (segment identifiers, SIDs).  This
module provides a small, dependency-free IPv6 address type plus prefix
matching and an allocator used by the topology builder to hand out
addresses from data-center prefixes.

The implementation stores addresses as 128-bit integers, which keeps
comparisons, hashing and longest-prefix matching cheap — the simulator
forwards hundreds of thousands of packets per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Optional

from repro.errors import AddressError

_MAX_IPV6 = (1 << 128) - 1


def _parse_ipv6(text: str) -> int:
    """Parse an IPv6 address in (possibly compressed) hex notation."""
    if not isinstance(text, str) or not text:
        raise AddressError(f"invalid IPv6 address: {text!r}")
    if "::" in text:
        if text.count("::") > 1:
            raise AddressError(f"invalid IPv6 address (multiple '::'): {text!r}")
        head, tail = text.split("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - (len(head_groups) + len(tail_groups))
        if missing < 0:
            raise AddressError(f"invalid IPv6 address (too many groups): {text!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise AddressError(f"invalid IPv6 address (expected 8 groups): {text!r}")
    value = 0
    for group in groups:
        if not group or len(group) > 4:
            raise AddressError(f"invalid IPv6 group {group!r} in {text!r}")
        try:
            part = int(group, 16)
        except ValueError as exc:
            raise AddressError(f"invalid IPv6 group {group!r} in {text!r}") from exc
        value = (value << 16) | part
    return value


@lru_cache(maxsize=None)
def _format_ipv6(value: int) -> str:
    """Format a 128-bit integer as a compressed IPv6 address string.

    Memoized: the simulator formats the same few hundred topology
    addresses over and over (ECMP 5-tuple keys, consistent-hash flow
    keys), so the cache is small and permanently hot.  The key is the
    128-bit integer value, and the universe of values is bounded by the
    testbed's address plan, not by traffic volume.
    """
    groups = [(value >> (16 * (7 - i))) & 0xFFFF for i in range(8)]
    # Find the longest run of zero groups to compress with '::'.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for i, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = i, 1
            else:
                run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(f"{g:x}" for g in groups)
    head = ":".join(f"{g:x}" for g in groups[:best_start])
    tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
    return f"{head}::{tail}"


class IPv6Address:
    """Immutable IPv6 address backed by a 128-bit integer.

    Slotted and hand-written: addresses key the fabric's address map,
    the load balancer's backend pools and every flow key, so they are
    hashed on essentially every packet hop.  The hash is computed once
    at construction, with the same ``hash((value,))`` formula the
    earlier frozen dataclass generated, keeping hash values identical.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: int) -> None:
        if not isinstance(value, int) or not 0 <= value <= _MAX_IPV6:
            raise AddressError(f"IPv6 address value out of range: {value!r}")
        _set = object.__setattr__
        _set(self, "value", value)
        _set(self, "_hash", hash((value,)))

    def __setattr__(self, name: str, value: object) -> None:
        # The cached hash makes mutation unsafe (hash/equality would
        # disagree for dict keys), so enforce the immutability the
        # frozen dataclass this replaced provided.
        raise AttributeError(f"IPv6Address is immutable (cannot set {name!r})")

    @classmethod
    def parse(cls, text: str) -> "IPv6Address":
        """Parse from textual notation, e.g. ``"2001:db8::1"``."""
        return cls(_parse_ipv6(text))

    @classmethod
    def from_int(cls, value: int) -> "IPv6Address":
        """Build from a 128-bit integer."""
        return cls(value)

    def __str__(self) -> str:
        return _format_ipv6(self.value)

    def __repr__(self) -> str:
        return f"IPv6Address('{self}')"

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other.__class__ is IPv6Address:
            return self.value == other.value
        return NotImplemented

    def __lt__(self, other: "IPv6Address"):
        if other.__class__ is IPv6Address:
            return self.value < other.value
        return NotImplemented

    def __le__(self, other: "IPv6Address"):
        if other.__class__ is IPv6Address:
            return self.value <= other.value
        return NotImplemented

    def __gt__(self, other: "IPv6Address"):
        if other.__class__ is IPv6Address:
            return self.value > other.value
        return NotImplemented

    def __ge__(self, other: "IPv6Address"):
        if other.__class__ is IPv6Address:
            return self.value >= other.value
        return NotImplemented

    def __reduce__(self):
        return (IPv6Address, (self.value,))

    def __add__(self, offset: int) -> "IPv6Address":
        result = self.value + offset
        if not 0 <= result <= _MAX_IPV6:
            raise AddressError(f"address arithmetic overflow: {self} + {offset}")
        return IPv6Address(result)

    def is_within(self, prefix: "IPv6Prefix") -> bool:
        """Whether this address belongs to ``prefix``."""
        return prefix.contains(self)


@dataclass(frozen=True)
class IPv6Prefix:
    """An IPv6 prefix (network address + prefix length)."""

    network: IPv6Address
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 128:
            raise AddressError(f"prefix length out of range: {self.length!r}")
        if self.network.value & ~self.mask_value():
            raise AddressError(
                f"prefix {self.network}/{self.length} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv6Prefix":
        """Parse from ``"<address>/<length>"`` notation."""
        if "/" not in text:
            raise AddressError(f"prefix must contain '/': {text!r}")
        address_text, _, length_text = text.partition("/")
        try:
            length = int(length_text)
        except ValueError as exc:
            raise AddressError(f"invalid prefix length in {text!r}") from exc
        return cls(IPv6Address.parse(address_text), length)

    def mask_value(self) -> int:
        """The prefix mask as a 128-bit integer."""
        if self.length == 0:
            return 0
        return (_MAX_IPV6 >> (128 - self.length)) << (128 - self.length)

    def contains(self, address: IPv6Address) -> bool:
        """Whether ``address`` falls inside this prefix."""
        return (address.value & self.mask_value()) == self.network.value

    def address_at(self, offset: int) -> IPv6Address:
        """The ``offset``-th address inside the prefix (0 is the network address)."""
        size = 1 << (128 - self.length)
        if not 0 <= offset < size:
            raise AddressError(
                f"offset {offset} out of range for prefix {self} (size {size})"
            )
        return IPv6Address(self.network.value + offset)

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def __repr__(self) -> str:
        return f"IPv6Prefix('{self}')"


class AddressAllocator:
    """Sequential allocator of addresses from a prefix.

    The topology builder uses one allocator per role (servers, clients,
    VIPs, SIDs) so that addresses are predictable and easy to read in
    traces and test failures.
    """

    def __init__(self, prefix: IPv6Prefix, first_offset: int = 1) -> None:
        self._prefix = prefix
        self._next_offset = first_offset

    @property
    def prefix(self) -> IPv6Prefix:
        """The prefix addresses are drawn from."""
        return self._prefix

    def allocate(self) -> IPv6Address:
        """Return the next free address in the prefix."""
        address = self._prefix.address_at(self._next_offset)
        self._next_offset += 1
        return address

    def allocate_many(self, count: int) -> Iterator[IPv6Address]:
        """Allocate ``count`` consecutive addresses."""
        for _ in range(count):
            yield self.allocate()


# Well-known prefixes used by the default testbed topology.  These mirror
# a typical SRv6 data-center addressing plan: one prefix for server/node
# locators (from which SIDs are carved), one for client-facing space and
# one for the anycast VIPs advertised by the load balancer.
SERVER_PREFIX = IPv6Prefix.parse("fd00:100::/32")
CLIENT_PREFIX = IPv6Prefix.parse("fd00:200::/32")
VIP_PREFIX = IPv6Prefix.parse("fd00:300::/32")
LB_PREFIX = IPv6Prefix.parse("fd00:400::/32")


def default_allocators() -> dict:
    """Fresh allocators for the well-known prefixes (one per role)."""
    return {
        "server": AddressAllocator(SERVER_PREFIX),
        "client": AddressAllocator(CLIENT_PREFIX),
        "vip": AddressAllocator(VIP_PREFIX),
        "lb": AddressAllocator(LB_PREFIX),
    }


def is_virtual_ip(address: IPv6Address) -> bool:
    """Whether ``address`` lies in the VIP prefix of the default plan."""
    return VIP_PREFIX.contains(address)


def describe(address: Optional[IPv6Address]) -> str:
    """Short human-readable role tag for an address (used in logs/tests)."""
    if address is None:
        return "<none>"
    if SERVER_PREFIX.contains(address):
        return f"server:{address}"
    if CLIENT_PREFIX.contains(address):
        return f"client:{address}"
    if VIP_PREFIX.contains(address):
        return f"vip:{address}"
    if LB_PREFIX.contains(address):
        return f"lb:{address}"
    return str(address)
