"""Fault-injection plane: composable impairments on the delivery seam.

Every packet hop of the testbed goes through one
:class:`~repro.net.channel.DeliveryChannel` (the fabric's, the link's,
or the ECMP edge's).  :class:`FaultInjectionChannel` wraps any of them
with a pipeline of *injectors* — deterministic, seed-derived models of
the ways real networks misbehave:

* :class:`IIDLossInjector` — independent per-packet loss;
* :class:`GilbertElliottLossInjector` — bursty loss from the classic
  two-state (good/bad) Markov channel;
* :class:`CorruptionInjector` — corruption-as-drop: a corrupted frame
  fails its checksum at the receiver and is discarded, which at this
  abstraction level is indistinguishable from a loss (but worth its own
  counter, because the remedies differ);
* :class:`JitterInjector` — extra per-packet latency (exponential,
  optionally capped);
* :class:`ReorderInjector` — bounded reordering: a fraction of packets
  is held back by a bounded extra delay so later packets overtake them;
* :class:`LinkFlapInjector` — scheduled link-down windows during which
  every packet offered to the hop is dropped (no RNG at all).

Determinism and bit-identity
----------------------------
Each randomized injector draws from its **own** named
:class:`~repro.sim.random_streams.RandomStreams` substream (the
``STREAM`` class attribute), so enabling one impairment never perturbs
the draws of any other component — the same isolation contract the
candidate selector and the workload generators already rely on.

A *disabled* injector (zero rate / zero mean / empty schedule) returns
immediately without drawing a single random value, and the pipeline
forwards ``deliver`` with the delay object untouched.  An all-disabled
pipeline is therefore **bit-identical** to the bare inner channel: same
event times, same FIFO sequence numbers, same labels, same RNG states —
pinned by the hypothesis property test in
``tests/test_faults_property.py`` and by the ``chaos`` family's
``baseline`` golden fingerprint.

Accounting
----------
The pipeline owns a :class:`~repro.net.link.LinkStats` instance:
``packets_sent`` counts every packet offered to the pipeline,
``packets_dropped`` is the unified drop total, and each injector counts
its drops (or delays) under its own reason counter — the same
one-drop/one-reason scheme as the fabric and the link (see
docs/architecture.md).  ``packets_sent - packets_dropped`` always equals
the number of packets handed to the inner channel.

Pooled packets: a fault drop happens *before* the pooled channel marks
the packet in flight, so a dropped packet is simply left to the garbage
collector instead of returning to the free list — correctness is
unaffected, the pool just recycles one packet fewer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.net.channel import DeliveryChannel, DeliveryGuard, PacketSink
from repro.net.link import LinkStats
from repro.sim.engine import Simulator


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise NetworkError(f"{name} must be in [0, 1], got {value!r}")


class FaultInjector:
    """One impairment stage of a fault pipeline.

    :meth:`assess` is called once per offered packet, in pipeline order,
    at the packet's *send* time.  It returns ``None`` to drop the packet
    (after counting the drop under its reason counter on ``stats``) or a
    non-negative extra delay in seconds.  A disabled injector must
    return ``0.0`` without touching its RNG — that is what keeps an
    all-disabled pipeline bit-identical to the bare channel.
    """

    #: Name of the injector's :class:`RandomStreams` substream (``None``
    #: for purely scheduled injectors).
    STREAM: Optional[str] = None

    def assess(self, now: float, stats: LinkStats) -> Optional[float]:
        raise NotImplementedError


class IIDLossInjector(FaultInjector):
    """Drop each packet independently with probability ``rate``."""

    STREAM = "fault-iid-loss"
    __slots__ = ("rate", "_rng")

    def __init__(self, rng: Any, rate: float) -> None:
        _check_probability("loss rate", rate)
        self.rate = rate
        self._rng = rng

    def assess(self, now: float, stats: LinkStats) -> Optional[float]:
        if self.rate <= 0.0:
            return 0.0
        if self._rng.random() < self.rate:
            stats.packets_dropped_loss += 1
            return None
        return 0.0


class CorruptionInjector(FaultInjector):
    """Corrupt (and therefore drop) each packet with probability ``rate``."""

    STREAM = "fault-corruption"
    __slots__ = ("rate", "_rng")

    def __init__(self, rng: Any, rate: float) -> None:
        _check_probability("corruption rate", rate)
        self.rate = rate
        self._rng = rng

    def assess(self, now: float, stats: LinkStats) -> Optional[float]:
        if self.rate <= 0.0:
            return 0.0
        if self._rng.random() < self.rate:
            stats.packets_dropped_corrupted += 1
            return None
        return 0.0


class GilbertElliottLossInjector(FaultInjector):
    """Bursty loss from the two-state Gilbert–Elliott channel.

    The channel is ``good`` or ``bad``; each offered packet first drives
    one Markov transition (``enter``: good→bad, ``exit``: bad→good),
    then is lost with the state's loss probability (``loss_good`` /
    ``loss_bad``).  ``enter = 0`` with ``loss_good = 0`` disables the
    injector entirely (the chain can neither leave the good state nor
    drop in it), in which case no random values are drawn.
    """

    STREAM = "fault-burst-loss"
    __slots__ = ("enter", "exit", "loss_good", "loss_bad", "bad", "_rng")

    def __init__(
        self,
        rng: Any,
        enter: float,
        exit: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        _check_probability("burst enter probability", enter)
        _check_probability("burst exit probability", exit)
        _check_probability("good-state loss probability", loss_good)
        _check_probability("bad-state loss probability", loss_bad)
        self.enter = enter
        self.exit = exit
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False
        self._rng = rng

    def assess(self, now: float, stats: LinkStats) -> Optional[float]:
        if self.enter <= 0.0 and self.loss_good <= 0.0:
            return 0.0
        rng = self._rng
        if self.bad:
            if rng.random() < self.exit:
                self.bad = False
        elif rng.random() < self.enter:
            self.bad = True
        loss = self.loss_bad if self.bad else self.loss_good
        if loss > 0.0 and rng.random() < loss:
            stats.packets_dropped_burst += 1
            return None
        return 0.0


class JitterInjector(FaultInjector):
    """Add exponentially distributed extra latency (mean ``mean``).

    ``cap`` truncates the draw (0 = uncapped), bounding how far one
    packet can fall behind its peers.
    """

    STREAM = "fault-jitter"
    __slots__ = ("mean", "cap", "_rng")

    def __init__(self, rng: Any, mean: float, cap: float = 0.0) -> None:
        if mean < 0.0:
            raise NetworkError(f"jitter mean must be non-negative, got {mean!r}")
        if cap < 0.0:
            raise NetworkError(f"jitter cap must be non-negative, got {cap!r}")
        self.mean = mean
        self.cap = cap
        self._rng = rng

    def assess(self, now: float, stats: LinkStats) -> Optional[float]:
        if self.mean <= 0.0:
            return 0.0
        extra = self._rng.exponential(self.mean)
        if self.cap > 0.0 and extra > self.cap:
            extra = self.cap
        stats.packets_delayed_jitter += 1
        return extra


class ReorderInjector(FaultInjector):
    """Bounded reordering: hold back a fraction of packets.

    With probability ``rate`` a packet is delayed by a uniform draw from
    ``[0, window]`` seconds, so packets sent later (within the window)
    overtake it.  The bound is the window: no packet is ever displaced
    by more than ``window`` seconds.
    """

    STREAM = "fault-reorder"
    __slots__ = ("rate", "window", "_rng")

    def __init__(self, rng: Any, rate: float, window: float) -> None:
        _check_probability("reorder rate", rate)
        if window < 0.0:
            raise NetworkError(
                f"reorder window must be non-negative, got {window!r}"
            )
        if rate > 0.0 and window <= 0.0:
            raise NetworkError(
                "a positive reorder rate needs a positive reorder window"
            )
        self.rate = rate
        self.window = window
        self._rng = rng

    def assess(self, now: float, stats: LinkStats) -> Optional[float]:
        if self.rate <= 0.0:
            return 0.0
        if self._rng.random() < self.rate:
            stats.packets_reordered += 1
            return self._rng.random() * self.window
        return 0.0


class LinkFlapInjector(FaultInjector):
    """Scheduled link flaps: drop every packet offered inside a window.

    ``windows`` is a sorted, non-overlapping sequence of
    ``(down_at, up_at)`` intervals in simulated seconds.  Purely
    scheduled — no RNG — so an empty schedule is trivially disabled.
    Deliveries are assessed in non-decreasing simulated time, so a
    cursor over the schedule suffices.
    """

    STREAM = None
    __slots__ = ("windows", "_cursor")

    def __init__(self, windows: Sequence[Tuple[float, float]]) -> None:
        ordered = tuple((float(start), float(end)) for start, end in windows)
        previous_end = 0.0
        for start, end in ordered:
            if start < 0.0 or end <= start:
                raise NetworkError(
                    f"flap window must satisfy 0 <= start < end, got "
                    f"({start!r}, {end!r})"
                )
            if start < previous_end:
                raise NetworkError(
                    "flap windows must be sorted and non-overlapping, got "
                    f"{ordered!r}"
                )
            previous_end = end
        self.windows = ordered
        self._cursor = 0

    def assess(self, now: float, stats: LinkStats) -> Optional[float]:
        windows = self.windows
        cursor = self._cursor
        while cursor < len(windows) and now >= windows[cursor][1]:
            cursor += 1
        self._cursor = cursor
        if cursor < len(windows) and now >= windows[cursor][0]:
            stats.packets_dropped_link_down += 1
            return None
        return 0.0


@dataclass(frozen=True)
class FaultConfig:
    """Declarative description of one fault pipeline.

    The all-zero default describes a pipeline that is constructed but
    entirely disabled — bit-identical to no pipeline at all.
    """

    #: Independent per-packet loss probability.
    loss_rate: float = 0.0
    #: Gilbert–Elliott transition/loss probabilities (per packet).
    burst_enter: float = 0.0
    burst_exit: float = 0.25
    burst_loss: float = 1.0
    #: Mean (and truncation cap, 0 = uncapped) of the exponential
    #: per-packet extra latency, in seconds.
    jitter_mean: float = 0.0
    jitter_cap: float = 0.0
    #: Fraction of packets held back, and the bound on how long.
    reorder_rate: float = 0.0
    reorder_window: float = 0.0
    #: Corruption-as-drop probability.
    corruption_rate: float = 0.0
    #: Scheduled ``(down_at, up_at)`` link-down windows, in seconds.
    flap_windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        # Construction of throwaway injectors performs the full
        # validation; an invalid field raises here, not mid-run.
        build_injectors(None, self)

    @property
    def enabled(self) -> bool:
        """Whether any impairment is actually active."""
        return bool(
            self.loss_rate
            or self.burst_enter
            or self.jitter_mean
            or self.reorder_rate
            or self.corruption_rate
            or self.flap_windows
        )


def build_injectors(
    simulator: Optional[Simulator], config: FaultConfig
) -> Tuple[FaultInjector, ...]:
    """The full pipeline described by ``config``, in canonical order.

    Order: structural outage first (flaps), then the loss processes,
    then the delay shaping — so a packet that survives every loss stage
    accumulates the delay stages' extra latency.  Every injector is
    constructed even when disabled (a disabled injector draws nothing),
    which is exactly the configuration the bit-identity property test
    exercises.  ``simulator=None`` builds RNG-less throwaway injectors,
    used only to validate a :class:`FaultConfig`.
    """

    def stream(name: Optional[str]) -> Any:
        if simulator is None or name is None:
            return None
        return simulator.streams.stream(name)

    return (
        LinkFlapInjector(config.flap_windows),
        IIDLossInjector(stream(IIDLossInjector.STREAM), config.loss_rate),
        GilbertElliottLossInjector(
            stream(GilbertElliottLossInjector.STREAM),
            enter=config.burst_enter,
            exit=config.burst_exit,
            loss_good=0.0,
            loss_bad=config.burst_loss,
        ),
        CorruptionInjector(
            stream(CorruptionInjector.STREAM), config.corruption_rate
        ),
        JitterInjector(
            stream(JitterInjector.STREAM), config.jitter_mean, config.jitter_cap
        ),
        ReorderInjector(
            stream(ReorderInjector.STREAM),
            config.reorder_rate,
            config.reorder_window,
        ),
    )


class FaultInjectionChannel:
    """:class:`DeliveryChannel` wrapper running packets through injectors.

    Wraps any inner channel (plain, pooled, or another fault channel).
    Offered packets traverse the pipeline at send time: the first
    injector returning ``None`` drops the packet (counted once in
    ``stats.packets_dropped`` plus the injector's reason counter);
    otherwise the injectors' extra delays are summed onto the hop delay
    and the packet is forwarded to the inner channel unchanged.
    """

    __slots__ = ("simulator", "inner", "injectors", "stats")

    def __init__(
        self,
        simulator: Simulator,
        inner: DeliveryChannel,
        injectors: Sequence[FaultInjector],
    ) -> None:
        self.simulator = simulator
        self.inner = inner
        self.injectors = tuple(injectors)
        self.stats = LinkStats()

    @property
    def packets_delivered(self) -> int:
        """Packets handed to the inner channel (sent minus dropped)."""
        return self.stats.packets_sent - self.stats.packets_dropped

    def deliver(
        self,
        sink: PacketSink,
        packet: Any,
        delay: float,
        label: str,
        guard: Optional[DeliveryGuard] = None,
    ) -> None:
        stats = self.stats
        stats.packets_sent += 1
        now = self.simulator.now
        extra = 0.0
        for injector in self.injectors:
            verdict = injector.assess(now, stats)
            if verdict is None:
                stats.packets_dropped += 1
                return
            extra += verdict
        if extra > 0.0:
            delay = delay + extra
        self.inner.deliver(sink, packet, delay, label, guard)


def install_fault_channel(
    simulator: Simulator, fabric: Any, config: FaultConfig
) -> FaultInjectionChannel:
    """Wrap ``fabric``'s delivery channel with a pipeline from ``config``.

    Works on anything exposing a ``channel`` attribute (the LAN fabric,
    a point-to-point link, the ECMP edge router).  Returns the installed
    channel so callers can read its drop/delay counters after the run.
    """
    channel = FaultInjectionChannel(
        simulator, fabric.channel, build_injectors(simulator, config)
    )
    fabric.channel = channel
    return channel
