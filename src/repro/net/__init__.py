"""IPv6 + Segment Routing network substrate.

This package models the data-center network the paper's testbed runs on:
IPv6 addressing (VIPs, server addresses, SIDs), the Segment Routing
extension header with ``SegmentsLeft`` semantics, a simplified TCP
handshake with listen-backlog overflow, point-to-point links and the
shared LAN fabric connecting the load balancer to the application
servers.
"""

from repro.net.addressing import (
    AddressAllocator,
    CLIENT_PREFIX,
    IPv6Address,
    IPv6Prefix,
    LB_PREFIX,
    SERVER_PREFIX,
    VIP_PREFIX,
    default_allocators,
    describe,
    is_virtual_ip,
)
from repro.net.fabric import FabricStats, LANFabric
from repro.net.link import Link, LinkStats
from repro.net.packet import (
    DEFAULT_HOP_LIMIT,
    FlowKey,
    Packet,
    TCPFlag,
    TCPSegment,
    make_reset,
    make_syn,
    reply_ports,
)
from repro.net.router import (
    LocalSIDTable,
    NetworkNode,
    Route,
    RoutingTable,
)
from repro.net.srh import SegmentRoutingHeader
from repro.net.ecmp import EcmpEdgeRouter, EcmpEdgeStats, five_tuple_key
from repro.net.tcp import (
    ConnectionState,
    EphemeralPortAllocator,
    HTTP_PORT,
    TCPConnection,
    classify_segment,
)

__all__ = [
    "IPv6Address",
    "IPv6Prefix",
    "AddressAllocator",
    "default_allocators",
    "describe",
    "is_virtual_ip",
    "SERVER_PREFIX",
    "CLIENT_PREFIX",
    "VIP_PREFIX",
    "LB_PREFIX",
    "SegmentRoutingHeader",
    "Packet",
    "TCPSegment",
    "TCPFlag",
    "FlowKey",
    "make_syn",
    "make_reset",
    "reply_ports",
    "DEFAULT_HOP_LIMIT",
    "Link",
    "LinkStats",
    "LANFabric",
    "FabricStats",
    "EcmpEdgeRouter",
    "EcmpEdgeStats",
    "five_tuple_key",
    "NetworkNode",
    "RoutingTable",
    "Route",
    "LocalSIDTable",
    "TCPConnection",
    "ConnectionState",
    "EphemeralPortAllocator",
    "classify_segment",
    "HTTP_PORT",
]
