"""ECMP edge router: per-packet 5-tuple hashing over equal-cost next hops.

The paper's resiliency argument (§II-B) assumes the SRLB tier sits
*behind* an ECMP edge: the data-center border router advertises the VIPs
once and spreads flows over N identical load-balancer instances by
hashing each packet's 5-tuple, exactly like the Maglev and Ananta
deployments discussed in the related work.  :class:`EcmpEdgeRouter`
models that router faithfully — and therefore *imperfectly*:

* it hashes **each packet independently** on its own 5-tuple, so both
  directions of a flow are hashed on different tuples and the SYN-ACK of
  a connection generally reaches a *different* instance than the SYN did
  (the load-balancer tier must cope, which SRLB does because the SYN-ACK
  carries the accepting server in its SR header — see
  :mod:`repro.core.lb_tier`);
* it has no flow state: when the next-hop set changes, flows are
  remapped purely by the hash scheme.

Two hash schemes are provided so experiments can quantify the difference
membership churn makes:

* ``rendezvous`` — highest-random-weight (HRW) hashing; removing one of
  N next hops remaps exactly the flows the removed hop owned (~1/N);
* ``modulo`` — the naive ``hash % N`` over the hop list; removing a hop
  renumbers the list and remaps ~(N-1)/N of all flows.  This is the
  strawman that motivates consistent hashing in the first place.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RoutingError
from repro.net.addressing import IPv6Address
from repro.net.channel import DeliveryChannel, InProcessChannel
from repro.net.packet import FlowKey, Packet
from repro.net.router import NetworkNode
from repro.sim.engine import Simulator

#: Recognised flow-to-next-hop mapping schemes.
HASH_SCHEMES = ("rendezvous", "modulo")


def five_tuple_key(flow_key: FlowKey, protocol: str = "tcp") -> str:
    """Canonical 5-tuple string an ECMP router hashes a packet on."""
    return (
        f"{protocol}|{flow_key.src_address}|{flow_key.src_port}|"
        f"{flow_key.dst_address}|{flow_key.dst_port}"
    )


def _hash64(data: str, salt: str) -> int:
    """Stable 64-bit hash (process-independent, like the Maglev table's)."""
    digest = hashlib.sha256(f"{salt}:{data}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def select_next_hop_name(
    hop_names: Sequence[str],
    flow_key: FlowKey,
    hash_scheme: str = "rendezvous",
    protocol: str = "tcp",
) -> str:
    """Pure form of the router's hashing decision, over hop *names*.

    This is the exact computation :meth:`EcmpEdgeRouter.next_hop_for`
    applies to its (name-sorted) ECMP group.  It is exposed as a free
    function so offline tooling — notably the hash-collision search in
    :mod:`repro.workload.hostile` — targets the very hash the data plane
    runs rather than a reimplementation that could silently drift.
    """
    if not hop_names:
        raise RoutingError("the ECMP group has no next hops")
    if hash_scheme not in HASH_SCHEMES:
        raise RoutingError(
            f"unknown ECMP hash scheme {hash_scheme!r}: expected one of "
            f"{HASH_SCHEMES}"
        )
    key = five_tuple_key(flow_key, protocol)
    names = sorted(hop_names)
    if hash_scheme == "modulo":
        return names[_hash64(key, "ecmp-modulo") % len(names)]
    # Rendezvous (HRW): every hop scores the key; the highest wins.
    return max(names, key=lambda name: _hash64(key, f"ecmp-hrw:{name}"))


@dataclass
class EcmpEdgeStats:
    """Aggregate counters kept by the ECMP edge router."""

    #: Client-to-VIP packets spread over the next hops.
    forward_packets: int = 0
    #: Return-path packets (steering SYN-ACKs to the shared address).
    return_packets: int = 0
    #: Packets whose destination matched neither a VIP nor the steering
    #: address, or that arrived while the next-hop set was empty.
    packets_dropped: int = 0
    #: Next-hop set changes (adds + removals) since construction.
    membership_changes: int = 0
    #: Packets handed to each next hop, by name.
    per_next_hop: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, int]:
        """Flat numeric counters (the uniform telemetry-sampler API)."""
        return {
            "forward_packets": self.forward_packets,
            "return_packets": self.return_packets,
            "packets_dropped": self.packets_dropped,
            "membership_changes": self.membership_changes,
            "next_hops": len(self.per_next_hop),
        }


class EcmpEdgeRouter(NetworkNode):
    """Data-center edge router spreading packets over equal-cost next hops.

    Parameters
    ----------
    simulator:
        Shared simulation engine.
    name:
        Node name (diagnostics).
    steering_address:
        Shared address of the tier behind the router.  Servers send
        their steering SYN-ACKs here; the router hashes them like any
        other packet (it cannot know which instance dispatched the SYN).
    hash_scheme:
        ``"rendezvous"`` (consistent, the default) or ``"modulo"``
        (naive, maximal disruption on membership change).
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        steering_address: IPv6Address,
        hash_scheme: str = "rendezvous",
    ) -> None:
        super().__init__(simulator, name)
        if hash_scheme not in HASH_SCHEMES:
            raise RoutingError(
                f"unknown ECMP hash scheme {hash_scheme!r}: expected one of "
                f"{HASH_SCHEMES}"
            )
        self.add_address(steering_address)
        self.steering_address = steering_address
        self.hash_scheme = hash_scheme
        self._next_hops: List[NetworkNode] = []
        self._vips: List[IPv6Address] = []
        #: Memoized flow-to-hop decisions.  Both schemes are pure
        #: functions of (flow key, next-hop set), so the cache is
        #: behaviour-neutral; it is dropped wholesale on membership
        #: change, exactly like a real router reprogramming its ECMP
        #: group.  Bounded by the number of distinct 5-tuples seen
        #: between membership changes.
        self._hop_cache: Dict[FlowKey, NetworkNode] = {}
        #: Interned per-hop event labels (one f-string per hop, not per
        #: packet).
        self._spread_labels: Dict[str, str] = {}
        #: The delivery channel the spread hop goes through (defaults to
        #: in-process scheduling, bit-identical to direct ``receive``).
        self.channel: DeliveryChannel = InProcessChannel(simulator)
        self.stats = EcmpEdgeStats()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_next_hop(self, node: NetworkNode) -> None:
        """Add an equal-cost next hop to the group."""
        if any(existing.name == node.name for existing in self._next_hops):
            raise RoutingError(f"next hop {node.name!r} is already in the ECMP group")
        self._next_hops.append(node)
        self._next_hops.sort(key=lambda hop: hop.name)
        self._hop_cache.clear()
        self.stats.membership_changes += 1

    def remove_next_hop(self, name: str) -> bool:
        """Remove a next hop (failure or drain); flows remap by the hash."""
        before = len(self._next_hops)
        self._next_hops = [hop for hop in self._next_hops if hop.name != name]
        if len(self._next_hops) != before:
            self._hop_cache.clear()
            self.stats.membership_changes += 1
            return True
        return False

    @property
    def next_hops(self) -> Tuple[NetworkNode, ...]:
        """The current ECMP group members (name-sorted copy)."""
        return tuple(self._next_hops)

    def invalidate_next_hop_cache(self) -> int:
        """Drop every memoized flow-to-hop decision; returns the count.

        Membership changes do this implicitly.  The elastic control
        plane calls it on *server*-pool changes too, modelling the edge
        reprogramming its forwarding state when the topology behind it
        moves — behaviour-neutral (both hash schemes are pure functions
        of the flow key and the unchanged next-hop set), but it keeps
        the cache from carrying entries for flows that will never
        return.
        """
        dropped = len(self._hop_cache)
        self._hop_cache.clear()
        return dropped

    def register_vip(self, vip: IPv6Address) -> None:
        """Advertise a VIP at the edge (exact binding on this router)."""
        if vip not in self._vips:
            self._vips.append(vip)
            if self.fabric is not None:
                self.fabric.bind_address(vip, self)

    @property
    def vips(self) -> Tuple[IPv6Address, ...]:
        """VIPs advertised by this router."""
        return tuple(self._vips)

    def attach(self, fabric) -> None:
        """Attach to the fabric, claiming the registered VIPs."""
        super().attach(fabric)
        for vip in self._vips:
            fabric.bind_address(vip, self)

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------
    def next_hop_for(self, flow_key: FlowKey) -> NetworkNode:
        """The ECMP group member the given 5-tuple hashes to."""
        if not self._next_hops:
            raise RoutingError("the ECMP group has no next hops")
        hop = self._hop_cache.get(flow_key)
        if hop is not None:
            return hop
        # Delegate to the pure selector so the data plane and offline
        # tooling (the hostile-workload collision search) share one
        # implementation.  _next_hops is kept name-sorted, so positions
        # line up with the selector's sorted name list.
        name = select_next_hop_name(
            [candidate.name for candidate in self._next_hops],
            flow_key,
            self.hash_scheme,
        )
        hop = next(
            candidate for candidate in self._next_hops if candidate.name == name
        )
        self._hop_cache[flow_key] = hop
        return hop

    def owner_of_forward_flow(self, forward_key: FlowKey) -> Optional[NetworkNode]:
        """The hop that client-to-VIP packets of ``forward_key`` reach.

        The load-balancer tier uses this to relay steering signals to the
        instance that will see the flow's forward direction; ``None``
        when the group is empty.
        """
        if not self._next_hops:
            return None
        return self.next_hop_for(forward_key)

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        if packet.dst in self._vips:
            self._spread(packet, is_return=False)
        elif packet.dst == self.steering_address:
            self._spread(packet, is_return=True)
        else:
            self.stats.packets_dropped += 1

    def _spread(self, packet: Packet, is_return: bool) -> None:
        # Per-packet hashing: the packet's own 5-tuple, whichever
        # direction it travels.  A SYN-ACK therefore hashes on the
        # (VIP, client) tuple and may reach a different hop than the
        # (client, VIP) SYN did.  The memo hit is inlined: this runs
        # once per spread packet and almost always hits.
        key = packet.flow_key()
        hop = self._hop_cache.get(key)
        if hop is None:
            try:
                hop = self.next_hop_for(key)
            except RoutingError:
                self.stats.packets_dropped += 1
                return
        if is_return:
            self.stats.return_packets += 1
        else:
            self.stats.forward_packets += 1
        name = hop.name
        per_hop = self.stats.per_next_hop
        per_hop[name] = per_hop.get(name, 0) + 1
        label = self._spread_labels.get(name)
        if label is None:
            label = self._spread_labels[name] = f"ecmp->{name}"
        latency = self.fabric.latency if self.fabric is not None else 0.0
        self.channel.deliver(hop, packet, latency, label)

    def next_hop_share(self) -> Dict[str, float]:
        """Fraction of spread packets handled by each next hop."""
        total = sum(self.stats.per_next_hop.values())
        if total == 0:
            return {}
        return {name: count / total for name, count in self.stats.per_next_hop.items()}

    def __repr__(self) -> str:
        return (
            f"EcmpEdgeRouter(name={self.name!r}, scheme={self.hash_scheme!r}, "
            f"next_hops={len(self._next_hops)}, vips={len(self._vips)})"
        )
