"""IPv6 Segment Routing extension header (SRH).

The SRH carries an ordered list of *segments* — IPv6 addresses naming
intermediaries and the instruction they should apply to the packet — plus
a ``SegmentsLeft`` counter indicating how many segments remain to be
processed (RFC 8754 semantics).

Following the RFC, the segment list is stored in **reverse traversal
order**: ``segments[0]`` is the final segment and
``segments[len-1]`` is the first one visited.  The *active* segment is
``segments[SegmentsLeft]`` and is also copied into the packet's IPv6
destination address by whoever advances the header.  Because that
convention is easy to get backwards, constructors and accessors that
speak "traversal order" are provided and used throughout the library.

Service Hunting (paper §II) uses the SRH in two places:

* the load balancer inserts ``[candidate₁, candidate₂, VIP]`` (traversal
  order) into the first packet of a new flow, and
* the accepting server inserts ``[load-balancer, client]`` into the
  connection-acceptance packet (SYN-ACK), with its own address recorded
  so the load balancer can steer the rest of the flow.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import SegmentRoutingError
from repro.net.addressing import IPv6Address

#: Size in bytes of the fixed part of the SRH (RFC 8754 §2).
SRH_FIXED_SIZE = 8
#: Size in bytes of each segment entry (an IPv6 address).
SRH_SEGMENT_SIZE = 16


class SegmentRoutingHeader:
    """IPv6 Segment Routing extension header.

    Slotted and hand-written: one header is built per hop decision on
    the packet hot path, and the generated dataclass machinery showed up
    in replay profiles.

    Attributes
    ----------
    segments:
        Segment list in RFC (reverse traversal) order.
    segments_left:
        Index of the active segment; ``0`` means the last segment is
        active and the source route is exhausted once it is consumed.
    """

    __slots__ = ("segments", "segments_left")

    def __init__(
        self,
        segments: Optional[List[IPv6Address]] = None,
        segments_left: int = 0,
    ) -> None:
        if not segments:
            raise SegmentRoutingError("an SRH must contain at least one segment")
        if not 0 <= segments_left < len(segments):
            raise SegmentRoutingError(
                f"SegmentsLeft={segments_left} out of range for "
                f"{len(segments)} segments"
            )
        self.segments = segments
        self.segments_left = segments_left

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_traversal(cls, path: Sequence[IPv6Address]) -> "SegmentRoutingHeader":
        """Build an SRH from segments given in the order they are visited.

        The first element of ``path`` becomes the active segment.
        """
        if not path:
            raise SegmentRoutingError("cannot build an SRH from an empty path")
        segments = list(path)
        segments.reverse()
        srh = cls.__new__(cls)
        srh.segments = segments
        srh.segments_left = len(segments) - 1
        return srh

    def copy(self) -> "SegmentRoutingHeader":
        """Independent copy (packets are duplicated when retransmitted).

        Internal fast path: the source header is already valid, so the
        constructor checks are skipped.
        """
        clone = SegmentRoutingHeader.__new__(SegmentRoutingHeader)
        clone.segments = list(self.segments)
        clone.segments_left = self.segments_left
        return clone

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def active_segment(self) -> IPv6Address:
        """The segment currently being processed (the IPv6 destination)."""
        return self.segments[self.segments_left]

    @property
    def final_segment(self) -> IPv6Address:
        """The last segment of the source route (``segments[0]``)."""
        return self.segments[0]

    @property
    def num_segments(self) -> int:
        """Total number of segments carried by the header."""
        return len(self.segments)

    @property
    def exhausted(self) -> bool:
        """True once the final segment is active (``SegmentsLeft == 0``)."""
        return self.segments_left == 0

    def traversal_order(self) -> Tuple[IPv6Address, ...]:
        """The full segment list, in the order segments are visited."""
        return tuple(reversed(self.segments))

    def remaining_traversal(self) -> Tuple[IPv6Address, ...]:
        """Segments still to be visited (active segment first)."""
        return tuple(
            self.segments[index]
            for index in range(self.segments_left, -1, -1)
        )

    def next_segment(self) -> IPv6Address:
        """The segment after the active one.

        Service Hunting uses this to forward a refused connection to the
        "second server in the SR list" (paper, Algorithm 1).
        """
        if self.exhausted:
            raise SegmentRoutingError("no next segment: SegmentsLeft is already 0")
        return self.segments[self.segments_left - 1]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def advance(self) -> IPv6Address:
        """Consume the active segment and return the new active segment."""
        if self.exhausted:
            raise SegmentRoutingError("cannot advance an exhausted SRH")
        self.segments_left -= 1
        return self.active_segment

    def set_segments_left(self, value: int) -> IPv6Address:
        """Set ``SegmentsLeft`` directly (as Algorithms 1 and 2 do).

        Returns the new active segment.  Values may only decrease:
        segments are never re-activated.
        """
        if not 0 <= value <= self.segments_left:
            raise SegmentRoutingError(
                f"invalid SegmentsLeft transition {self.segments_left} -> {value}"
            )
        self.segments_left = value
        return self.active_segment

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Wire size of the header, used for overhead accounting."""
        return SRH_FIXED_SIZE + SRH_SEGMENT_SIZE * len(self.segments)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is SegmentRoutingHeader:
            return (
                self.segments == other.segments
                and self.segments_left == other.segments_left
            )
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"SegmentRoutingHeader(segments={self.segments!r}, "
            f"segments_left={self.segments_left!r})"
        )

    def __str__(self) -> str:
        path = " -> ".join(str(segment) for segment in self.traversal_order())
        return f"SRH[{path}; left={self.segments_left}]"
