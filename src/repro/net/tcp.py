"""Simplified TCP connection model.

The reproduction does not need byte-accurate TCP (no sequence numbers,
congestion control or retransmission timers), but it does need the parts
of TCP that shape the paper's measurements:

* the three-way handshake (SYN / SYN-ACK / ACK), because Service Hunting
  rides on the SYN and the steering signal rides on the SYN-ACK;
* the listen backlog with ``tcp_abort_on_overflow`` semantics (a RST is
  sent instead of silently dropping the SYN), because that is how the
  paper defines the saturation rate λ₀ and keeps SYN-retransmit delays
  out of the response-time measurements;
* a notion of connection state so clients and servers can detect
  protocol violations in tests.

This module provides the connection state machine shared by the client
and server endpoints; the endpoints themselves live in
:mod:`repro.workload.client` and :mod:`repro.server.http_server`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import TCPError
from repro.net.packet import FlowKey, TCPFlag

#: Well-known HTTP port used by the simulated application instances.
HTTP_PORT = 80
#: First ephemeral port handed out to client connections.
EPHEMERAL_PORT_BASE = 10_000
#: Number of ephemeral ports before wrapping (per client address).
EPHEMERAL_PORT_RANGE = 50_000


class ConnectionState(enum.Enum):
    """States of the simplified TCP state machine."""

    CLOSED = "closed"
    SYN_SENT = "syn_sent"
    SYN_RECEIVED = "syn_received"
    ESTABLISHED = "established"
    FIN_WAIT = "fin_wait"
    RESET = "reset"


#: Transitions allowed by :meth:`TCPConnection.transition`.
_ALLOWED_TRANSITIONS = {
    ConnectionState.CLOSED: {
        ConnectionState.SYN_SENT,
        ConnectionState.SYN_RECEIVED,
    },
    ConnectionState.SYN_SENT: {
        ConnectionState.ESTABLISHED,
        ConnectionState.RESET,
        ConnectionState.CLOSED,
    },
    ConnectionState.SYN_RECEIVED: {
        ConnectionState.ESTABLISHED,
        ConnectionState.RESET,
        ConnectionState.CLOSED,
    },
    ConnectionState.ESTABLISHED: {
        ConnectionState.FIN_WAIT,
        ConnectionState.RESET,
        ConnectionState.CLOSED,
    },
    ConnectionState.FIN_WAIT: {
        ConnectionState.CLOSED,
        ConnectionState.RESET,
    },
    ConnectionState.RESET: set(),
}


@dataclass
class TCPConnection:
    """One endpoint's view of a TCP connection.

    The connection is identified by its forward-direction
    :class:`~repro.net.packet.FlowKey` and tracks the timestamps that the
    metrics pipeline cares about (when the connection was initiated, when
    it became established, and when it was closed or reset).
    """

    flow_key: FlowKey
    request_id: Optional[int] = None
    state: ConnectionState = ConnectionState.CLOSED
    opened_at: Optional[float] = None
    established_at: Optional[float] = None
    closed_at: Optional[float] = None

    def transition(self, new_state: ConnectionState, at: Optional[float] = None) -> None:
        """Move to ``new_state``, enforcing the simplified state machine."""
        allowed = _ALLOWED_TRANSITIONS[self.state]
        if new_state not in allowed:
            raise TCPError(
                f"illegal TCP transition {self.state.value} -> {new_state.value} "
                f"for flow {self.flow_key}"
            )
        self.state = new_state
        if new_state is ConnectionState.SYN_SENT and at is not None:
            self.opened_at = at
        if new_state is ConnectionState.ESTABLISHED and at is not None:
            self.established_at = at
        if new_state in (ConnectionState.CLOSED, ConnectionState.RESET) and at is not None:
            self.closed_at = at

    @property
    def is_open(self) -> bool:
        """Whether the connection is still in a live state."""
        return self.state in (
            ConnectionState.SYN_SENT,
            ConnectionState.SYN_RECEIVED,
            ConnectionState.ESTABLISHED,
            ConnectionState.FIN_WAIT,
        )

    @property
    def was_reset(self) -> bool:
        """Whether the connection ended with a RST."""
        return self.state is ConnectionState.RESET


class EphemeralPortAllocator:
    """Round-robin ephemeral source-port allocator for a client node."""

    def __init__(
        self,
        base: int = EPHEMERAL_PORT_BASE,
        count: int = EPHEMERAL_PORT_RANGE,
    ) -> None:
        if not 0 < base <= 0xFFFF:
            raise TCPError(f"invalid ephemeral port base {base!r}")
        if count <= 0 or base + count - 1 > 0xFFFF:
            raise TCPError(f"invalid ephemeral port range {base}+{count}")
        self._base = base
        self._count = count
        self._next = 0

    def allocate(self) -> int:
        """Next source port (wraps around when the range is exhausted)."""
        port = self._base + (self._next % self._count)
        self._next += 1
        return port


def classify_segment(flags: TCPFlag) -> str:
    """Human-readable classification of a TCP segment by its flags.

    Used by packet taps and tests to assert on the handshake sequence
    without pattern-matching flag combinations everywhere.
    """
    if flags & TCPFlag.RST:
        return "rst"
    if flags & TCPFlag.SYN and flags & TCPFlag.ACK:
        return "syn-ack"
    if flags & TCPFlag.SYN:
        return "syn"
    if flags & TCPFlag.FIN:
        return "fin"
    if flags & TCPFlag.PSH:
        return "data"
    if flags & TCPFlag.ACK:
        return "ack"
    return "other"
