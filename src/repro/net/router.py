"""Routing-table and network-node abstractions.

Two pieces live here:

* :class:`RoutingTable` — a longest-prefix-match IPv6 routing table,
  mirroring the "routing tables statically configured" of the paper's
  testbed.  Both the LAN fabric and the per-server virtual routers use
  it.
* :class:`NetworkNode` — the base class of every addressable entity in
  the simulated data center (clients, the load balancer, server virtual
  routers).  A node owns a set of addresses, is attached to a fabric,
  and handles packets delivered to it in :meth:`NetworkNode.receive`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Generic,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.errors import RoutingError
from repro.net.addressing import IPv6Address, IPv6Prefix
from repro.net.packet import Packet
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.fabric import LANFabric

NextHopT = TypeVar("NextHopT")


@dataclass(frozen=True)
class Route(Generic[NextHopT]):
    """A single routing-table entry."""

    prefix: IPv6Prefix
    next_hop: NextHopT
    metric: int = 0


class RoutingTable(Generic[NextHopT]):
    """Longest-prefix-match routing table.

    The next-hop type is generic: the LAN fabric stores node objects,
    while stand-alone router examples may store interface names.  With a
    handful of prefixes per table (the testbed has four roles), a sorted
    linear scan is both simple and fast enough; entries are kept sorted
    by decreasing prefix length so the first match is the longest one.
    """

    def __init__(self) -> None:
        self._routes: List[Route[NextHopT]] = []

    def add_route(
        self, prefix: IPv6Prefix, next_hop: NextHopT, metric: int = 0
    ) -> None:
        """Install a route; replaces an existing route for the same prefix."""
        self._routes = [
            route for route in self._routes if route.prefix != prefix
        ]
        self._routes.append(Route(prefix=prefix, next_hop=next_hop, metric=metric))
        self._routes.sort(key=lambda route: (-route.prefix.length, route.metric))

    def remove_route(self, prefix: IPv6Prefix) -> bool:
        """Remove the route for ``prefix``; returns whether one existed."""
        before = len(self._routes)
        self._routes = [route for route in self._routes if route.prefix != prefix]
        return len(self._routes) != before

    def lookup(self, address: IPv6Address) -> NextHopT:
        """Longest-prefix-match lookup; raises ``RoutingError`` on miss."""
        match = self.lookup_or_none(address)
        if match is None:
            raise RoutingError(f"no route to {address}")
        return match

    def lookup_or_none(self, address: IPv6Address) -> Optional[NextHopT]:
        """Like :meth:`lookup` but returns ``None`` on miss."""
        for route in self._routes:
            if route.prefix.contains(address):
                return route.next_hop
        return None

    def routes(self) -> Tuple[Route[NextHopT], ...]:
        """All installed routes, most-specific first."""
        return tuple(self._routes)

    def __len__(self) -> int:
        return len(self._routes)


#: A local SID behaviour: called with the packet; returns ``True`` if the
#: packet was consumed locally, ``False`` if normal forwarding should
#: continue.
LocalSIDBehavior = Callable[[Packet], bool]


class LocalSIDTable:
    """Table of locally instantiated segment identifiers.

    In SRv6 terms this is the "My Local SID table": when a packet's
    destination matches one of these addresses, the associated behaviour
    runs (e.g. the Service Hunting accept-or-forward function of the
    server virtual router).
    """

    def __init__(self) -> None:
        self._behaviors: Dict[IPv6Address, LocalSIDBehavior] = {}

    def register(self, sid: IPv6Address, behavior: LocalSIDBehavior) -> None:
        """Bind ``behavior`` to ``sid``; re-registration overwrites."""
        self._behaviors[sid] = behavior

    def unregister(self, sid: IPv6Address) -> None:
        """Remove a SID binding if present."""
        self._behaviors.pop(sid, None)

    def lookup(self, address: IPv6Address) -> Optional[LocalSIDBehavior]:
        """The behaviour bound to ``address``, or ``None``."""
        return self._behaviors.get(address)

    def sids(self) -> Iterable[IPv6Address]:
        """All registered SIDs."""
        return tuple(self._behaviors)

    def __contains__(self, address: IPv6Address) -> bool:
        return address in self._behaviors

    def __len__(self) -> int:
        return len(self._behaviors)


class NetworkNode:
    """Base class for every addressable node in the simulated network.

    Subclasses override :meth:`handle_packet`; the base class takes care
    of address ownership bookkeeping and of sending packets through the
    attached fabric.
    """

    #: Optional :class:`~repro.net.packet.PacketPool` the node draws new
    #: packets from.  ``None`` (the default) means plain construction —
    #: the reference path.  ``build_testbed`` sets this on every
    #: packet-constructing node of a pooled testbed.
    packet_pool = None

    def __init__(self, simulator: Simulator, name: str) -> None:
        self.simulator = simulator
        self.name = name
        self._addresses: List[IPv6Address] = []
        self._fabric = None  # type: Optional["LANFabric"]
        self.packets_received = 0
        self.packets_sent = 0

    # ------------------------------------------------------------------
    # address / fabric management
    # ------------------------------------------------------------------
    @property
    def addresses(self) -> Tuple[IPv6Address, ...]:
        """Addresses owned by this node."""
        return tuple(self._addresses)

    @property
    def primary_address(self) -> IPv6Address:
        """The node's first (canonical) address."""
        if not self._addresses:
            raise RoutingError(f"node {self.name!r} has no address")
        return self._addresses[0]

    def add_address(self, address: IPv6Address) -> None:
        """Attach an additional address to this node."""
        if address not in self._addresses:
            self._addresses.append(address)
            if self._fabric is not None:
                self._fabric.bind_address(address, self)

    def owns(self, address: IPv6Address) -> bool:
        """Whether the node owns ``address``."""
        return address in self._addresses

    def attach(self, fabric: "LANFabric") -> None:
        """Attach the node to a fabric, binding all its addresses."""
        self._fabric = fabric
        fabric.register_node(self)
        for address in self._addresses:
            fabric.bind_address(address, self)

    @property
    def fabric(self):
        """The fabric the node is attached to (``None`` if detached)."""
        return self._fabric

    # ------------------------------------------------------------------
    # packet I/O
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Send a packet into the attached fabric."""
        if self._fabric is None:
            raise RoutingError(f"node {self.name!r} is not attached to a fabric")
        self.packets_sent += 1
        self._fabric.send(packet, origin=self)

    def receive(self, packet: Packet) -> None:
        """Entry point called by the fabric when a packet arrives."""
        self.packets_received += 1
        self.handle_packet(packet)

    def handle_packet(self, packet: Packet) -> None:
        """Process an incoming packet (to be overridden by subclasses)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, addresses={self.addresses!r})"
