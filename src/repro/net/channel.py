"""Delivery channels: the one seam every packet hop goes through.

Historically each forwarding component (:class:`~repro.net.fabric.LANFabric`,
:class:`~repro.net.link.Link`, the ECMP spreaders) scheduled delivery by
closing over the destination object and calling ``destination.receive``
directly.  That works only while sender and receiver share one
:class:`~repro.sim.engine.Simulator` in one process.

This module makes the hop explicit.  A *delivery channel* accepts
``(sink, packet, delay, label)`` and promises the packet will reach the
sink after the delay:

* :class:`InProcessChannel` is the default and reproduces the historical
  behaviour exactly — one ``schedule_in`` call per packet with the same
  delay and the same (interned) label, so event ordering is bit-identical
  to the pre-channel code.
* :class:`PipeChannelSender` / :class:`PipeChannelReceiver` carry
  timestamped items between *partitions* (separate simulator processes)
  as pickled :class:`BatchFrame` messages over ``multiprocessing`` pipes.
  They implement the conservative-lookahead frame protocol used by
  :mod:`repro.sim.partition`: a frame's ``window_end`` is a watermark —
  the sending partition guarantees it will never emit an item with a
  timestamp at or below it again.  An empty frame is a null message (pure
  watermark advance); ``window_end = inf`` is the closing sentinel.

The channel also hosts the delivery-time *guard* hook: an optional
zero-argument callable run when the delay elapses, returning ``False`` to
drop the packet instead of delivering it.  The fabric and link use it to
drop packets whose sink was detached while they were in flight, with the
drop counted in one place (see ``packets_dropped_sink_detached`` in
:class:`~repro.net.fabric.FabricStats` / :class:`~repro.net.link.LinkStats`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.errors import NetworkError
from repro.sim.engine import Simulator


class PacketSink(Protocol):
    """Anything that can receive a packet from the network."""

    def receive(self, packet: Any) -> None:
        """Handle an incoming packet."""


#: Delivery-time hook: return ``False`` to drop instead of delivering.
DeliveryGuard = Callable[[], bool]


class DeliveryChannel(Protocol):
    """One network hop: deliver ``packet`` to ``sink`` after ``delay``."""

    def deliver(
        self,
        sink: PacketSink,
        packet: Any,
        delay: float,
        label: str,
        guard: Optional[DeliveryGuard] = None,
    ) -> None:
        """Schedule the delivery."""


class InProcessChannel:
    """Channel between components sharing one simulator.

    ``deliver`` performs exactly one ``schedule_in`` call with the given
    delay and label, so runs through this channel are bit-identical to
    the historical direct-``receive`` scheduling (same event times, same
    FIFO sequence numbers, same labels).
    """

    __slots__ = ("_simulator", "_schedule")

    def __init__(self, simulator: Simulator) -> None:
        self._simulator = simulator
        # Bound method cached once: deliver() runs per packet hop.
        self._schedule = simulator._schedule_delivery

    def deliver(
        self,
        sink: PacketSink,
        packet: Any,
        delay: float,
        label: str,
        guard: Optional[DeliveryGuard] = None,
    ) -> None:
        # Deliveries are fire-and-forget (never cancelled), so they use
        # the simulator's handle-free scheduling fast path; validation
        # and event ordering are identical to schedule_in.
        if guard is None:
            self._schedule(delay, lambda: sink.receive(packet), label)
        else:

            def _deliver() -> None:
                if guard():
                    sink.receive(packet)

            self._schedule(delay, _deliver, label)


class PooledInProcessChannel:
    """:class:`InProcessChannel` that recycles delivered packets.

    Scheduling behaviour (delay, label, event sequence) is identical to
    the unpooled channel, so pooled runs stay bit-identical; the only
    addition is lifecycle tracking via :attr:`Packet.in_flight`:

    * ``deliver`` marks the packet in flight;
    * when the delivery fires, the mark is cleared *before* the guard
      and ``sink.receive`` run;
    * if the mark is still clear afterwards, nothing re-sent the packet
      during ``receive`` — its life ended at this sink (consumed, or
      dropped by the guard) — and it is released to the pool.

    A re-send during ``receive`` (an LB steering the packet onward, the
    ECMP router spreading it) goes through the same channel instance,
    re-marks the packet, and defers the release decision to the final
    hop.  For that to hold, *every* channel of a pooled testbed must be
    this one instance — ``build_testbed`` wires the fabric and the ECMP
    edge router accordingly.
    """

    __slots__ = ("_simulator", "pool", "_schedule")

    def __init__(self, simulator: Simulator, pool: Any) -> None:
        self._simulator = simulator
        self.pool = pool
        self._schedule = simulator._schedule_delivery

    def deliver(
        self,
        sink: PacketSink,
        packet: Any,
        delay: float,
        label: str,
        guard: Optional[DeliveryGuard] = None,
    ) -> None:
        pool = self.pool
        packet.in_flight = True
        if guard is None:

            def _deliver() -> None:
                packet.in_flight = False
                sink.receive(packet)
                if not packet.in_flight:
                    pool.release(packet)

        else:

            def _deliver() -> None:
                packet.in_flight = False
                if guard():
                    sink.receive(packet)
                if not packet.in_flight:
                    pool.release(packet)

        self._schedule(delay, _deliver, label)


# ----------------------------------------------------------------------
# Cross-partition batch frames
# ----------------------------------------------------------------------

#: A timestamped item inside a frame: ``(time, payload)``.  The payload
#: is an arbitrary picklable object — a packet, a request outcome, a
#: metric record — interpreted by the receiving end.
FrameItem = Tuple[float, Any]


@dataclass(frozen=True)
class BatchFrame:
    """One pickled message on a cross-partition channel.

    Attributes
    ----------
    partition:
        Index of the sending partition.
    window_end:
        Watermark: the sender guarantees every future item from this
        partition has ``time > window_end``.  ``math.inf`` marks the
        partition's closing frame (no further frames will follow).
    items:
        Timestamped items, in the partition's emission order.  Within a
        partition this order is authoritative: the merge preserves it
        for equal timestamps.
    summary:
        Optional partition summary, carried on the closing frame only
        (e.g. events executed and wall-clock time of the worker).
    """

    partition: int
    window_end: float
    items: Tuple[FrameItem, ...] = ()
    summary: Optional[Dict[str, Any]] = None

    @property
    def final(self) -> bool:
        """Whether this is the partition's closing sentinel frame."""
        return math.isinf(self.window_end)


class FrameSender(Protocol):
    """Sending half of a cross-partition channel."""

    def stage(self, time: float, payload: Any) -> None:
        """Buffer a timestamped item for the current window."""

    def flush(self, window_end: float) -> None:
        """Emit the buffered items as a frame with watermark ``window_end``."""

    def close(self, summary: Optional[Dict[str, Any]] = None) -> None:
        """Emit the closing sentinel frame."""


class PipeChannelSender:
    """Sending half speaking pickled :class:`BatchFrame` over a pipe.

    The connection is a ``multiprocessing.Pipe`` end (or anything with a
    compatible ``send``).  Frames are sent as they are flushed, so the
    coordinator can drain pipes concurrently and no partition's buffer
    grows with the run length.
    """

    __slots__ = ("_connection", "partition", "_buffer", "_watermark", "_closed")

    def __init__(self, connection: Any, partition: int) -> None:
        self._connection = connection
        self.partition = partition
        self._buffer: List[FrameItem] = []
        self._watermark = -math.inf
        self._closed = False

    def stage(self, time: float, payload: Any) -> None:
        if self._closed:
            raise NetworkError("channel sender is closed")
        if time <= self._watermark:
            raise NetworkError(
                f"item at t={time!r} is behind the emitted watermark "
                f"{self._watermark!r} (partition {self.partition})"
            )
        self._buffer.append((time, payload))

    def flush(self, window_end: float) -> None:
        if self._closed:
            raise NetworkError("channel sender is closed")
        if window_end < self._watermark:
            raise NetworkError(
                f"watermark may not move backwards: {window_end!r} < "
                f"{self._watermark!r} (partition {self.partition})"
            )
        self._connection.send(
            BatchFrame(self.partition, window_end, tuple(self._buffer))
        )
        self._buffer.clear()
        self._watermark = window_end

    def close(self, summary: Optional[Dict[str, Any]] = None) -> None:
        if self._closed:
            return
        self._connection.send(
            BatchFrame(self.partition, math.inf, tuple(self._buffer), summary)
        )
        self._buffer.clear()
        self._closed = True


class CollectingSender:
    """In-process :class:`FrameSender` that accumulates frames in a list.

    Used by the ``partitions=1`` execution path (and by tests) so the
    serial and multi-process paths run the *same* worker code and the
    same frame merge — which is what makes partitioned runs bit-identical
    to serial ones by construction.
    """

    __slots__ = ("partition", "frames", "_buffer", "_watermark", "_closed")

    def __init__(self, partition: int) -> None:
        self.partition = partition
        self.frames: List[BatchFrame] = []
        self._buffer: List[FrameItem] = []
        self._watermark = -math.inf
        self._closed = False

    def stage(self, time: float, payload: Any) -> None:
        if self._closed:
            raise NetworkError("channel sender is closed")
        if time <= self._watermark:
            raise NetworkError(
                f"item at t={time!r} is behind the emitted watermark "
                f"{self._watermark!r} (partition {self.partition})"
            )
        self._buffer.append((time, payload))

    def flush(self, window_end: float) -> None:
        if self._closed:
            raise NetworkError("channel sender is closed")
        if window_end < self._watermark:
            raise NetworkError(
                f"watermark may not move backwards: {window_end!r} < "
                f"{self._watermark!r} (partition {self.partition})"
            )
        self.frames.append(BatchFrame(self.partition, window_end, tuple(self._buffer)))
        self._buffer.clear()
        self._watermark = window_end

    def close(self, summary: Optional[Dict[str, Any]] = None) -> None:
        if self._closed:
            return
        self.frames.append(
            BatchFrame(self.partition, math.inf, tuple(self._buffer), summary)
        )
        self._buffer.clear()
        self._closed = True


class PipeChannelReceiver:
    """Receiving half: decodes :class:`BatchFrame` messages from a pipe."""

    __slots__ = ("_connection",)

    def __init__(self, connection: Any) -> None:
        self._connection = connection

    @property
    def connection(self) -> Any:
        """The underlying pipe end (for ``multiprocessing.connection.wait``)."""
        return self._connection

    def recv(self) -> BatchFrame:
        frame = self._connection.recv()
        if not isinstance(frame, BatchFrame):
            raise NetworkError(
                f"expected a BatchFrame on the channel, got {type(frame).__name__}"
            )
        return frame


# ----------------------------------------------------------------------
# Deterministic frame merge
# ----------------------------------------------------------------------


@dataclass
class MergedItem:
    """One item after the merge, with its provenance."""

    time: float
    partition: int
    seq: int  # emission index within the partition
    payload: Any = field(compare=False)


def merge_frames(frames: Iterable[BatchFrame]) -> List[MergedItem]:
    """Merge cross-partition frames into one deterministic event order.

    The result is sorted by ``(time, partition, seq)`` where ``seq`` is
    the item's emission index *within its partition* (counted across
    frames, in the per-partition frame order).  Because pipes are FIFO,
    per-partition frame order is preserved no matter how the coordinator
    interleaves reads across partitions — so the merged order depends
    only on the partitions' emissions, never on OS scheduling.  This is
    the property the hypothesis test in
    ``tests/test_partition_property.py`` pins.

    Frames may be passed in any cross-partition interleaving, but the
    frames *of one partition* must appear in their emission order (their
    watermarks must be non-decreasing; violations raise
    :class:`~repro.errors.NetworkError`).
    """
    merged: List[MergedItem] = []
    watermarks: Dict[int, float] = {}
    counters: Dict[int, int] = {}
    for frame in frames:
        previous = watermarks.get(frame.partition, -math.inf)
        if frame.window_end < previous:
            raise NetworkError(
                f"partition {frame.partition} frames out of order: watermark "
                f"{frame.window_end!r} after {previous!r}"
            )
        watermarks[frame.partition] = frame.window_end
        seq = counters.get(frame.partition, 0)
        for time, payload in frame.items:
            merged.append(MergedItem(time, frame.partition, seq, payload))
            seq += 1
        counters[frame.partition] = seq
    merged.sort(key=lambda item: (item.time, item.partition, item.seq))
    return merged


def drain_receivers(receivers: Sequence[PipeChannelReceiver]) -> List[BatchFrame]:
    """Collect every frame from ``receivers`` until each has closed.

    Uses ``multiprocessing.connection.wait`` so no pipe backs up while
    another is being read (a partition blocked on a full pipe buffer
    would deadlock the whole run).  Returns all frames, including the
    closing sentinels, in arrival order.
    """
    from multiprocessing.connection import wait

    by_connection = {receiver.connection: receiver for receiver in receivers}
    open_connections = list(by_connection)
    frames: List[BatchFrame] = []
    while open_connections:
        for connection in wait(open_connections):
            try:
                frame = by_connection[connection].recv()
            except EOFError as exc:
                raise NetworkError(
                    "a partition closed its channel without a sentinel frame"
                ) from exc
            frames.append(frame)
            if frame.final:
                open_connections.remove(connection)
    return frames
