"""Shared-LAN fabric connecting every node of the testbed.

The paper's experimental platform bridges the load balancer and the
twelve application servers "on the same link, with routing tables
statically configured".  The :class:`LANFabric` models exactly that: a
switched Layer-2/3 segment where every node's addresses are directly
reachable, VIP prefixes are advertised by the load balancer, and packet
delivery costs a small fixed latency.

The fabric is the single place packets transit through, which makes it
a convenient observation point: per-destination counters, drops for
unroutable packets and optional packet taps (used by tests and by the
debugging examples) all live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import NetworkError, RoutingError
from repro.net.addressing import IPv6Address, IPv6Prefix
from repro.net.channel import DeliveryChannel, InProcessChannel
from repro.net.packet import IPV6_HEADER_SIZE, TCP_HEADER_SIZE, Packet
from repro.net.router import RoutingTable
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.router import NetworkNode

#: A packet tap receives (packet, origin_node_name, destination_node_name).
PacketTap = Callable[[Packet, str, str], None]


@dataclass
class FabricStats:
    """Aggregate fabric counters.

    Drops are counted once each, in exactly one of the
    ``packets_dropped_*`` counters (see docs/architecture.md):

    * ``no_route`` — the destination address resolved to nothing at send
      time (unknown, or already detached and therefore unbound);
    * ``hop_limit`` — the hop limit hit zero at send time;
    * ``sink_detached`` — the destination resolved at send time but was
      detached from the fabric while the packet was in flight.  These
      packets *are* counted in ``packets_delivered``/``bytes_delivered``
      (the fabric carried them; the sink was gone on arrival).
    """

    packets_delivered: int = 0
    packets_dropped_no_route: int = 0
    packets_dropped_hop_limit: int = 0
    packets_dropped_sink_detached: int = 0
    bytes_delivered: int = 0
    deliveries_per_node: Dict[str, int] = field(default_factory=dict)

    @property
    def packets_dropped(self) -> int:
        """Unified drop total across every drop reason."""
        return (
            self.packets_dropped_no_route
            + self.packets_dropped_hop_limit
            + self.packets_dropped_sink_detached
        )

    def snapshot(self) -> Dict[str, int]:
        """Flat numeric counters (the uniform telemetry-sampler API)."""
        return {
            "packets_delivered": self.packets_delivered,
            "bytes_delivered": self.bytes_delivered,
            "packets_dropped": self.packets_dropped,
            "packets_dropped_no_route": self.packets_dropped_no_route,
            "packets_dropped_hop_limit": self.packets_dropped_hop_limit,
            "packets_dropped_sink_detached": self.packets_dropped_sink_detached,
        }


class LANFabric:
    """Single-segment data-center fabric with static routing.

    Parameters
    ----------
    simulator:
        Engine used to schedule packet deliveries.
    latency:
        One-way delivery latency between any two nodes, in seconds.  The
        default (50 µs) approximates one switch hop in a data center.
    strict:
        When ``True`` an unroutable packet raises
        :class:`~repro.errors.RoutingError`; when ``False`` it is counted
        and silently dropped (closer to real network behaviour, and the
        default for experiments).
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: float = 50e-6,
        strict: bool = False,
        channel: Optional[DeliveryChannel] = None,
    ) -> None:
        if latency < 0:
            raise RoutingError(f"fabric latency must be non-negative, got {latency!r}")
        self.simulator = simulator
        self.latency = latency
        self.strict = strict
        #: The delivery channel every fabric hop goes through.  The
        #: default in-process channel reproduces direct scheduling
        #: bit-for-bit; a partitioned engine may substitute its own.
        self.channel: DeliveryChannel = (
            channel if channel is not None else InProcessChannel(simulator)
        )
        self._nodes: Dict[str, "NetworkNode"] = {}
        self._address_map: Dict[IPv6Address, "NetworkNode"] = {}
        self._prefix_routes: RoutingTable["NetworkNode"] = RoutingTable()
        #: Names of nodes detached mid-run; checked at delivery time so
        #: in-flight packets to a detached sink are counted as
        #: ``packets_dropped_sink_detached`` instead of being delivered.
        self._detached: set = set()
        self._taps: List[PacketTap] = []
        #: Memoized send routes: destination address ->
        #: ``(node, node name, event label, delivery guard)``.  This
        #: folds the address resolution and the interned per-destination
        #: label/guard into one dict hit on the per-packet path.  Every
        #: topology mutation (address bind, prefix advertise/withdraw,
        #: node registration or detach) clears the memo wholesale, so a
        #: cached entry is always exactly what resolve() would return.
        #: The guard itself closes only over per-destination constants
        #: (the detached set — mutated in place, so shared guards see
        #: updates — the node name and the stats object).
        self._send_routes: Dict[IPv6Address, tuple] = {}
        self.stats = FabricStats()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_node(self, node: "NetworkNode") -> None:
        """Register a node (called from :meth:`NetworkNode.attach`)."""
        existing = self._nodes.get(node.name)
        if existing is not None and existing is not node:
            raise RoutingError(f"a different node named {node.name!r} already exists")
        self._nodes[node.name] = node
        # A node (re-)attaching under a previously detached name is live
        # again; in-flight packets scheduled before the re-attach are
        # delivered to it, matching a real switch re-learning the port.
        self._detached.discard(node.name)
        self._send_routes.clear()

    def bind_address(self, address: IPv6Address, node: "NetworkNode") -> None:
        """Bind an exact address to a node (wins over prefix routes)."""
        owner = self._address_map.get(address)
        if owner is not None and owner is not node:
            raise RoutingError(
                f"address {address} already bound to node {owner.name!r}"
            )
        self._address_map[address] = node
        self._send_routes.clear()

    def advertise_prefix(self, prefix: IPv6Prefix, node: "NetworkNode") -> None:
        """Route a whole prefix (e.g. the VIP range) to a node.

        This models the load balancer advertising VIP routes at the edge
        of the data center.
        """
        self._prefix_routes.add_route(prefix, node)
        self._send_routes.clear()

    def withdraw_prefix(self, prefix: IPv6Prefix) -> bool:
        """Withdraw a previously advertised prefix."""
        self._send_routes.clear()
        return self._prefix_routes.remove_route(prefix)

    def detach_node(self, node: "NetworkNode") -> None:
        """Remove ``node`` from the fabric entirely.

        Its exact address bindings and advertised prefixes are withdrawn
        (later sends drop as ``packets_dropped_no_route``), and packets
        already in flight toward it are dropped on arrival and counted
        as ``packets_dropped_sink_detached`` — the unified accounting
        documented on :class:`FabricStats`.
        """
        registered = self._nodes.get(node.name)
        if registered is not node:
            raise RoutingError(f"node {node.name!r} is not attached to this fabric")
        del self._nodes[node.name]
        self._address_map = {
            address: owner
            for address, owner in self._address_map.items()
            if owner is not node
        }
        for route in self._prefix_routes.routes():
            if route.next_hop is node:
                self._prefix_routes.remove_route(route.prefix)
        self._detached.add(node.name)
        self._send_routes.clear()

    def add_tap(self, tap: PacketTap) -> None:
        """Register an observer called for every delivered packet."""
        self._taps.append(tap)

    def node(self, name: str) -> "NetworkNode":
        """Look up a registered node by name."""
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise RoutingError(f"unknown node {name!r}") from exc

    def nodes(self) -> Dict[str, "NetworkNode"]:
        """All registered nodes, keyed by name (copy)."""
        return dict(self._nodes)

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def resolve(self, address: IPv6Address) -> Optional["NetworkNode"]:
        """The node that should receive packets addressed to ``address``."""
        node = self._address_map.get(address)
        if node is not None:
            return node
        return self._prefix_routes.lookup_or_none(address)

    def send(self, packet: Packet, origin: Optional["NetworkNode"] = None) -> bool:
        """Deliver ``packet`` to the owner of its destination address.

        Returns ``True`` if the packet was scheduled for delivery,
        ``False`` if it was dropped (no route or hop limit exhausted) and
        the fabric is not strict.
        """
        # The resolution, event label and delivery guard for a
        # destination address are all memoized in one dict hit (see
        # ``_send_routes``); the miss path below performs the same
        # resolve() an uncached send would — exact binding first, prefix
        # fallback second — and the memo is cleared on every topology
        # mutation, so hits and misses are indistinguishable.  The
        # hop-limit exception machinery and the Packet.size_bytes() call
        # are inlined for the same once-per-packet-hop reason.
        dst = packet._dst
        route = self._send_routes.get(dst)
        if route is None:
            destination = self._address_map.get(dst)
            if destination is None:
                destination = self._prefix_routes.lookup_or_none(dst)
            if destination is None:
                # Unroutable sends are not cached: a later bind can make
                # the same address routable.
                self.stats.packets_dropped_no_route += 1
                if self.strict:
                    raise RoutingError(
                        f"no route to {packet.dst} for {packet.describe()}"
                    )
                return False
            name = destination.name
            detached = self._detached
            stats = self.stats

            def arrives() -> bool:
                # Checked when the latency elapses, not at send time:
                # the sink may detach while the packet is in flight.
                if detached and name in detached:
                    stats.packets_dropped_sink_detached += 1
                    return False
                return True

            route = self._send_routes[dst] = (
                destination,
                name,
                f"deliver->{name}",
                arrives,
            )

        hop_limit = packet.hop_limit
        if hop_limit <= 1:
            self.stats.packets_dropped_hop_limit += 1
            if self.strict:
                raise NetworkError(
                    f"hop limit exhausted for packet {packet.packet_id}"
                )
            return False
        packet.hop_limit = hop_limit - 1

        destination, name, label, guard = route

        if self._taps:
            origin_name = origin.name if origin is not None else "<external>"
            for tap in self._taps:
                tap(packet, origin_name, name)

        stats = self.stats
        stats.packets_delivered += 1
        srh = packet.srh
        size = IPV6_HEADER_SIZE + TCP_HEADER_SIZE + packet.tcp.payload_size
        if srh is not None:
            size += srh.size_bytes()
        stats.bytes_delivered += size
        per_node = stats.deliveries_per_node
        per_node[name] = per_node.get(name, 0) + 1

        self.channel.deliver(destination, packet, self.latency, label, guard)
        return True
