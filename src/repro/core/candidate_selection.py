"""Server (candidate) selection schemes for the load balancer.

When a new flow's first packet reaches the load balancer, a *selection
scheme* chooses the ordered list of candidate servers that will be
written into the Segment Routing header.  The paper (§II-B) discusses the
two knobs: how many candidates to include, and how to pick them —
random selection or consistent hashing — and settles on **two servers
chosen at random** for the evaluation, citing Mitzenmacher's
power-of-two-choices result that more than two choices brings rapidly
diminishing returns.

This module provides:

* :class:`RandomCandidateSelector` — d distinct servers uniformly at
  random (the paper's choice, with d = 2);
* :class:`RoundRobinCandidateSelector` — deterministic rotation, useful
  as a low-variance baseline in ablations;
* :class:`ConsistentHashCandidateSelector` — per-flow-stable candidates
  derived from a Maglev table, so a flow always sees the same candidate
  chain;
* :class:`SingleRandomSelector` — one random server, which is how the
  paper's ``RR`` baseline (no Service Hunting) is expressed in this
  library.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.core.consistent_hash import MaglevTable, flow_hash_key
from repro.errors import SelectionError
from repro.net.addressing import IPv6Address
from repro.net.packet import FlowKey


class CandidateSelector(abc.ABC):
    """Chooses the ordered candidate list for a new flow."""

    #: Short name used in experiment manifests and figure legends.
    name: str = "selector"

    #: Number of candidates this selector emits per flow.
    num_candidates: int = 2

    #: Whether the candidate list is a pure function of the flow key and
    #: server pool.  Flow-stable selectors let any load-balancer instance
    #: re-derive a flow's candidate chain after a steering-state loss
    #: (the property ECMP fleets rely on, paper §II-B).
    flow_stable: bool = False

    @abc.abstractmethod
    def select(
        self, flow_key: FlowKey, servers: Sequence[IPv6Address]
    ) -> List[IPv6Address]:
        """Return the ordered candidate servers for ``flow_key``.

        ``servers`` is the pool of servers hosting the requested VIP.
        The returned list is written into the SR header in traversal
        order: the first element is offered the connection first and the
        last element must accept.
        """

    def prepare(self, servers: Sequence[IPv6Address]) -> None:
        """Precompute pool-derived state for the given server set.

        Called by the load balancer whenever a VIP pool is registered or
        its membership changes, so selectors that derive state from the
        pool (the Maglev table) can build it at configuration time
        instead of on the first packet of the next flow.  The default
        keeps nothing and does nothing.
        """

    def _validate_pool(self, servers: Sequence[IPv6Address]) -> None:
        if not servers:
            raise SelectionError("cannot select candidates from an empty server pool")
        if self.num_candidates > len(servers):
            raise SelectionError(
                f"cannot select {self.num_candidates} distinct candidates from "
                f"{len(servers)} servers"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(candidates={self.num_candidates})"


class RandomCandidateSelector(CandidateSelector):
    """``d`` distinct servers chosen uniformly at random (paper default, d=2)."""

    def __init__(self, rng: np.random.Generator, num_candidates: int = 2) -> None:
        if num_candidates <= 0:
            raise SelectionError(
                f"number of candidates must be positive, got {num_candidates!r}"
            )
        self._rng = rng
        self.num_candidates = num_candidates
        self.name = f"random-{num_candidates}"

    def select(
        self, flow_key: FlowKey, servers: Sequence[IPv6Address]
    ) -> List[IPv6Address]:
        self._validate_pool(servers)
        indices = self._rng.choice(
            len(servers), size=self.num_candidates, replace=False
        )
        # tolist() yields plain ints in one C call — cheaper than
        # iterating numpy scalars and casting each one.
        return [servers[index] for index in indices.tolist()]


class SingleRandomSelector(RandomCandidateSelector):
    """One random server: the paper's ``RR`` baseline (no Service Hunting).

    With a single segment the Service Hunting processor is forced to
    accept, so the behaviour is exactly "queries are randomly assigned to
    one server".
    """

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__(rng, num_candidates=1)
        self.name = "RR"


class RoundRobinCandidateSelector(CandidateSelector):
    """Deterministic rotation over the server pool.

    The first candidate cycles through the pool; the remaining
    candidates are the following servers in pool order.  Useful as a
    zero-variance control in ablation experiments.
    """

    def __init__(self, num_candidates: int = 2) -> None:
        if num_candidates <= 0:
            raise SelectionError(
                f"number of candidates must be positive, got {num_candidates!r}"
            )
        self.num_candidates = num_candidates
        self.name = f"round-robin-{num_candidates}"
        self._next = 0

    def select(
        self, flow_key: FlowKey, servers: Sequence[IPv6Address]
    ) -> List[IPv6Address]:
        self._validate_pool(servers)
        start = self._next % len(servers)
        self._next += 1
        return [
            servers[(start + offset) % len(servers)]
            for offset in range(self.num_candidates)
        ]


class ConsistentHashCandidateSelector(CandidateSelector):
    """Per-flow-stable candidates from a Maglev consistent-hashing table.

    Every flow maps to the same candidate chain for a given server set,
    which lets a fleet of load-balancer instances reach identical
    steering decisions without sharing state (the Maglev/Ananta
    motivation discussed in the paper's related work).
    """

    flow_stable = True

    def __init__(
        self,
        num_candidates: int = 2,
        table_size: int = 65_537,
    ) -> None:
        if num_candidates <= 0:
            raise SelectionError(
                f"number of candidates must be positive, got {num_candidates!r}"
            )
        self.num_candidates = num_candidates
        self.name = f"consistent-hash-{num_candidates}"
        self._table_size = table_size
        self._table: Optional[MaglevTable[IPv6Address]] = None
        self._table_servers: Optional[tuple] = None

    def _table_for(self, servers: Sequence[IPv6Address]) -> MaglevTable[IPv6Address]:
        """(Re)build the Maglev table when the server pool changes."""
        key = tuple(servers)
        if self._table is None or self._table_servers != key:
            self._table = MaglevTable(list(servers), table_size=self._table_size)
            self._table_servers = key
        return self._table

    def prepare(self, servers: Sequence[IPv6Address]) -> None:
        # Building the table is a pure function of the pool (no RNG, no
        # scheduling), so doing it eagerly here is observationally
        # identical to the lazy build the first select would trigger.
        if servers:
            self._table_for(servers)

    def select(
        self, flow_key: FlowKey, servers: Sequence[IPv6Address]
    ) -> List[IPv6Address]:
        self._validate_pool(servers)
        table = self._table_for(servers)
        return table.lookup_chain(flow_hash_key(flow_key), self.num_candidates)


def make_selector(
    name: str,
    rng: np.random.Generator,
    num_candidates: int = 2,
) -> CandidateSelector:
    """Factory for selectors, keyed by a configuration string.

    Recognised names: ``random``, ``single-random`` (the RR baseline),
    ``round-robin`` and ``consistent-hash``.
    """
    if name == "random":
        return RandomCandidateSelector(rng, num_candidates)
    if name in ("single-random", "rr"):
        return SingleRandomSelector(rng)
    if name == "round-robin":
        return RoundRobinCandidateSelector(num_candidates)
    if name == "consistent-hash":
        return ConsistentHashCandidateSelector(num_candidates)
    raise SelectionError(f"unknown candidate selector {name!r}")
