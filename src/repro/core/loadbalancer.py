"""The SRLB load balancer.

The load balancer sits at the edge of the data center and advertises the
virtual IP addresses (VIPs) of the applications it fronts.  Its job is
deliberately small (paper §I-A):

* for the **first packet of a new flow** (a TCP SYN addressed to a VIP),
  pick a list of candidate servers with the configured selection scheme
  and insert a Segment Routing header offering the connection to each of
  them in turn, with the VIP as the final segment;
* for the **connection-acceptance packet** (the SYN-ACK coming back from
  the accepting server, carrying an SR header that names that server),
  record the flow-to-server binding in the flow table and forward the
  packet to the client;
* for **every subsequent packet of the flow**, steer it to the recorded
  server with a two-segment SR header (server, VIP).

Everything else — whether a server accepts, and on what basis — happens
on the servers, which is the point of the design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.candidate_selection import CandidateSelector
from repro.core.flow_table import FlowTable
from repro.errors import LoadBalancerError
from repro.net.addressing import IPv6Address
from repro.net.packet import Packet, TCPFlag, make_reset
from repro.net.router import NetworkNode
from repro.net.srh import SegmentRoutingHeader
from repro.sim.engine import PeriodicTask, Simulator


@dataclass
class LoadBalancerStats:
    """Aggregate counters kept by one load-balancer instance.

    Tier deployments (see :mod:`repro.core.lb_tier`) aggregate these
    across instances; each counter is strictly local to the instance
    that incremented it.
    """

    #: New-flow SYNs received from clients (before candidate selection).
    syn_received: int = 0
    #: New-flow SYNs dispatched with an SR candidate list.  Equals
    #: ``syn_received`` unless candidate selection raised.
    syn_dispatched: int = 0
    #: Mid-flow packets steered to their recorded server (flow-table hits).
    steering_packets: int = 0
    #: Mid-flow packets with no flow-table entry (expired, never learned,
    #: or learned by another instance that is now gone).
    steering_misses: int = 0
    #: Flow-to-server bindings learned from steering SYN-ACKs.
    acceptances_learned: int = 0
    #: RSTs sent to clients on unrecoverable steering misses.
    resets_sent: int = 0
    #: Packets addressed to an unregistered VIP, or steering-address
    #: packets carrying no SR header; both are dropped.
    unknown_vip_drops: int = 0
    #: How many times each server appeared as the first candidate.
    first_candidate_offers: Dict[IPv6Address, int] = field(default_factory=dict)
    #: How many flows each server ended up accepting.
    acceptances_per_server: Dict[IPv6Address, int] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, int]:
        """Flat numeric counters (the uniform telemetry-sampler API).

        Per-server breakdown dicts are flattened to fleet totals so the
        result is a plain ``name -> number`` mapping like every other
        ``snapshot()`` in the tree.
        """
        return {
            "syn_received": self.syn_received,
            "syn_dispatched": self.syn_dispatched,
            "steering_packets": self.steering_packets,
            "steering_misses": self.steering_misses,
            "acceptances_learned": self.acceptances_learned,
            "resets_sent": self.resets_sent,
            "unknown_vip_drops": self.unknown_vip_drops,
            "first_candidate_offers": sum(self.first_candidate_offers.values()),
            "acceptances_total": sum(self.acceptances_per_server.values()),
        }


class LoadBalancerNode(NetworkNode):
    """SRLB edge load balancer (one instance).

    Parameters
    ----------
    simulator:
        Shared simulation engine.
    name:
        Node name (diagnostics).
    address:
        The load balancer's own IPv6 address — the segment the accepting
        server routes the SYN-ACK through.
    selector:
        Candidate-selection scheme producing the SR candidate list for
        new flows.
    flow_idle_timeout:
        Idle timeout of flow-table entries, in seconds.
    flow_table_capacity:
        Optional cap on the number of tracked flows.
    advertise_vips:
        When ``True`` (the default, single-instance deployment) the node
        binds its VIPs on the fabric so client traffic reaches it
        directly.  Fleet deployments set this to ``False``: the ECMP
        router owns the VIPs and hands packets to the instances.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        address: IPv6Address,
        selector: CandidateSelector,
        flow_idle_timeout: float = 60.0,
        flow_table_capacity: Optional[int] = None,
        advertise_vips: bool = True,
    ) -> None:
        super().__init__(simulator, name)
        self.add_address(address)
        self.selector = selector
        self.advertise_vips = advertise_vips
        self.flow_table = FlowTable(
            idle_timeout=flow_idle_timeout, capacity=flow_table_capacity
        )
        self.stats = LoadBalancerStats()
        self._backends: Dict[IPv6Address, List[IPv6Address]] = {}
        self._steering_aliases: set = set()
        self._housekeeping: Optional[PeriodicTask] = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def register_vip(
        self, vip: IPv6Address, servers: Sequence[IPv6Address]
    ) -> None:
        """Front ``vip`` with the given pool of application servers."""
        if not servers:
            raise LoadBalancerError(f"VIP {vip} needs at least one server")
        self._backends[vip] = list(servers)
        # Let the selector build pool-derived state (the Maglev table)
        # now, at configuration time, instead of on the first flow.
        self.selector.prepare(self._backends[vip])
        if self.fabric is not None and self.advertise_vips:
            self.fabric.bind_address(vip, self)

    def add_backend(self, vip: IPv6Address, server: IPv6Address) -> None:
        """Add a server to an existing VIP pool."""
        pool = self._backends.get(vip)
        if pool is None:
            raise LoadBalancerError(f"VIP {vip} is not registered")
        if server not in pool:
            pool.append(server)
            self.selector.prepare(pool)

    def remove_backend(self, vip: IPv6Address, server: IPv6Address) -> bool:
        """Remove a server from a VIP pool; existing flows keep steering.

        Refusing to empty a pool happens *before* any mutation, so a
        rejected removal leaves the pool exactly as it was.
        """
        pool = self._backends.get(vip)
        if pool is None:
            raise LoadBalancerError(f"VIP {vip} is not registered")
        if server not in pool:
            return False
        if len(pool) == 1:
            raise LoadBalancerError(
                f"removing {server} would leave VIP {vip} with no servers"
            )
        pool.remove(server)
        self.selector.prepare(pool)
        return True

    def add_steering_alias(self, address: IPv6Address) -> None:
        """Accept steering signals addressed to ``address`` as well.

        Fleet deployments use a shared anycast address as the "load
        balancer" segment of the servers' steering replies; the ECMP
        router owns that address on the fabric and hands the packets to
        the owning instance, which must then recognise them as steering
        signals even though the address is not locally bound.
        """
        self._steering_aliases.add(address)

    def backends_for(self, vip: IPv6Address) -> List[IPv6Address]:
        """The current server pool for a VIP (copy)."""
        pool = self._backends.get(vip)
        if pool is None:
            raise LoadBalancerError(f"VIP {vip} is not registered")
        return list(pool)

    @property
    def vips(self) -> List[IPv6Address]:
        """All registered VIPs."""
        return list(self._backends)

    def attach(self, fabric) -> None:
        """Attach to the fabric and claim the registered VIPs (if advertising)."""
        super().attach(fabric)
        if self.advertise_vips:
            for vip in self._backends:
                fabric.bind_address(vip, self)

    def start_housekeeping(self, interval: Optional[float] = None) -> None:
        """Start periodic flow-table expiry (idle-timeout enforcement)."""
        if self._housekeeping is not None and self._housekeeping.active:
            return
        period = interval if interval is not None else self.flow_table.idle_timeout
        self._housekeeping = PeriodicTask(
            simulator=self.simulator,
            interval=period,
            callback=self._expire_idle_flows,
            label=f"{self.name}-flow-expiry",
        )
        self._housekeeping.start()

    def _expire_idle_flows(self) -> None:
        """One housekeeping tick: reclaim idle flow-table entries.

        A bound method rather than a per-``start_housekeeping`` lambda,
        so restarting housekeeping (tier recovery re-attaches instances)
        never stacks up fresh closures.
        """
        self.flow_table.expire_idle(self.simulator.now)

    def stop_housekeeping(self) -> None:
        """Stop the periodic flow-table expiry task."""
        if self._housekeeping is not None:
            self._housekeeping.stop()

    # ------------------------------------------------------------------
    # packet processing
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        if packet.dst in self._backends:
            self._handle_client_packet(packet, vip=packet.dst)
        elif self.owns(packet.dst) or packet.dst in self._steering_aliases:
            self._handle_steering_signal(packet)
        else:
            # A VIP in the advertised prefix that no application registered.
            self.stats.unknown_vip_drops += 1

    # -- client -> VIP direction ----------------------------------------
    def _handle_client_packet(self, packet: Packet, vip: IPv6Address) -> None:
        is_syn = packet.tcp.has(TCPFlag.SYN) and not packet.tcp.has(TCPFlag.ACK)
        if is_syn:
            self._dispatch_new_flow(packet, vip)
        else:
            self._steer_existing_flow(packet, vip)

    def _dispatch_new_flow(self, packet: Packet, vip: IPv6Address) -> None:
        """Offer a new connection to the selected candidate servers."""
        self.stats.syn_received += 1
        flow_key = packet.flow_key()
        candidates = self.selector.select(flow_key, self._backends[vip])
        if not candidates:
            raise LoadBalancerError("candidate selector returned an empty list")
        first = candidates[0]
        self.stats.first_candidate_offers[first] = (
            self.stats.first_candidate_offers.get(first, 0) + 1
        )
        srh = SegmentRoutingHeader.from_traversal(list(candidates) + [vip])
        packet.attach_srh(srh)
        self.stats.syn_dispatched += 1
        self.send(packet)

    def _steer_existing_flow(self, packet: Packet, vip: IPv6Address) -> None:
        """Pin a mid-flow packet to the server that accepted the flow."""
        flow_key = packet.flow_key()
        server = self.flow_table.steer(flow_key, self.simulator.now)
        if server is None:
            self.stats.steering_misses += 1
            self._handle_steering_miss(packet, vip)
            return
        srh = SegmentRoutingHeader.from_traversal([server, vip])
        packet.attach_srh(srh)
        self.stats.steering_packets += 1
        self.send(packet)

    def _handle_steering_miss(self, packet: Packet, vip: IPv6Address) -> None:
        """React to a mid-flow packet with no steering state.

        A single instance can only fail fast: it sends a RST so the
        client does not wait forever.  Tier deployments override this
        with the stateless recovery path (re-deriving the candidate
        chain when the selector is flow-stable).
        """
        self._send_reset(packet, vip)

    def _send_reset(self, packet: Packet, vip: IPv6Address) -> None:
        self.stats.resets_sent += 1
        self.send(
            make_reset(
                packet.flow_key(),
                request_id=packet.tcp.request_id,
                created_at=self.simulator.now,
                pool=self.packet_pool,
            )
        )

    # -- server -> client direction (connection acceptance) --------------
    def _handle_steering_signal(self, packet: Packet) -> None:
        """Learn which server accepted a flow from the SYN-ACK's SR header."""
        srh = packet.srh
        if srh is None:
            # Not a Service Hunting signal; nothing for us to do.
            self.stats.unknown_vip_drops += 1
            return
        self._learn_from_signal(packet)
        # Hand the packet on to the client, stripping the SR header: the
        # client sees a plain SYN-ACK from the VIP (paper, figure 1).
        client = srh.final_segment
        packet.detach_srh()
        packet.dst = client
        self.send(packet)

    def _learn_from_signal(self, packet: Packet) -> IPv6Address:
        """Install the flow binding carried in-band by a steering SYN-ACK.

        The accepting server's address is the first traversed segment of
        the SR header, so *any* instance that sees the packet can learn
        the binding without shared state — the property the ECMP tier's
        cross-instance relay relies on.
        """
        srh = packet.srh
        # The first traversed segment is the last of the RFC-ordered
        # list; indexing it directly avoids materialising the full
        # traversal tuple on every acceptance.
        accepting_server = srh.segments[-1]
        # The SYN-ACK travels in the server->client direction; the flow
        # table is keyed by the client->VIP direction.  Both the packet's
        # key and its reverse are cached, so tier deployments that
        # already derived this key for the ownership check reuse it here.
        forward_key = packet.flow_key().reversed()
        self.flow_table.learn(forward_key, accepting_server, self.simulator.now)
        self.stats.acceptances_learned += 1
        self.stats.acceptances_per_server[accepting_server] = (
            self.stats.acceptances_per_server.get(accepting_server, 0) + 1
        )
        return accepting_server

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def acceptance_share(self) -> Dict[IPv6Address, float]:
        """Fraction of learned flows accepted by each server."""
        total = sum(self.stats.acceptances_per_server.values())
        if total == 0:
            return {}
        return {
            server: count / total
            for server, count in self.stats.acceptances_per_server.items()
        }

    def __repr__(self) -> str:
        return (
            f"LoadBalancerNode(name={self.name!r}, vips={len(self._backends)}, "
            f"flows={len(self.flow_table)}, selector={self.selector.name!r})"
        )
