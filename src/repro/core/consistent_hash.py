"""Consistent hashing (Maglev-style lookup table).

The paper lists consistent hashing as one of the candidate-selection
schemes the load balancer may use ("Possibilities for such schemes
include random selection and consistent hashing", §II-B), and its
related-work section discusses Maglev and Ananta, which rely on it to
keep flow-to-server mappings stable when load-balancer instances or
servers come and go.

This module implements the Maglev population algorithm: each backend
generates a permutation of the table slots from two hashes of its name,
and backends take turns claiming their next preferred empty slot until
the table is full.  The resulting table gives

* O(1) lookups,
* near-uniform slot shares per backend, and
* minimal disruption when the backend set changes.

It is used by :class:`repro.core.candidate_selection.ConsistentHashSelector`
and exercised directly by the ablation benchmark on selection schemes.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Generic, List, Sequence, Tuple, TypeVar

from repro.errors import SelectionError

BackendT = TypeVar("BackendT")

#: Default table size: a prime much larger than the expected number of
#: backends, as recommended by the Maglev paper (§3.4).
DEFAULT_TABLE_SIZE = 65_537


def _hash64(data: str, salt: str) -> int:
    """Stable 64-bit hash of ``data`` under ``salt`` (process-independent)."""
    digest = hashlib.sha256(f"{salt}:{data}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class MaglevTable(Generic[BackendT]):
    """Maglev consistent-hashing lookup table.

    Parameters
    ----------
    backends:
        The backend objects to spread over the table.  Their ``str()``
        form is used as the hashing identity, so it must be stable and
        unique (IPv6 addresses qualify).
    table_size:
        Number of slots; should be a prime noticeably larger than the
        number of backends.
    """

    def __init__(
        self,
        backends: Sequence[BackendT],
        table_size: int = DEFAULT_TABLE_SIZE,
    ) -> None:
        if table_size <= 0:
            raise SelectionError(f"table size must be positive, got {table_size!r}")
        if not backends:
            raise SelectionError("Maglev table needs at least one backend")
        if len(set(str(backend) for backend in backends)) != len(backends):
            raise SelectionError("backend identities must be unique")
        self._table_size = table_size
        self._backends: List[BackendT] = list(backends)
        self._table: List[int] = self._populate()

    # ------------------------------------------------------------------
    # table construction
    # ------------------------------------------------------------------
    def _permutation(self, backend: BackendT) -> Tuple[int, int]:
        """The (offset, skip) pair defining a backend's slot preference order."""
        identity = str(backend)
        offset = _hash64(identity, "maglev-offset") % self._table_size
        skip = _hash64(identity, "maglev-skip") % (self._table_size - 1) + 1
        return offset, skip

    def _populate(self) -> List[int]:
        num_backends = len(self._backends)
        permutations = [self._permutation(backend) for backend in self._backends]
        next_index = [0] * num_backends
        table = [-1] * self._table_size
        filled = 0
        while filled < self._table_size:
            for backend_index in range(num_backends):
                offset, skip = permutations[backend_index]
                # Find this backend's next preferred slot that is still empty.
                while True:
                    position = (offset + next_index[backend_index] * skip) % self._table_size
                    next_index[backend_index] += 1
                    if table[position] < 0:
                        table[position] = backend_index
                        filled += 1
                        break
                if filled >= self._table_size:
                    break
        return table

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def table_size(self) -> int:
        """Number of slots in the lookup table."""
        return self._table_size

    @property
    def backends(self) -> Tuple[BackendT, ...]:
        """The backends the table was built over."""
        return tuple(self._backends)

    def lookup(self, key: str) -> BackendT:
        """The backend owning the slot that ``key`` hashes to."""
        slot = _hash64(key, "maglev-lookup") % self._table_size
        return self._backends[self._table[slot]]

    def lookup_chain(self, key: str, count: int) -> List[BackendT]:
        """``count`` distinct backends for ``key``, in table order.

        Used to derive an SR candidate list from consistent hashing: the
        first backend is the flow's primary owner, subsequent ones are
        the owners of the following slots (skipping duplicates).  This
        keeps the *set* of candidates stable per flow while still
        offering a choice.
        """
        if count <= 0:
            raise SelectionError(f"count must be positive, got {count!r}")
        if count > len(self._backends):
            raise SelectionError(
                f"cannot produce {count} distinct backends from "
                f"{len(self._backends)} available"
            )
        start = _hash64(key, "maglev-lookup") % self._table_size
        chain: List[BackendT] = []
        seen: set = set()
        position = start
        while len(chain) < count:
            backend_index = self._table[position % self._table_size]
            if backend_index not in seen:
                seen.add(backend_index)
                chain.append(self._backends[backend_index])
            position += 1
        return chain

    def slot_shares(self) -> Dict[BackendT, float]:
        """Fraction of slots owned by each backend (uniformity check)."""
        counts: Dict[int, int] = {}
        for backend_index in self._table:
            counts[backend_index] = counts.get(backend_index, 0) + 1
        return {
            self._backends[index]: count / self._table_size
            for index, count in counts.items()
        }

    def disruption_versus(self, other: "MaglevTable[BackendT]") -> float:
        """Fraction of slots mapping to a different backend than in ``other``.

        Requires equal table sizes.  Used to verify the minimal-disruption
        property when the backend set changes.
        """
        if other.table_size != self._table_size:
            raise SelectionError("cannot compare tables of different sizes")
        changed = 0
        for slot in range(self._table_size):
            mine = str(self._backends[self._table[slot]])
            theirs = str(other._backends[other._table[slot]])
            if mine != theirs:
                changed += 1
        return changed / self._table_size


def flow_hash_key(flow_key) -> str:
    """Canonical string form of a flow key for consistent hashing."""
    return (
        f"{flow_key.src_address}|{flow_key.src_port}|"
        f"{flow_key.dst_address}|{flow_key.dst_port}"
    )
