"""Load-balancer flow table (flow steering state).

Once a server has accepted a connection, "the role of the load balancer
... simply becomes to monitor TCP flows, to ensure that data packets
belonging to the same flow are delivered to the same application
instance as the one which accepted the first packet of the flow"
(paper §I-A).  The flow table is that per-flow steering state: it maps a
flow key to the accepting server, is populated when the SYN-ACK's SR
header announces the accepting server, and is consulted for every
subsequent packet of the flow.

Entries are garbage-collected by an idle timeout (real deployments do
the same since the return path may bypass the load balancer, so it never
reliably sees connection teardown), and the table can optionally enforce
a capacity with oldest-idle eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import FlowTableError
from repro.net.addressing import IPv6Address
from repro.net.packet import FlowKey


@dataclass(slots=True)
class FlowEntry:
    """Steering state for one flow (slotted: one per tracked flow)."""

    flow_key: FlowKey
    server: IPv6Address
    created_at: float
    last_seen: float
    packets_steered: int = 0


@dataclass
class FlowTableStats:
    """Aggregate flow-table counters."""

    entries_created: int = 0
    entries_expired: int = 0
    entries_evicted: int = 0
    lookup_hits: int = 0
    lookup_misses: int = 0


class FlowTable:
    """Per-flow steering table with idle-timeout expiry.

    Parameters
    ----------
    idle_timeout:
        Seconds of inactivity after which an entry may be reclaimed.
    capacity:
        Optional maximum number of entries; when full, the least
        recently used entry is evicted to make room.
    """

    def __init__(
        self,
        idle_timeout: float = 60.0,
        capacity: Optional[int] = None,
    ) -> None:
        if idle_timeout <= 0:
            raise FlowTableError(f"idle timeout must be positive, got {idle_timeout!r}")
        if capacity is not None and capacity <= 0:
            raise FlowTableError(f"capacity must be positive, got {capacity!r}")
        self.idle_timeout = idle_timeout
        self.capacity = capacity
        self._entries: Dict[FlowKey, FlowEntry] = {}
        # Time-bucketed expiry index: keys are filed under the bucket of
        # the last_seen they had when filed, and re-filed lazily — a
        # steer refreshes last_seen without moving the key, and the
        # periodic sweep re-files still-fresh keys it encounters.  The
        # sweep therefore only visits buckets old enough to *possibly*
        # hold expired entries instead of the whole table (the per-entry
        # staleness predicate is unchanged, so expiry results are
        # identical to the full-dict scan this replaced).
        self._bucket_width = idle_timeout / 8.0
        self._buckets: Dict[int, List[FlowKey]] = {}
        self.stats = FlowTableStats()

    def _file_key(self, flow_key: FlowKey, time: float) -> None:
        """File ``flow_key`` under the expiry bucket covering ``time``."""
        index = int(time / self._bucket_width)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = []
        bucket.append(flow_key)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def learn(self, flow_key: FlowKey, server: IPv6Address, now: float) -> FlowEntry:
        """Record that ``server`` accepted ``flow_key``.

        Re-learning an existing flow updates the server (the latest
        acceptance wins, which covers SYN retransmissions that may land
        on a different server).
        """
        entry = self._entries.get(flow_key)
        if entry is None:
            if self.capacity is not None and len(self._entries) >= self.capacity:
                self._evict_lru()
            entry = FlowEntry(
                flow_key=flow_key, server=server, created_at=now, last_seen=now
            )
            self._entries[flow_key] = entry
            self._file_key(flow_key, now)
            self.stats.entries_created += 1
        else:
            entry.server = server
            entry.last_seen = now
        return entry

    def remove(self, flow_key: FlowKey) -> bool:
        """Forget a flow; returns whether an entry existed."""
        return self._entries.pop(flow_key, None) is not None

    def _evict_lru(self) -> None:
        lru_key = min(self._entries, key=lambda key: self._entries[key].last_seen)
        del self._entries[lru_key]
        self.stats.entries_evicted += 1

    def expire_idle(self, now: float) -> int:
        """Drop entries idle for longer than the timeout; returns the count.

        Scans only the expiry buckets whose time range lies at or before
        ``now - idle_timeout`` — any entry filed later was seen too
        recently to have expired.  Keys found fresh (their ``last_seen``
        was refreshed since filing) are re-filed under their current
        bucket; keys whose entry is gone (removed or evicted) are simply
        dropped from the index.
        """
        limit = now - self.idle_timeout
        buckets = self._buckets
        width = self._bucket_width
        ripe = [index for index in buckets if index * width <= limit]
        expired = 0
        entries = self._entries
        idle_timeout = self.idle_timeout
        for index in ripe:
            for key in buckets.pop(index):
                entry = entries.get(key)
                if entry is None:
                    continue
                if now - entry.last_seen > idle_timeout:
                    del entries[key]
                    expired += 1
                else:
                    self._file_key(key, entry.last_seen)
        self.stats.entries_expired += expired
        return expired

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def steer(self, flow_key: FlowKey, now: float) -> Optional[IPv6Address]:
        """The server this flow is pinned to, refreshing its idle timer."""
        entry = self._entries.get(flow_key)
        if entry is None:
            self.stats.lookup_misses += 1
            return None
        entry.last_seen = now
        entry.packets_steered += 1
        self.stats.lookup_hits += 1
        return entry.server

    def peek(self, flow_key: FlowKey) -> Optional[FlowEntry]:
        """The entry for ``flow_key`` without refreshing the idle timer."""
        return self._entries.get(flow_key)

    def entries(self) -> Tuple[FlowEntry, ...]:
        """All current entries (copy of references)."""
        return tuple(self._entries.values())

    def server_distribution(self) -> Dict[IPv6Address, int]:
        """Number of live flows pinned to each server (fairness checks)."""
        distribution: Dict[IPv6Address, int] = {}
        for entry in self._entries.values():
            distribution[entry.server] = distribution.get(entry.server, 0) + 1
        return distribution

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, flow_key: FlowKey) -> bool:
        return flow_key in self._entries

    def __repr__(self) -> str:
        return (
            f"FlowTable(entries={len(self._entries)}, "
            f"created={self.stats.entries_created}, "
            f"hits={self.stats.lookup_hits}, misses={self.stats.lookup_misses})"
        )
