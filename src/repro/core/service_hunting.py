"""Service Hunting: the in-network service-selection function.

Service Hunting (paper §II) is the SR behaviour a server's virtual
router applies to packets whose active segment is the server's SID:

* If two or more segments remain (``SegmentsLeft >= 2``), the router asks
  the local connection-acceptance policy whether the application instance
  wants the connection.  Accepting sets ``SegmentsLeft`` to 0 (the VIP,
  always the final segment, becomes active) and delivers the packet to
  the local application; refusing advances the SR list so the packet
  continues to the next candidate.
* If exactly one segment remains (``SegmentsLeft == 1``), the router
  *must* accept — the penultimate candidate guarantees satisfiability.

The :class:`ServiceHuntingProcessor` implements that decision table.  It
is deliberately independent of the packet-forwarding machinery so that
the algorithmic behaviour (Algorithms 1 and 2) can be unit-tested and
reasoned about in isolation; the server's virtual router calls it and
then forwards or delivers the packet according to the returned decision.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.agent import ApplicationAgent
from repro.core.policies import ConnectionAcceptancePolicy
from repro.errors import SegmentRoutingError
from repro.net.packet import Packet


class HuntingDecision(enum.Enum):
    """Outcome of processing a Service Hunting packet."""

    #: Deliver the packet to the local application instance.
    ACCEPT = "accept"
    #: Forward the packet to the next candidate in the SR list.
    FORWARD = "forward"
    #: The packet is not a Service Hunting packet for this node.
    NOT_APPLICABLE = "not-applicable"


@dataclass
class ServiceHuntingStats:
    """Counters kept by one Service Hunting processor (one server)."""

    offers_received: int = 0
    accepted_by_choice: int = 0
    accepted_forced: int = 0
    refused: int = 0
    #: Optional offers refused because the server was draining (the
    #: control plane's graceful scale-down), not because the acceptance
    #: policy said no.
    refused_draining: int = 0

    @property
    def accepted_total(self) -> int:
        """Connections this server ended up accepting."""
        return self.accepted_by_choice + self.accepted_forced

    @property
    def optional_acceptance_ratio(self) -> float:
        """Acceptance ratio over optional offers only (what SRdyn targets)."""
        optional = self.accepted_by_choice + self.refused
        if optional == 0:
            return 0.0
        return self.accepted_by_choice / optional


class ServiceHuntingProcessor:
    """Per-server accept-or-forward decision engine.

    Parameters
    ----------
    policy:
        The local connection-acceptance policy (one instance per server).
    agent:
        The application agent exposing the instance's load state.
    """

    def __init__(
        self, policy: ConnectionAcceptancePolicy, agent: ApplicationAgent
    ) -> None:
        self.policy = policy
        self.agent = agent
        #: Graceful-drain switch (set by the control plane): a draining
        #: server refuses every *optional* offer without consulting the
        #: acceptance policy, so in-flight SYNs that still carry it in
        #: their candidate list pass it by.  Forced accepts (last
        #: candidate) still land — satisfiability beats the drain.
        self.draining = False
        self.stats = ServiceHuntingStats()

    def process(self, packet: Packet) -> HuntingDecision:
        """Apply the Service Hunting decision table to ``packet``.

        On ``ACCEPT`` the packet's ``SegmentsLeft`` is set to 0 (the VIP
        becomes the destination) so the caller can hand it to the local
        application.  On ``FORWARD`` the SR list is advanced so the
        packet's destination is the next candidate.
        """
        srh = packet.srh
        if srh is None or srh.exhausted:
            return HuntingDecision.NOT_APPLICABLE

        self.stats.offers_received += 1

        if srh.segments_left == 1:
            # Penultimate segment: the connection must be accepted to
            # guarantee satisfiability (paper §II-A).
            packet.set_segments_left(0)
            self.stats.accepted_forced += 1
            self.policy.notify_forced_accept(self.agent)
            return HuntingDecision.ACCEPT

        # Two or more candidates remain: the decision is optional and
        # strictly local.
        if self.draining:
            packet.advance_srh()
            self.stats.refused += 1
            self.stats.refused_draining += 1
            return HuntingDecision.FORWARD
        if self.policy.should_accept(self.agent):
            packet.set_segments_left(0)
            self.stats.accepted_by_choice += 1
            return HuntingDecision.ACCEPT

        packet.advance_srh()
        self.stats.refused += 1
        return HuntingDecision.FORWARD

    def reset(self) -> None:
        """Clear counters and policy state (between experiment runs)."""
        self.stats = ServiceHuntingStats()
        self.policy.reset()

    def __repr__(self) -> str:
        return (
            f"ServiceHuntingProcessor(policy={self.policy.name!r}, "
            f"accepted={self.stats.accepted_total}, refused={self.stats.refused})"
        )


def build_steering_reply_path(
    server_address, load_balancer_address, client_address
):
    """Segment list (traversal order) for the connection-acceptance packet.

    The accepting server signals its identity to the load balancer "by
    inserting an SR header containing its own IP address, and the IP
    address of the load-balancer, in the connection acceptance packet"
    (paper §II-A).  The resulting traversal is
    ``server -> load balancer -> client``; the first segment records who
    accepted, the second routes the packet through the load balancer so
    it can install the steering entry, and the client is the final
    destination.
    """
    if load_balancer_address == client_address:
        raise SegmentRoutingError(
            "load balancer and client addresses must differ in the reply path"
        )
    return [server_address, load_balancer_address, client_address]
