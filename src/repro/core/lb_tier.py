"""Multi-instance SRLB tier behind a real (per-packet) ECMP edge.

The paper's resiliency argument (§I-A, §II-B) is that SRLB instances
need no shared flow state: candidate selection can be made flow-stable
(consistent hashing), and the connection-acceptance SYN-ACK carries the
accepting server *in-band*, in its SR header.  Several instances can
therefore serve the same VIPs behind an ECMP edge, and the tier survives
instance churn without any state-synchronisation protocol.

:mod:`repro.core.fleet` models the *idealised* version of that tier: an
ECMP router that understands load-balancer semantics and always hands
both directions of a flow to the same instance.  This module models the
*realistic* one, built on :class:`repro.net.ecmp.EcmpEdgeRouter` — a
plain edge router that hashes every packet independently — and shows the
two mechanisms that make SRLB work anyway:

* **Cross-instance SYN-ACK learning.**  The SYN-ACK hashes on the
  reverse 5-tuple, so it generally reaches a *different* instance than
  the SYN did.  The receiving instance recovers the flow binding from
  the SR header (no state needed) and relays the packet one hop to the
  instance that owns the flow's forward direction, which installs the
  steering entry and forwards the SYN-ACK to the client.
* **Stateless steering recovery.**  When an instance receives mid-flow
  packets for a flow it has no state for (its owner crashed, or the
  ECMP mapping moved the flow), a flow-stable selector lets it re-derive
  the candidate chain and re-send the packet *hunting* through the
  candidates; the server actually holding the connection consumes it.
  With random selection there is nothing to re-derive and the flow is
  reset — which is exactly the difference the resilience experiment
  (:mod:`repro.experiments.resilience_experiment`) measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.candidate_selection import CandidateSelector
from repro.core.loadbalancer import LoadBalancerNode
from repro.errors import LoadBalancerError
from repro.net.addressing import IPv6Address
from repro.net.ecmp import EcmpEdgeRouter
from repro.net.packet import FlowKey, Packet
from repro.net.srh import SegmentRoutingHeader
from repro.sim.engine import Simulator

#: Builds one candidate selector per tier instance.
SelectorFactory = Callable[[], CandidateSelector]


@dataclass
class TierInstanceStats:
    """Tier-specific counters kept by one instance (besides its
    :class:`~repro.core.loadbalancer.LoadBalancerStats`)."""

    #: Steering SYN-ACKs that arrived here but belonged to another
    #: instance's forward direction, and were relayed to it.
    signals_relayed_out: int = 0
    #: Steering SYN-ACKs handled locally (this instance owns the flow).
    signals_handled_locally: int = 0
    #: Steering misses answered with a candidate-chain recovery hunt
    #: instead of a RST (flow-stable selector only).
    recovery_hunts: int = 0
    #: Packets that arrived after this instance was killed (dropped).
    dropped_while_dead: int = 0


class TierLoadBalancer(LoadBalancerNode):
    """One SRLB instance inside a :class:`LoadBalancerTier`.

    Behaves exactly like a stand-alone
    :class:`~repro.core.loadbalancer.LoadBalancerNode` except for the two
    tier mechanisms described in the module docstring, plus a hard
    ``alive`` switch used to simulate instance failure.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, advertise_vips=False, **kwargs)
        self.tier: Optional["LoadBalancerTier"] = None
        self.alive = True
        self.tier_stats = TierInstanceStats()

    # ------------------------------------------------------------------
    # failure model
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        if not self.alive:
            # A crashed instance silently eats whatever was in flight to
            # it; there is no software left to answer.
            self.tier_stats.dropped_while_dead += 1
            return
        super().handle_packet(packet)

    # ------------------------------------------------------------------
    # cross-instance SYN-ACK learning
    # ------------------------------------------------------------------
    def _handle_steering_signal(self, packet: Packet) -> None:
        if (
            packet.srh is not None
            and self.tier is not None
            and packet.dst in self._steering_aliases
            and not self.owns(packet.dst)
        ):
            # The packet reached us through the shared steering address:
            # the ECMP edge hashed the *reverse* tuple, so we may not be
            # the instance that will see the flow's forward packets.
            forward_key = packet.flow_key().reversed()
            owner = self.tier.owner_of(forward_key)
            if owner is not None and owner is not self:
                # Relay one hop to the owner: rewrite the active segment
                # from the shared steering address to the owner's own
                # address (preserving the dst == active-segment packet
                # invariant); the rest of the SR header still carries
                # everything the owner needs to learn the binding.
                self.tier_stats.signals_relayed_out += 1
                packet.srh.segments[packet.srh.segments_left] = (
                    owner.primary_address
                )
                packet.dst = owner.primary_address
                self.send(packet)
                return
        if packet.srh is not None:
            self.tier_stats.signals_handled_locally += 1
        super()._handle_steering_signal(packet)

    # ------------------------------------------------------------------
    # stateless steering recovery
    # ------------------------------------------------------------------
    def _handle_steering_miss(self, packet: Packet, vip: IPv6Address) -> None:
        if self.selector.flow_stable:
            # Re-derive the flow's (stable) candidate chain and hunt for
            # the server holding the connection: the accepting server was
            # chosen from this same chain, so the packet finds it without
            # any instance having kept state.
            candidates = self.selector.select(packet.flow_key(), self._backends[vip])
            srh = SegmentRoutingHeader.from_traversal(list(candidates) + [vip])
            packet.attach_srh(srh)
            self.tier_stats.recovery_hunts += 1
            self.send(packet)
            return
        super()._handle_steering_miss(packet, vip)


@dataclass
class TierStats:
    """Aggregate churn bookkeeping kept by the tier."""

    instances_killed: int = 0
    instances_added: int = 0
    #: Flow-table entries lost to instance kills (steering state that
    #: must be recovered in-band or results in broken flows).
    flow_entries_lost: int = 0


class LoadBalancerTier:
    """N SRLB instances sharing VIPs behind a per-packet ECMP edge.

    The tier is a drop-in replacement for a single
    :class:`~repro.core.loadbalancer.LoadBalancerNode` from both sides:
    clients address the VIPs (advertised by the edge router), and servers
    address their steering SYN-ACKs to the shared steering address.

    Parameters
    ----------
    simulator:
        Shared simulation engine.
    steering_address:
        The tier's shared address: what servers are configured with, and
        what the edge router owns on the fabric.
    instance_addresses:
        One address per initial SRLB instance.
    selector_factory:
        Builds a fresh candidate selector per instance.  Flow-stable
        selectors (consistent hashing) enable stateless steering
        recovery; random selectors leave remapped flows to be reset.
    flow_idle_timeout:
        Idle timeout of each instance's flow table, in seconds.
    hash_scheme:
        ECMP mapping scheme of the edge router (``"rendezvous"`` or
        ``"modulo"``), see :class:`repro.net.ecmp.EcmpEdgeRouter`.
    """

    def __init__(
        self,
        simulator: Simulator,
        steering_address: IPv6Address,
        instance_addresses: Sequence[IPv6Address],
        selector_factory: SelectorFactory,
        flow_idle_timeout: float = 60.0,
        hash_scheme: str = "rendezvous",
        name_prefix: str = "lb",
    ) -> None:
        if not instance_addresses:
            raise LoadBalancerError("a tier needs at least one instance address")
        self.simulator = simulator
        self.selector_factory = selector_factory
        self.flow_idle_timeout = flow_idle_timeout
        self.name_prefix = name_prefix
        self.router = EcmpEdgeRouter(
            simulator, f"{name_prefix}-ecmp-edge", steering_address, hash_scheme
        )
        self.instances: List[TierLoadBalancer] = []
        self.stats = TierStats()
        self._vips: Dict[IPv6Address, List[IPv6Address]] = {}
        self._next_index = 0
        self._fabric = None
        for address in instance_addresses:
            self.add_instance(address)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def steering_address(self) -> IPv6Address:
        """The shared address servers route their steering replies to."""
        return self.router.steering_address

    def register_vip(self, vip: IPv6Address, servers: Sequence[IPv6Address]) -> None:
        """Register a VIP and its server pool tier-wide."""
        self._vips[vip] = list(servers)
        self.router.register_vip(vip)
        for instance in self.instances:
            instance.register_vip(vip, servers)

    def add_backend(self, vip: IPv6Address, server: IPv6Address) -> None:
        """Add a server to a VIP pool on every instance (elastic scale-up).

        Flow-stable selectors rebuild their Maglev tables from the new
        pool on the next selection, and the edge router's memoized
        flow-to-instance decisions are dropped — the control plane's
        "reprogram the data plane" step, applied tier-wide.
        """
        pool = self._vips.get(vip)
        if pool is None:
            raise LoadBalancerError(f"VIP {vip} is not registered on the tier")
        if server not in pool:
            pool.append(server)
        for instance in self.instances:
            instance.add_backend(vip, server)
        self.router.invalidate_next_hop_cache()

    def remove_backend(self, vip: IPv6Address, server: IPv6Address) -> bool:
        """Remove a server from a VIP pool on every instance (drain).

        Existing flow-table entries keep steering to the server — a
        graceful drain relies on exactly that — but no new candidate
        list (or stateless recovery hunt) will name it.
        """
        pool = self._vips.get(vip)
        if pool is None:
            raise LoadBalancerError(f"VIP {vip} is not registered on the tier")
        if server not in pool:
            return False
        if len(pool) == 1:
            # Validate before touching any pool: a rejected removal must
            # leave the tier, every instance and the edge cache intact.
            raise LoadBalancerError(
                f"removing {server} would leave VIP {vip} with no servers"
            )
        for instance in self.instances:
            # Same pre-flight check against each instance's own pool:
            # they normally mirror the tier's, but the per-instance API
            # is public, and a mid-loop refusal from a diverged instance
            # must not leave the tier half-mutated.
            instance_pool = instance.backends_for(vip)
            if server in instance_pool and len(instance_pool) == 1:
                raise LoadBalancerError(
                    f"removing {server} would leave VIP {vip} with no "
                    f"servers on instance {instance.name!r}"
                )
        pool.remove(server)
        removed = False
        for instance in self.instances:
            removed = instance.remove_backend(vip, server) or removed
        self.router.invalidate_next_hop_cache()
        return removed

    def attach(self, fabric) -> None:
        """Attach the edge router and every instance to the fabric.

        Only the edge router binds the VIPs and the steering address;
        instances are reached through it (or directly, by address, for
        the cross-instance relay).
        """
        self._fabric = fabric
        self.router.attach(fabric)
        for instance in self.instances:
            instance.attach(fabric)

    # ------------------------------------------------------------------
    # membership / churn
    # ------------------------------------------------------------------
    def add_instance(self, address: IPv6Address) -> TierLoadBalancer:
        """Bring a new SRLB instance into rotation (also used mid-run)."""
        instance = TierLoadBalancer(
            simulator=self.simulator,
            name=f"{self.name_prefix}-{self._next_index}",
            address=address,
            selector=self.selector_factory(),
            flow_idle_timeout=self.flow_idle_timeout,
        )
        self._next_index += 1
        instance.tier = self
        instance.add_steering_alias(self.steering_address)
        for vip, servers in self._vips.items():
            instance.register_vip(vip, servers)
        if self._fabric is not None:
            instance.attach(self._fabric)
        self.instances.append(instance)
        self.router.add_next_hop(instance)
        if self._fabric is not None:
            # Only post-attach additions count as churn; the initial
            # instances are part of the tier's construction.
            self.stats.instances_added += 1
        return instance

    def kill_instance(self, name: str) -> TierLoadBalancer:
        """Crash an instance: its flow state is lost, the edge remaps.

        The instance stops processing packets immediately (in-flight
        packets addressed to it are eaten) and the ECMP edge stops
        hashing new packets to it.
        """
        instance = self.instance(name)
        if not instance.alive:
            raise LoadBalancerError(f"instance {name!r} is already dead")
        alive_after = [lb for lb in self.alive_instances() if lb.name != name]
        if not alive_after:
            raise LoadBalancerError("cannot kill the last alive instance")
        instance.alive = False
        instance.stop_housekeeping()
        self.stats.instances_killed += 1
        self.stats.flow_entries_lost += len(instance.flow_table)
        self.router.remove_next_hop(name)
        return instance

    def instance(self, name: str) -> TierLoadBalancer:
        """Look up an instance (alive or dead) by name."""
        for instance in self.instances:
            if instance.name == name:
                return instance
        raise LoadBalancerError(f"unknown tier instance {name!r}")

    def alive_instances(self) -> List[TierLoadBalancer]:
        """Instances currently in rotation."""
        return [instance for instance in self.instances if instance.alive]

    def owner_of(self, forward_key: FlowKey) -> Optional[TierLoadBalancer]:
        """The instance the flow's forward direction currently hashes to."""
        owner = self.router.owner_of_forward_flow(forward_key)
        if owner is None:
            return None
        assert isinstance(owner, TierLoadBalancer)
        return owner

    # ------------------------------------------------------------------
    # tier-wide introspection
    # ------------------------------------------------------------------
    def total_flows(self) -> int:
        """Live flow-table entries across alive instances."""
        return sum(len(instance.flow_table) for instance in self.alive_instances())

    def steering_misses(self) -> int:
        """Steering misses across all instances (including dead ones)."""
        return sum(instance.stats.steering_misses for instance in self.instances)

    def recovery_hunts(self) -> int:
        """Recovery hunts launched across all instances."""
        return sum(instance.tier_stats.recovery_hunts for instance in self.instances)

    def signals_relayed(self) -> int:
        """Cross-instance SYN-ACK relays across all instances."""
        return sum(
            instance.tier_stats.signals_relayed_out for instance in self.instances
        )

    def acceptances_learned(self) -> int:
        """Flow bindings learned across all instances."""
        return sum(instance.stats.acceptances_learned for instance in self.instances)

    def acceptances_per_server(self) -> Dict[IPv6Address, int]:
        """Aggregated per-server acceptance counts across the tier."""
        totals: Dict[IPv6Address, int] = {}
        for instance in self.instances:
            for server, count in instance.stats.acceptances_per_server.items():
                totals[server] = totals.get(server, 0) + count
        return totals

    def __repr__(self) -> str:
        return (
            f"LoadBalancerTier(instances={len(self.instances)}, "
            f"alive={len(self.alive_instances())}, "
            f"scheme={self.router.hash_scheme!r}, vips={len(self._vips)})"
        )
