"""Scaling out the load balancer: ECMP fleet of SRLB instances.

The paper's related-work section discusses Maglev and Ananta, which
"aim at being able to scale the number of load-balancer instances at
will, and make use of ECMP to distribute flows between those instances"
together with consistent hashing so that any instance maps a flow to the
same server.  SRLB composes naturally with that design: the Service
Hunting decision is made by the *servers*, so load-balancer instances
need no shared state beyond their (identical) candidate-selection
function.

This module provides that scale-out path:

* :class:`ECMPRouterNode` — the data-center edge router that owns the
  VIPs, hashes each flow's 4-tuple onto one of the SRLB instances
  (using a Maglev table, so instance changes remap a minimal fraction of
  flows), and forwards packets to the chosen instance.  Steering
  signals (SYN-ACKs) sent by servers to the fleet's shared *anycast*
  address are routed to the same instance as the flow's forward
  direction, so each instance sees both directions of the flows it owns.
* :class:`LoadBalancerFleet` — a convenience wrapper that builds N
  :class:`~repro.core.loadbalancer.LoadBalancerNode` instances with a
  shared VIP/backend configuration and wires them behind one ECMP
  router.

Using :class:`~repro.core.candidate_selection.ConsistentHashCandidateSelector`
for every instance makes candidate lists flow-stable across the fleet,
which is the property Maglev-style deployments rely on; the ablation
test suite verifies both the per-flow consistency and the bounded
disruption when an instance is added or removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.candidate_selection import CandidateSelector
from repro.core.consistent_hash import MaglevTable, flow_hash_key
from repro.core.loadbalancer import LoadBalancerNode
from repro.errors import LoadBalancerError
from repro.net.addressing import IPv6Address
from repro.net.channel import DeliveryChannel, InProcessChannel
from repro.net.packet import FlowKey, Packet
from repro.net.router import NetworkNode
from repro.sim.engine import Simulator


@dataclass
class ECMPStats:
    """Counters kept by the ECMP router."""

    packets_forwarded: int = 0
    steering_signals_forwarded: int = 0
    packets_dropped_no_instance: int = 0
    per_instance: Dict[str, int] = field(default_factory=dict)


class ECMPRouterNode(NetworkNode):
    """Edge router spreading flows over a fleet of SRLB instances.

    Parameters
    ----------
    simulator:
        Shared simulation engine.
    name:
        Node name.
    anycast_address:
        The fleet's shared address.  Servers send their steering SYN-ACKs
        to this address; the router forwards each to the instance owning
        the flow.
    table_size:
        Size of the Maglev table used for the flow-to-instance mapping.
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        anycast_address: IPv6Address,
        table_size: int = 65_537,
    ) -> None:
        super().__init__(simulator, name)
        self.add_address(anycast_address)
        self.anycast_address = anycast_address
        self._table_size = table_size
        self._instances: List[LoadBalancerNode] = []
        self._vips: List[IPv6Address] = []
        self._table: Optional[MaglevTable[str]] = None
        #: Interned per-instance event labels (one f-string per member,
        #: not per forwarded packet).
        self._forward_labels: Dict[str, str] = {}
        #: The delivery channel the fleet hop goes through (defaults to
        #: in-process scheduling, bit-identical to direct ``receive``).
        self.channel: DeliveryChannel = InProcessChannel(simulator)
        self.stats = ECMPStats()

    # ------------------------------------------------------------------
    # fleet management
    # ------------------------------------------------------------------
    def add_instance(self, instance: LoadBalancerNode) -> None:
        """Add an SRLB instance to the ECMP group."""
        if any(existing.name == instance.name for existing in self._instances):
            raise LoadBalancerError(f"instance {instance.name!r} is already in the fleet")
        self._instances.append(instance)
        self._rebuild_table()

    def remove_instance(self, name: str) -> bool:
        """Remove an instance (e.g. failure or drain); flows are remapped."""
        before = len(self._instances)
        self._instances = [
            instance for instance in self._instances if instance.name != name
        ]
        if not self._instances:
            raise LoadBalancerError("cannot remove the last load-balancer instance")
        if len(self._instances) != before:
            self._rebuild_table()
            return True
        return False

    def register_vip(self, vip: IPv6Address) -> None:
        """Advertise a VIP at the edge (exact binding on this router)."""
        if vip not in self._vips:
            self._vips.append(vip)
            if self.fabric is not None:
                self.fabric.bind_address(vip, self)

    def attach(self, fabric) -> None:
        """Attach to the fabric, claiming the registered VIPs."""
        super().attach(fabric)
        for vip in self._vips:
            fabric.bind_address(vip, self)

    @property
    def instances(self) -> List[LoadBalancerNode]:
        """The current fleet members (copy)."""
        return list(self._instances)

    def _rebuild_table(self) -> None:
        self._table = MaglevTable(
            [instance.name for instance in self._instances],
            table_size=self._table_size,
        )

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def instance_for(self, flow_key: FlowKey) -> LoadBalancerNode:
        """The fleet member owning ``flow_key`` (forward direction)."""
        if self._table is None or not self._instances:
            raise LoadBalancerError("the ECMP fleet has no instances")
        name = self._table.lookup(flow_hash_key(flow_key))
        for instance in self._instances:
            if instance.name == name:
                return instance
        raise LoadBalancerError(f"instance {name!r} disappeared from the fleet")

    def handle_packet(self, packet: Packet) -> None:
        if packet.dst in self._vips:
            # Client-to-VIP traffic: hash the forward flow key.
            forward_key = packet.flow_key()
            self._forward(packet, forward_key, steering=False)
            return
        if packet.dst == self.anycast_address:
            # Steering signal from a server (SYN-ACK travelling
            # server -> fleet -> client): the owning instance is the one
            # the *forward* direction hashes to.
            forward_key = packet.flow_key().reversed()
            self._forward(packet, forward_key, steering=True)
            return
        self.stats.packets_dropped_no_instance += 1

    def _forward(self, packet: Packet, flow_key: FlowKey, steering: bool) -> None:
        try:
            instance = self.instance_for(flow_key)
        except LoadBalancerError:
            self.stats.packets_dropped_no_instance += 1
            return
        if steering:
            self.stats.steering_signals_forwarded += 1
        else:
            self.stats.packets_forwarded += 1
        name = instance.name
        self.stats.per_instance[name] = self.stats.per_instance.get(name, 0) + 1
        label = self._forward_labels.get(name)
        if label is None:
            label = self._forward_labels[name] = f"ecmp->{name}"
        # Hand the packet to the chosen instance after one switching hop.
        latency = self.fabric.latency if self.fabric is not None else 0.0
        self.channel.deliver(instance, packet, latency, label)

    def instance_share(self) -> Dict[str, float]:
        """Fraction of forwarded packets handled by each instance."""
        total = sum(self.stats.per_instance.values())
        if total == 0:
            return {}
        return {
            name: count / total for name, count in self.stats.per_instance.items()
        }


class LoadBalancerFleet:
    """N SRLB instances sharing a VIP/backend configuration behind ECMP.

    The fleet owns the anycast address that servers use as the "load
    balancer" segment of their steering replies, so the whole fleet is a
    drop-in replacement for a single :class:`LoadBalancerNode` from the
    servers' point of view.

    Parameters
    ----------
    simulator:
        Shared simulation engine.
    anycast_address:
        Shared fleet address (what servers are configured with).
    instance_addresses:
        One address per SRLB instance.
    selector_factory:
        Builds a fresh candidate selector per instance.  Use a
        consistent-hashing selector to get flow-stable candidates across
        the fleet.
    """

    def __init__(
        self,
        simulator: Simulator,
        anycast_address: IPv6Address,
        instance_addresses: Sequence[IPv6Address],
        selector_factory,
        flow_idle_timeout: float = 60.0,
    ) -> None:
        if not instance_addresses:
            raise LoadBalancerError("a fleet needs at least one instance address")
        self.simulator = simulator
        self.router = ECMPRouterNode(simulator, "ecmp-router", anycast_address)
        self.instances: List[LoadBalancerNode] = []
        for index, address in enumerate(instance_addresses):
            selector: CandidateSelector = selector_factory()
            instance = LoadBalancerNode(
                simulator=simulator,
                name=f"lb-{index}",
                address=address,
                selector=selector,
                flow_idle_timeout=flow_idle_timeout,
                advertise_vips=False,
            )
            instance.add_steering_alias(anycast_address)
            self.instances.append(instance)
            self.router.add_instance(instance)

    @property
    def anycast_address(self) -> IPv6Address:
        """The address servers route their steering replies to."""
        return self.router.anycast_address

    def register_vip(self, vip: IPv6Address, servers: Sequence[IPv6Address]) -> None:
        """Register a VIP and its server pool on every instance."""
        self.router.register_vip(vip)
        for instance in self.instances:
            instance.register_vip(vip, servers)

    def add_backend(self, vip: IPv6Address, server: IPv6Address) -> None:
        """Add a server to a VIP pool fleet-wide (elastic scale-up)."""
        for instance in self.instances:
            instance.add_backend(vip, server)

    def remove_backend(self, vip: IPv6Address, server: IPv6Address) -> bool:
        """Remove a server from a VIP pool fleet-wide (graceful drain).

        Instances keep steering existing flows to the server through
        their flow tables; only *new* candidate lists stop naming it.
        """
        removed = False
        for instance in self.instances:
            removed = instance.remove_backend(vip, server) or removed
        return removed

    def attach(self, fabric) -> None:
        """Attach the router and every instance to the fabric.

        The instances do **not** bind the VIPs (the ECMP router owns
        them); they are reached only through the router.
        """
        self.router.attach(fabric)
        for instance in self.instances:
            instance.attach(fabric)

    def remove_instance(self, name: str) -> bool:
        """Take an instance out of rotation (its flow state is lost)."""
        return self.router.remove_instance(name)

    def total_flows(self) -> int:
        """Live flow-table entries across the fleet."""
        return sum(len(instance.flow_table) for instance in self.instances)

    def acceptances_per_server(self) -> Dict[IPv6Address, int]:
        """Aggregated per-server acceptance counts across the fleet."""
        totals: Dict[IPv6Address, int] = {}
        for instance in self.instances:
            for server, count in instance.stats.acceptances_per_server.items():
                totals[server] = totals.get(server, 0) + count
        return totals
