"""Connection-acceptance policies.

A connection-acceptance policy is the purely local decision function run
by a server's virtual router when a Service Hunting packet arrives with
more than one remaining candidate: *should this application instance
accept the new connection, or pass it to the next candidate?*

The paper defines two example policies (§III):

* :class:`StaticThresholdPolicy` (``SRc``) — accept iff fewer than ``c``
  worker threads are busy.  The second (last) candidate always accepts,
  which is enforced by the Service Hunting processor, not by the policy.
* :class:`DynamicThresholdPolicy` (``SRdyn``) — adapt ``c`` so that the
  local acceptance ratio stays near 1/2, measured over a fixed window of
  decisions (Algorithm 2).

The framework is explicitly policy-agnostic ("SRLB ... nor imposes any
load balancing policy"), so policies are plug-ins: subclass
:class:`ConnectionAcceptancePolicy`, or register a factory with
:func:`register_policy` to make it available by name to the experiment
harness and the command-line examples.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.agent import ApplicationAgent
from repro.errors import PolicyError


class ConnectionAcceptancePolicy(abc.ABC):
    """Decides whether the local application instance accepts a new flow.

    One policy instance is attached to one server: policies may keep
    local state (the dynamic policy does), and that state must not be
    shared across servers — the whole point of SRLB is that decisions
    are strictly local.
    """

    #: Short name used in reports and figure legends.
    name: str = "policy"

    @abc.abstractmethod
    def should_accept(self, agent: ApplicationAgent) -> bool:
        """Return ``True`` to accept the connection locally.

        Called only at *optional* decision points (two or more candidates
        remaining).  The forced accept of the final candidate never
        reaches the policy.
        """

    def notify_forced_accept(self, agent: ApplicationAgent) -> None:
        """Hook invoked when this server is forced to accept (last candidate).

        The default implementation ignores it; policies that track their
        acceptance ratio may override.  The paper's SRdyn does *not*
        count forced accepts in its window, so it keeps the default.
        """

    def reset(self) -> None:
        """Reset internal state (between experiment runs)."""

    def describe(self) -> str:
        """One-line description used in experiment manifests."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class AlwaysAcceptPolicy(ConnectionAcceptancePolicy):
    """Accept every connection offered (equivalent to ``SRc`` with c = n+1).

    With this policy the first candidate in every SR list accepts, which
    degenerates to plain random load balancing.
    """

    name = "always-accept"

    def should_accept(self, agent: ApplicationAgent) -> bool:
        return True


class NeverAcceptPolicy(ConnectionAcceptancePolicy):
    """Refuse every optional offer (equivalent to ``SRc`` with c = 0).

    Every connection lands on the last candidate, which again degenerates
    to plain random load balancing (on the second choice).
    """

    name = "never-accept"

    def should_accept(self, agent: ApplicationAgent) -> bool:
        return False


class StaticThresholdPolicy(ConnectionAcceptancePolicy):
    """The paper's static policy ``SRc`` (Algorithm 1).

    Accept the connection iff fewer than ``threshold`` worker threads are
    busy.  ``threshold`` may range from 0 (never accept) to ``n + 1``
    (always accept), where ``n`` is the worker-pool size.
    """

    def __init__(self, threshold: int) -> None:
        if threshold < 0:
            raise PolicyError(f"SRc threshold must be >= 0, got {threshold!r}")
        self.threshold = threshold
        self.name = f"SR{threshold}"
        self.decisions = 0
        self.accepts = 0

    def should_accept(self, agent: ApplicationAgent) -> bool:
        busy = agent.busy_threads()
        self.decisions += 1
        accept = busy < self.threshold
        if accept:
            self.accepts += 1
        return accept

    def acceptance_ratio(self) -> float:
        """Fraction of optional offers accepted so far."""
        if self.decisions == 0:
            return 0.0
        return self.accepts / self.decisions

    def reset(self) -> None:
        self.decisions = 0
        self.accepts = 0

    def describe(self) -> str:
        return f"static threshold c={self.threshold}"


@dataclass
class DynamicPolicyState:
    """Observable state of a :class:`DynamicThresholdPolicy` (for tests/plots)."""

    threshold: int
    window_attempts: int
    window_accepted: int
    adjustments_up: int
    adjustments_down: int


class DynamicThresholdPolicy(ConnectionAcceptancePolicy):
    """The paper's dynamic policy ``SRdyn`` (Algorithm 2).

    Runs ``SRc`` with a threshold ``c`` that is re-evaluated every
    ``window_size`` optional decisions: if the fraction of accepted
    offers over the window is below ``low_watermark`` the threshold is
    incremented (the server is refusing too much), if it is above
    ``high_watermark`` the threshold is decremented.  The goal is to keep
    the local acceptance ratio near 1/2, which maximises the information
    carried by the accept/refuse choice.

    Parameters match Algorithm 2's defaults: initial ``c`` of 1, window
    of 50 queries, watermarks at 0.4 and 0.6.  ``max_threshold`` is the
    worker-pool size ``n``.
    """

    def __init__(
        self,
        initial_threshold: int = 1,
        window_size: int = 50,
        low_watermark: float = 0.4,
        high_watermark: float = 0.6,
        max_threshold: Optional[int] = None,
    ) -> None:
        if window_size <= 0:
            raise PolicyError(f"window size must be positive, got {window_size!r}")
        if not 0.0 <= low_watermark <= high_watermark <= 1.0:
            raise PolicyError(
                "watermarks must satisfy 0 <= low <= high <= 1, got "
                f"low={low_watermark!r} high={high_watermark!r}"
            )
        if initial_threshold < 0:
            raise PolicyError(
                f"initial threshold must be >= 0, got {initial_threshold!r}"
            )
        self.name = "SRdyn"
        self.initial_threshold = initial_threshold
        self.window_size = window_size
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark
        self.max_threshold = max_threshold
        self.threshold = initial_threshold
        self._attempts = 0
        self._accepted = 0
        self.adjustments_up = 0
        self.adjustments_down = 0
        self.threshold_history = [initial_threshold]

    def should_accept(self, agent: ApplicationAgent) -> bool:
        self._attempts += 1
        if self._attempts >= self.window_size:
            self._adapt(agent)
        busy = agent.busy_threads()
        accept = busy < self.threshold
        if accept:
            self._accepted += 1
        return accept

    def _adapt(self, agent: ApplicationAgent) -> None:
        """End of window: adjust the threshold, then reset the window."""
        ratio = self._accepted / self.window_size
        upper_bound = (
            self.max_threshold
            if self.max_threshold is not None
            else agent.total_threads()
        )
        if ratio < self.low_watermark and self.threshold < upper_bound:
            self.threshold += 1
            self.adjustments_up += 1
        elif ratio > self.high_watermark and self.threshold > 0:
            self.threshold -= 1
            self.adjustments_down += 1
        self.threshold_history.append(self.threshold)
        self._attempts = 0
        self._accepted = 0

    def state(self) -> DynamicPolicyState:
        """Snapshot of the adaptive state."""
        return DynamicPolicyState(
            threshold=self.threshold,
            window_attempts=self._attempts,
            window_accepted=self._accepted,
            adjustments_up=self.adjustments_up,
            adjustments_down=self.adjustments_down,
        )

    def reset(self) -> None:
        self.threshold = self.initial_threshold
        self._attempts = 0
        self._accepted = 0
        self.adjustments_up = 0
        self.adjustments_down = 0
        self.threshold_history = [self.initial_threshold]

    def describe(self) -> str:
        return (
            f"dynamic threshold (window={self.window_size}, "
            f"watermarks=[{self.low_watermark}, {self.high_watermark}])"
        )


class CPULoadPolicy(ConnectionAcceptancePolicy):
    """Coarse-grained policy using the agent's CPU-load estimate.

    The paper notes the agent "may make this decision based on
    coarse-grained information (e.g. CPU load, memory footprint)".  This
    policy accepts while the estimated runnable-workers-per-core stays
    below a limit; it is used in the ablation benchmarks to contrast
    coarse- and fine-grained signals.
    """

    def __init__(self, max_load_per_core: float = 2.0) -> None:
        if max_load_per_core <= 0:
            raise PolicyError(
                f"max load per core must be positive, got {max_load_per_core!r}"
            )
        self.max_load_per_core = max_load_per_core
        self.name = f"CPU<{max_load_per_core:g}"

    def should_accept(self, agent: ApplicationAgent) -> bool:
        return agent.estimated_cpu_load() < self.max_load_per_core

    def describe(self) -> str:
        return f"accept while runnable workers per core < {self.max_load_per_core:g}"


# ----------------------------------------------------------------------
# policy registry
# ----------------------------------------------------------------------
#: A policy factory builds a fresh policy instance for one server.
PolicyFactory = Callable[[], ConnectionAcceptancePolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Register a policy factory under a symbolic name.

    The experiment harness instantiates one policy per server from the
    factory, guaranteeing state isolation between servers.
    """
    if not name:
        raise PolicyError("policy name must be non-empty")
    _REGISTRY[name] = factory


def make_policy(name: str) -> ConnectionAcceptancePolicy:
    """Instantiate a registered policy by name.

    Built-in names: ``always``, ``never``, ``SR<k>`` for any integer k
    (e.g. ``SR4``), and ``SRdyn``.
    """
    if name in _REGISTRY:
        return _REGISTRY[name]()
    if name == "always":
        return AlwaysAcceptPolicy()
    if name == "never":
        return NeverAcceptPolicy()
    if name == "SRdyn":
        return DynamicThresholdPolicy()
    if name.startswith("SR"):
        suffix = name[2:]
        if suffix.isdigit():
            return StaticThresholdPolicy(int(suffix))
    raise PolicyError(f"unknown connection-acceptance policy {name!r}")


def registered_policies() -> Dict[str, PolicyFactory]:
    """Currently registered custom policies (copy)."""
    return dict(_REGISTRY)
