"""SRLB core: the paper's primary contribution.

This package contains the load balancer (Segment Routing header
insertion and flow steering), the Service Hunting decision engine run by
each server's virtual router, the connection-acceptance policies (the
paper's ``SRc`` and ``SRdyn`` plus trivial baselines), the candidate
selection schemes (random power-of-d-choices, round-robin, consistent
hashing) and the supporting flow table, application agent and Maglev
consistent-hashing table.
"""

from repro.core.agent import ApplicationAgent, StaticLoadView, make_agent
from repro.core.candidate_selection import (
    CandidateSelector,
    ConsistentHashCandidateSelector,
    RandomCandidateSelector,
    RoundRobinCandidateSelector,
    SingleRandomSelector,
    make_selector,
)
from repro.core.consistent_hash import MaglevTable, flow_hash_key
from repro.core.fleet import ECMPRouterNode, ECMPStats, LoadBalancerFleet
from repro.core.flow_table import FlowEntry, FlowTable, FlowTableStats
from repro.core.lb_tier import (
    LoadBalancerTier,
    TierInstanceStats,
    TierLoadBalancer,
    TierStats,
)
from repro.core.loadbalancer import LoadBalancerNode, LoadBalancerStats
from repro.core.policies import (
    AlwaysAcceptPolicy,
    ConnectionAcceptancePolicy,
    CPULoadPolicy,
    DynamicThresholdPolicy,
    NeverAcceptPolicy,
    StaticThresholdPolicy,
    make_policy,
    register_policy,
    registered_policies,
)
from repro.core.service_hunting import (
    HuntingDecision,
    ServiceHuntingProcessor,
    ServiceHuntingStats,
    build_steering_reply_path,
)

__all__ = [
    "ApplicationAgent",
    "StaticLoadView",
    "make_agent",
    "ConnectionAcceptancePolicy",
    "AlwaysAcceptPolicy",
    "NeverAcceptPolicy",
    "StaticThresholdPolicy",
    "DynamicThresholdPolicy",
    "CPULoadPolicy",
    "make_policy",
    "register_policy",
    "registered_policies",
    "CandidateSelector",
    "RandomCandidateSelector",
    "SingleRandomSelector",
    "RoundRobinCandidateSelector",
    "ConsistentHashCandidateSelector",
    "make_selector",
    "MaglevTable",
    "flow_hash_key",
    "FlowTable",
    "FlowEntry",
    "FlowTableStats",
    "LoadBalancerNode",
    "LoadBalancerStats",
    "ECMPRouterNode",
    "ECMPStats",
    "LoadBalancerFleet",
    "LoadBalancerTier",
    "TierLoadBalancer",
    "TierStats",
    "TierInstanceStats",
    "ServiceHuntingProcessor",
    "ServiceHuntingStats",
    "HuntingDecision",
    "build_steering_reply_path",
]
