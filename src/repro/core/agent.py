"""Application agent.

The paper assumes "an application agent, locally available to the virtual
router in each server, which in real time informs the virtual router as
to if the application instance wishes to accept queries" (§II-C).  On the
testbed this is a VPP plugin reading Apache's scoreboard shared memory.

Here the agent is a small adapter object: it reads the application's
scoreboard (or any object exposing the same minimal interface) and
presents the metrics the connection-acceptance policies need —
busy-thread count and pool size — plus optional coarse-grained signals
(a synthetic "CPU load" derived from the busy count) for policies that
want them.  Reads are free, matching the shared-memory design of the
paper ("incurs no system calls or synchronization").
"""

from __future__ import annotations

from typing import Protocol


class ScoreboardView(Protocol):
    """Minimal scoreboard interface the agent reads."""

    @property
    def busy_count(self) -> int:
        """Number of busy worker threads."""

    @property
    def num_slots(self) -> int:
        """Total number of worker threads."""


class ApplicationAgent:
    """Real-time view of one application instance's load state.

    Parameters
    ----------
    scoreboard:
        Shared-memory scoreboard of the local application instance.
    cpu_cores:
        Number of CPU cores of the hosting VM; used to derive the
        coarse-grained CPU-load estimate.
    """

    def __init__(self, scoreboard: ScoreboardView, cpu_cores: int = 2) -> None:
        self._scoreboard = scoreboard
        self._cpu_cores = max(1, cpu_cores)
        self.reads = 0

    # ------------------------------------------------------------------
    # fine-grained metrics (the paper's example: worker-thread states)
    # ------------------------------------------------------------------
    def busy_threads(self) -> int:
        """Number of worker threads currently serving a request."""
        self.reads += 1
        return self._scoreboard.busy_count

    def idle_threads(self) -> int:
        """Number of idle worker threads."""
        self.reads += 1
        return self._scoreboard.num_slots - self._scoreboard.busy_count

    def total_threads(self) -> int:
        """Size of the worker pool."""
        return self._scoreboard.num_slots

    # ------------------------------------------------------------------
    # coarse-grained metrics (the paper's alternative: OS-level signals)
    # ------------------------------------------------------------------
    def estimated_cpu_load(self) -> float:
        """Rough CPU-load estimate: runnable workers per core.

        A value above 1.0 means the cores are oversubscribed and requests
        are being slowed down by processor sharing.
        """
        self.reads += 1
        return self._scoreboard.busy_count / self._cpu_cores

    def utilization_fraction(self) -> float:
        """Busy fraction of the worker pool, in [0, 1]."""
        self.reads += 1
        if self._scoreboard.num_slots == 0:
            return 0.0
        return self._scoreboard.busy_count / self._scoreboard.num_slots

    def __repr__(self) -> str:
        return (
            f"ApplicationAgent(busy={self._scoreboard.busy_count}/"
            f"{self._scoreboard.num_slots})"
        )


class StaticLoadView:
    """A fixed scoreboard view, handy for unit tests and analytic checks."""

    def __init__(self, busy: int, slots: int) -> None:
        self._busy = busy
        self._slots = slots

    @property
    def busy_count(self) -> int:
        """Configured busy-thread count."""
        return self._busy

    @property
    def num_slots(self) -> int:
        """Configured pool size."""
        return self._slots

    def set_busy(self, busy: int) -> None:
        """Change the reported busy count."""
        self._busy = busy


def make_agent(scoreboard: ScoreboardView, cpu_cores: int = 2) -> ApplicationAgent:
    """Convenience factory mirroring the other subsystem factories."""
    return ApplicationAgent(scoreboard, cpu_cores)
