"""Analytic models used for calibration, validation and ablations.

Contains the Mitzenmacher power-of-d-choices (supermarket) model that
motivates SRLB's two-candidate SR lists, and classic M/M/c / M/M/c/K
queueing formulas used to estimate the testbed's saturation rate and to
cross-check the simulator.
"""

from repro.analysis.power_of_choices import (
    ChoicesComparison,
    compare_choices,
    improvement_over_random,
    marginal_benefit,
    mean_queue_length,
    mean_time_in_system,
    tail_probabilities,
)
from repro.analysis.queueing import (
    MMcMetrics,
    erlang_c,
    mmc_metrics,
    mmck_blocking_probability,
    saturation_rate,
)

__all__ = [
    "tail_probabilities",
    "mean_queue_length",
    "mean_time_in_system",
    "improvement_over_random",
    "compare_choices",
    "marginal_benefit",
    "ChoicesComparison",
    "erlang_c",
    "mmc_metrics",
    "MMcMetrics",
    "mmck_blocking_probability",
    "saturation_rate",
]
