"""Analytic power-of-d-choices (supermarket) model.

The paper's choice of *two* candidate servers per SR list is justified by
Mitzenmacher's power-of-two-choices result [14]: sending each arrival to
the least loaded of ``d`` randomly sampled queues shrinks the tail of the
queue-length distribution doubly exponentially in ``d``, and almost all
of the benefit is captured at ``d = 2``.

This module implements the classic mean-field (supermarket) model for
FCFS M/M/1 queues under the power of d choices:

* the equilibrium fraction of queues with at least ``i`` jobs is
  ``s_i = λ^((d^i − 1)/(d − 1))`` for d ≥ 2 and ``λ^i`` for d = 1,
* the expected time in system follows by summing the tail probabilities.

It is used by the A1/A4 ablation benchmarks to compare the simulated
improvement of SRLB's service hunting against the theoretical
prediction, and by tests as an independent cross-check of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ReproError

#: Truncation depth of the tail series (queue lengths beyond this are
#: negligible for the loads considered in the paper).
_MAX_QUEUE_LENGTH = 200
#: Tail probabilities below this are treated as zero.
_TAIL_EPSILON = 1e-15


def tail_probabilities(load: float, choices: int, max_length: int = _MAX_QUEUE_LENGTH) -> List[float]:
    """Equilibrium tail probabilities ``s_i = P(queue length >= i)``.

    Parameters
    ----------
    load:
        Normalized arrival rate λ per server (service rate 1), 0 < λ < 1.
    choices:
        Number of queues sampled per arrival (d >= 1).
    max_length:
        Truncation depth.
    """
    if not 0 < load < 1:
        raise ReproError(f"load must be in (0, 1), got {load!r}")
    if choices < 1:
        raise ReproError(f"choices must be >= 1, got {choices!r}")
    tails = [1.0]
    for i in range(1, max_length + 1):
        if choices == 1:
            exponent = float(i)
        else:
            exponent = (choices ** i - 1) / (choices - 1)
        value = load ** exponent
        if value < _TAIL_EPSILON:
            break
        tails.append(value)
    return tails


def mean_queue_length(load: float, choices: int) -> float:
    """Expected number of jobs in a queue under the supermarket model."""
    return sum(tail_probabilities(load, choices)[1:])


def mean_time_in_system(load: float, choices: int) -> float:
    """Expected sojourn time (service rate 1) under the supermarket model.

    By Little's law the expected time in system equals the expected
    queue length divided by the per-queue arrival rate λ.
    """
    return mean_queue_length(load, choices) / load


def improvement_over_random(load: float, choices: int = 2) -> float:
    """Ratio of random-assignment to power-of-d-choices sojourn times.

    This is the headline theoretical prediction: how many times faster
    the power of d choices is than a single random choice at a given
    load.  It grows without bound as λ → 1.
    """
    return mean_time_in_system(load, 1) / mean_time_in_system(load, choices)


@dataclass
class ChoicesComparison:
    """Side-by-side analytic comparison for a set of ``d`` values."""

    load: float
    choices: List[int]
    mean_times: List[float]

    def as_rows(self) -> List[List[object]]:
        """Rows (d, mean time, speed-up vs d=1) for reporting."""
        baseline = self.mean_times[self.choices.index(1)] if 1 in self.choices else None
        rows: List[List[object]] = []
        for d, time in zip(self.choices, self.mean_times):
            speedup = baseline / time if baseline else float("nan")
            rows.append([d, time, speedup])
        return rows


def compare_choices(load: float, choices: List[int]) -> ChoicesComparison:
    """Analytic mean sojourn times for several values of ``d``."""
    if not choices:
        raise ReproError("choices list must not be empty")
    return ChoicesComparison(
        load=load,
        choices=list(choices),
        mean_times=[mean_time_in_system(load, d) for d in choices],
    )


def marginal_benefit(load: float, max_choices: int = 6) -> List[float]:
    """Relative improvement of d over d−1 choices, for d = 2..max_choices.

    Demonstrates the paper's citation of "decreased marginal benefit from
    more than two servers": the first step (1→2) dominates all others.
    """
    if max_choices < 2:
        raise ReproError(f"max_choices must be >= 2, got {max_choices!r}")
    times = [mean_time_in_system(load, d) for d in range(1, max_choices + 1)]
    return [
        (times[d - 2] - times[d - 1]) / times[d - 2]
        for d in range(2, max_choices + 1)
    ]
