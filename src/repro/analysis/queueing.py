"""Analytic queueing models (M/M/c and M/M/c/K).

These closed-form models serve two purposes in the reproduction:

* **calibration** — the saturation rate λ₀ of the testbed can be
  estimated analytically (total core capacity over mean service demand,
  corrected for the finite backlog) before the empirical search refines
  it, which keeps the calibration procedure cheap;
* **validation** — tests compare simulated single-server response times
  against the M/M/c predictions to make sure the server substrate's
  queueing behaviour is sound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError


def _validate_inputs(arrival_rate: float, service_rate: float, servers: int) -> None:
    if arrival_rate <= 0:
        raise ReproError(f"arrival rate must be positive, got {arrival_rate!r}")
    if service_rate <= 0:
        raise ReproError(f"service rate must be positive, got {service_rate!r}")
    if servers <= 0:
        raise ReproError(f"server count must be positive, got {servers!r}")


def erlang_c(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Erlang C formula: probability that an arrival has to wait.

    Requires a stable system (offered load strictly less than the number
    of servers).
    """
    _validate_inputs(arrival_rate, service_rate, servers)
    offered = arrival_rate / service_rate
    if offered >= servers:
        raise ReproError(
            f"system is unstable: offered load {offered:.3f} >= servers {servers}"
        )
    # P0: normalisation constant of the M/M/c state distribution.
    summation = sum(offered ** k / math.factorial(k) for k in range(servers))
    last_term = offered ** servers / (
        math.factorial(servers) * (1 - offered / servers)
    )
    p_wait = last_term / (summation + last_term)
    return p_wait


@dataclass
class MMcMetrics:
    """Steady-state metrics of an M/M/c queue."""

    arrival_rate: float
    service_rate: float
    servers: int
    utilization: float
    probability_of_wait: float
    mean_wait: float
    mean_response_time: float
    mean_queue_length: float
    mean_jobs_in_system: float


def mmc_metrics(arrival_rate: float, service_rate: float, servers: int) -> MMcMetrics:
    """All the standard steady-state metrics of an M/M/c queue."""
    _validate_inputs(arrival_rate, service_rate, servers)
    offered = arrival_rate / service_rate
    utilization = offered / servers
    if utilization >= 1:
        raise ReproError(
            f"system is unstable: utilization {utilization:.3f} >= 1"
        )
    p_wait = erlang_c(arrival_rate, service_rate, servers)
    mean_wait = p_wait / (servers * service_rate - arrival_rate)
    mean_response = mean_wait + 1.0 / service_rate
    return MMcMetrics(
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        servers=servers,
        utilization=utilization,
        probability_of_wait=p_wait,
        mean_wait=mean_wait,
        mean_response_time=mean_response,
        mean_queue_length=arrival_rate * mean_wait,
        mean_jobs_in_system=arrival_rate * mean_response,
    )


def mmck_blocking_probability(
    arrival_rate: float, service_rate: float, servers: int, capacity: int
) -> float:
    """Blocking probability of an M/M/c/K queue (K = total places).

    Used to estimate the connection-drop probability of one application
    server: ``servers`` worker slots in service and ``capacity`` total
    places (workers plus listen backlog).
    """
    _validate_inputs(arrival_rate, service_rate, servers)
    if capacity < servers:
        raise ReproError(
            f"capacity {capacity} must be at least the number of servers {servers}"
        )
    offered = arrival_rate / service_rate
    # Unnormalised state probabilities p_n for n = 0..K.
    probabilities = []
    for n in range(capacity + 1):
        if n <= servers:
            value = offered ** n / math.factorial(n)
        else:
            value = (
                offered ** n
                / (math.factorial(servers) * servers ** (n - servers))
            )
        probabilities.append(value)
    normalisation = sum(probabilities)
    return probabilities[capacity] / normalisation


def saturation_rate(
    total_cores: int, mean_service_demand: float, safety_margin: float = 1.0
) -> float:
    """Analytic estimate of the cluster saturation rate λ₀.

    The cluster can serve at most ``total_cores / mean_service_demand``
    CPU-bound requests per second; ``safety_margin`` scales the estimate
    (values below 1 make it conservative).
    """
    if total_cores <= 0:
        raise ReproError(f"total_cores must be positive, got {total_cores!r}")
    if mean_service_demand <= 0:
        raise ReproError(
            f"mean service demand must be positive, got {mean_service_demand!r}"
        )
    if safety_margin <= 0:
        raise ReproError(f"safety margin must be positive, got {safety_margin!r}")
    return safety_margin * total_cores / mean_service_demand
