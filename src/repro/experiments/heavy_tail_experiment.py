"""Heavy-tailed session workload: Pareto/lognormal mix with user affinity.

The paper's Poisson-of-exponentials workload is the kindest possible
input to power-of-two-choices dispatch.  This family replays the
unkind version: a Poisson arrival stream whose queries mix one-shot
bounded-Pareto requests (the classic heavy tail) with keep-alive user
*sessions* — one aggregated request per session, its demand the sum of
a geometric-length series of lognormal per-request demands, so a worker
is pinned for the whole session like an Apache-prefork keep-alive
connection.  Arrivals are attributed to a Zipf-distributed population
of ~10⁵–10⁶ users carried as integer ids only, and the client derives a
stable source port per user (:class:`~repro.workload.hostile.
SessionAffinityClient`), so a returning user's 5-tuple — hence ECMP
bucket and flow-table entry — repeats across sessions.

The same trace is replayed under each Service Hunting policy; the
scenario reports per-kind response times next to the user-concentration
profile of the trace, so policy differences can be read against how
skewed the offered load actually was.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.experiments import registry
from repro.experiments.config import (
    HeavyTailConfig,
    PolicySpec,
    TestbedConfig,
)
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioSpec,
    TraceProvider,
    run_scenario,
)
from repro.metrics.collector import CollectorPayload, ResponseTimeCollector
from repro.metrics.reporting import format_table
from repro.metrics.stats import SummaryStatistics
from repro.workload.hostile import (
    HeavyTailWorkload,
    SessionAffinityClient,
    UserConcentration,
    user_concentration,
)
from repro.workload.requests import KIND_HEAVY, KIND_SESSION, RequestCatalog
from repro.workload.service_models import (
    BoundedParetoServiceTime,
    LognormalServiceTime,
)
from repro.workload.trace import Trace


def make_heavy_tail_workload(config: HeavyTailConfig) -> HeavyTailWorkload:
    """The mixture workload described by ``config``.

    The arrival rate is normalised against the fleet's total CPU
    capacity using the *mixture* mean demand per arrival, so
    ``load_factor`` keeps its usual meaning (offered demand over
    capacity) even though sessions bundle several requests.
    """
    return HeavyTailWorkload.from_load_factor(
        load_factor=config.load_factor,
        capacity=config.testbed.total_capacity,
        num_arrivals=config.num_arrivals,
        heavy_fraction=config.heavy_fraction,
        heavy_model=BoundedParetoServiceTime(
            alpha=config.pareto_alpha,
            lower_seconds=config.pareto_lower,
            upper_seconds=config.pareto_upper,
        ),
        request_model=LognormalServiceTime(
            median_seconds=config.request_median, sigma=config.request_sigma
        ),
        mean_session_length=config.mean_session_length,
        num_users=config.num_users,
        user_zipf=config.user_zipf,
        size_median=config.size_median,
        size_sigma=config.size_sigma,
        size_cap=config.size_cap,
    )


def make_heavy_tail_trace(config: HeavyTailConfig) -> Trace:
    """The trace shared by every policy of a comparison."""
    workload = make_heavy_tail_workload(config)
    rng = np.random.default_rng([config.workload_seed, config.num_arrivals])
    return workload.generate(rng)


@dataclass
class HeavyTailRunResult:
    """Outcome of one (policy, heavy-tail trace) run."""

    policy: str
    config: HeavyTailConfig
    collector: ResponseTimeCollector
    requests_served: int
    connections_reset: int
    queries_hung: int
    affinity_hits: int
    affinity_fallbacks: int
    simulated_duration: float

    @property
    def summary(self) -> SummaryStatistics:
        """Response-time summary over every completed query."""
        return self.collector.summary()

    def kind_summary(self, kind: str) -> SummaryStatistics:
        """Response-time summary of one request kind."""
        return self.collector.summary(kind)

    def export_payload(self) -> "HeavyTailRunPayload":
        """Compact, picklable export of this run (for the scenario runner)."""
        return HeavyTailRunPayload(
            policy=self.policy,
            config=self.config,
            collector=self.collector.export_payload(),
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            queries_hung=self.queries_hung,
            affinity_hits=self.affinity_hits,
            affinity_fallbacks=self.affinity_fallbacks,
            simulated_duration=self.simulated_duration,
        )


@dataclass
class HeavyTailRunPayload:
    """Picklable compact form of a :class:`HeavyTailRunResult`."""

    policy: str
    config: HeavyTailConfig
    collector: CollectorPayload
    requests_served: int
    connections_reset: int
    queries_hung: int
    affinity_hits: int
    affinity_fallbacks: int
    simulated_duration: float

    def to_result(self) -> HeavyTailRunResult:
        """Rebuild the full result object in the parent process."""
        return HeavyTailRunResult(
            policy=self.policy,
            config=self.config,
            collector=ResponseTimeCollector.from_payload(self.collector),
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            queries_hung=self.queries_hung,
            affinity_hits=self.affinity_hits,
            affinity_fallbacks=self.affinity_fallbacks,
            simulated_duration=self.simulated_duration,
        )


def _policy_named(config: HeavyTailConfig, name: str) -> PolicySpec:
    for policy in config.policies:
        if policy.name == name:
            return policy
    raise ExperimentError(f"no policy named {name!r} in the configuration")


def _build_heavy_tail_platform(
    config: HeavyTailConfig, policy: PolicySpec
) -> Testbed:
    """A fresh testbed with the session-affinity client installed."""
    return build_testbed(
        config.testbed,
        policy,
        catalog=RequestCatalog(),
        run_name=f"heavy-tail-{policy.name}",
        client_factory=SessionAffinityClient,
    )


def run_heavy_tail_once(
    config: HeavyTailConfig,
    policy: PolicySpec,
    trace: Optional[Trace] = None,
) -> HeavyTailRunResult:
    """Replay the heavy-tail trace under one policy."""
    if trace is None:
        trace = make_heavy_tail_trace(config)
    testbed = _build_heavy_tail_platform(config, policy)
    duration = testbed.run_trace(trace)
    client = testbed.client
    return HeavyTailRunResult(
        policy=policy.name,
        config=config,
        collector=testbed.collector,
        requests_served=testbed.total_requests_served(),
        connections_reset=testbed.total_resets(),
        queries_hung=client.queries_swept,
        affinity_hits=getattr(client, "affinity_hits", 0),
        affinity_fallbacks=getattr(client, "affinity_fallbacks", 0),
        simulated_duration=duration,
    )


@dataclass
class HeavyTailComparison:
    """All policies of one heavy-tail comparison, over the same trace."""

    config: HeavyTailConfig
    users: UserConcentration
    runs: Dict[str, HeavyTailRunResult] = field(default_factory=dict)

    def policies(self) -> List[str]:
        """Policy names, in configuration order."""
        return [policy.name for policy in self.config.policies]

    def run(self, policy: str) -> HeavyTailRunResult:
        """The run for one policy."""
        try:
            return self.runs[policy]
        except KeyError as exc:
            raise ExperimentError(f"no run for policy {policy!r}") from exc


class HeavyTailScenario(ScenarioSpec):
    """The heavy-tailed session workload as a declarative scenario."""

    name = "heavy-tail"
    title = (
        "Heavy-tailed sessions: Pareto/lognormal mix with Zipf user affinity"
    )

    def default_config(self) -> HeavyTailConfig:
        return HeavyTailConfig()

    def smoke_config(self) -> HeavyTailConfig:
        return HeavyTailConfig(
            testbed=TestbedConfig(
                num_servers=4,
                workers_per_server=8,
                cores_per_server=2,
                backlog_capacity=16,
            ),
            num_arrivals=400,
            num_users=5_000,
        )

    def cells(self, config: HeavyTailConfig) -> List[ScenarioCell]:
        return [
            ScenarioCell(key=policy.name, params={"policy": policy.name})
            for policy in config.policies
        ]

    # trace_key: the default (one shared trace for every policy).

    def make_trace(self, config: HeavyTailConfig, cell: ScenarioCell) -> Trace:
        return make_heavy_tail_trace(config)

    def build_platform(
        self, config: HeavyTailConfig, cell: ScenarioCell
    ) -> Testbed:
        return _build_heavy_tail_platform(
            config, _policy_named(config, cell.param("policy"))
        )

    def run_once(
        self, config: HeavyTailConfig, cell: ScenarioCell, trace: Trace
    ) -> HeavyTailRunPayload:
        policy = _policy_named(config, cell.param("policy"))
        return run_heavy_tail_once(config, policy, trace=trace).export_payload()

    def aggregate(
        self,
        config: HeavyTailConfig,
        cells: Sequence[ScenarioCell],
        payloads: Sequence[HeavyTailRunPayload],
        trace_for: TraceProvider,
    ) -> HeavyTailComparison:
        comparison = HeavyTailComparison(
            config=config,
            users=user_concentration(trace_for(cells[0])),
        )
        for payload in payloads:
            comparison.runs[payload.policy] = payload.to_result()
        return comparison

    def render(self, result: HeavyTailComparison) -> str:
        return render_heavy_tail_table(result)


#: The registered spec instance (also reachable via ``registry.get``).
HEAVY_TAIL_SCENARIO = registry.register(HeavyTailScenario())


def run_heavy_tail(
    config: HeavyTailConfig, jobs: Optional[int] = 1
) -> HeavyTailComparison:
    """Replay the heavy-tail trace under every configured policy.

    ``jobs`` fans the per-policy runs out over a process pool
    (``None``/``0`` = all cores); results are identical for any value —
    see :mod:`repro.experiments.runner` for the determinism contract.
    """
    return run_scenario(HEAVY_TAIL_SCENARIO, config, jobs=jobs)


def render_heavy_tail_table(comparison: HeavyTailComparison) -> str:
    """Text table of the per-policy heavy-tail comparison."""
    config = comparison.config
    users = comparison.users
    rows: List[List[object]] = []
    for policy in comparison.policies():
        run = comparison.run(policy)
        totals = run.collector.totals
        rows.append(
            [
                policy,
                totals.completed,
                # The end-of-run sweep records hung queries as failed
                # outcomes, so the total already covers them.
                totals.failed,
                run.summary.mean,
                run.summary.p99,
                run.kind_summary(KIND_SESSION).p99,
                run.kind_summary(KIND_HEAVY).p99,
                run.affinity_hits,
                run.affinity_fallbacks,
            ]
        )
    return format_table(
        [
            "policy",
            "completed",
            "failed",
            "mean (s)",
            "p99 (s)",
            "p99 sess (s)",
            "p99 heavy (s)",
            "affine",
            "fallback",
        ],
        rows,
        title=(
            f"Heavy-tailed sessions: {config.num_arrivals} arrivals, "
            f"{users.distinct_users} users seen of {config.num_users} "
            f"(top user {100 * users.top_user_share:.1f}%), "
            f"rho={config.load_factor:g}"
        ),
    )
