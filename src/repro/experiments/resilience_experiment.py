"""Resilience experiments: load-balancer churn under an ECMP tier.

The paper argues (§II-B) that SRLB instances can be added and removed at
will when candidate selection is flow-stable: any instance can re-derive
a flow's candidate chain, so no flow state needs to be synchronised and
in-flight flows survive instance churn.  This experiment family
quantifies that claim on the simulated platform:

* the testbed is fronted by a :class:`~repro.core.lb_tier.LoadBalancerTier`
  (``num_load_balancers`` instances behind a per-packet ECMP edge);
* clients trickle each request upload over a few seconds
  (``request_spread``), so every flow depends on steering state for a
  macroscopic window;
* mid-run, a churn schedule kills (or adds) tier instances;
* the run reports the **broken-flow fraction**: of the queries in flight
  at each churn event, how many never completed.

The same workload is replayed under each candidate-selection scheme, so
the difference between ``random`` (steering state is unrecoverable, the
victim's flows are reset) and ``consistent-hash`` (stateless recovery
re-derives the chain and flows survive) is attributable to the scheme
alone.

The comparison is expressed as a
:class:`~repro.experiments.scenario.ScenarioSpec` (one cell per
selection scheme, one shared trace); :func:`run_resilience_comparison`
is a thin entry point over that spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.errors import ExperimentError
from repro.experiments import registry
from repro.experiments.calibration import analytic_saturation_rate
from repro.experiments.config import ChurnEvent, ResilienceConfig, TestbedConfig
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioSpec,
    TraceProvider,
    run_scenario,
)
from repro.metrics.collector import CollectorPayload, ResponseTimeCollector
from repro.metrics.reporting import format_table
from repro.metrics.stats import SummaryStatistics
from repro.workload.poisson import PoissonWorkload
from repro.workload.requests import RequestCatalog
from repro.workload.service_models import ExponentialServiceTime
from repro.workload.trace import Trace


def resilience_saturation_rate(
    testbed: TestbedConfig, service_mean: float
) -> float:
    """Saturation rate of the testbed under spread uploads, queries/s.

    With paced uploads a connection holds an Apache worker for roughly
    ``request_spread + service_mean`` seconds, so the worker pool — not
    the CPU — is usually the binding resource.  The saturation rate is
    the tighter of the two limits.
    """
    cpu_limit = analytic_saturation_rate(testbed, service_mean)
    worker_limit = testbed.total_workers / (testbed.request_spread + service_mean)
    return min(cpu_limit, worker_limit)


def make_resilience_trace(config: ResilienceConfig) -> Trace:
    """The Poisson workload trace shared by every scheme of a comparison."""
    saturation = resilience_saturation_rate(config.testbed, config.service_mean)
    workload = PoissonWorkload.from_load_factor(
        rho=config.load_factor,
        saturation_rate=saturation,
        num_queries=config.num_queries,
        service_model=ExponentialServiceTime(config.service_mean),
    )
    rng = np.random.default_rng([config.workload_seed, config.num_queries])
    return workload.generate(rng)


@dataclass
class ChurnObservation:
    """What one churn event looked like when it fired."""

    event: ChurnEvent
    at_time: float
    instance: str
    #: Request ids in flight at the instant of the event.
    in_flight_ids: Set[int] = field(default_factory=set)
    #: Flow-table entries the killed instance took down with it.
    flow_entries_lost: int = 0


@dataclass
class ResilienceRunResult:
    """Outcome of one (selection scheme, churn schedule) run."""

    scheme: str
    config: ResilienceConfig
    collector: ResponseTimeCollector
    observations: List[ChurnObservation]
    #: Queries that were in flight at some churn event and never
    #: completed (reset or hung) — the paper's "broken flows".
    broken_flows: int
    in_flight_at_churn: int
    queries_hung: int
    recovery_hunts: int
    steering_misses: int
    signals_relayed: int
    acceptances_learned: int
    simulated_duration: float

    @property
    def broken_fraction(self) -> float:
        """Fraction of churn-exposed in-flight flows that broke."""
        if self.in_flight_at_churn == 0:
            return 0.0
        return self.broken_flows / self.in_flight_at_churn

    @property
    def summary(self) -> SummaryStatistics:
        """Response-time summary of the queries that did complete."""
        return self.collector.summary()

    def export_payload(self) -> "ResilienceRunPayload":
        """Compact, picklable export of this run (for the scenario runner)."""
        return ResilienceRunPayload(
            scheme=self.scheme,
            config=self.config,
            collector=self.collector.export_payload(),
            observations=list(self.observations),
            broken_flows=self.broken_flows,
            in_flight_at_churn=self.in_flight_at_churn,
            queries_hung=self.queries_hung,
            recovery_hunts=self.recovery_hunts,
            steering_misses=self.steering_misses,
            signals_relayed=self.signals_relayed,
            acceptances_learned=self.acceptances_learned,
            simulated_duration=self.simulated_duration,
        )


@dataclass
class ResilienceRunPayload:
    """Picklable compact form of a :class:`ResilienceRunResult`.

    The churn observations are plain dataclasses over scalars and id
    sets, so they cross the process boundary as-is; only the collector
    needs the array-backed compact form.
    """

    scheme: str
    config: ResilienceConfig
    collector: CollectorPayload
    observations: List[ChurnObservation]
    broken_flows: int
    in_flight_at_churn: int
    queries_hung: int
    recovery_hunts: int
    steering_misses: int
    signals_relayed: int
    acceptances_learned: int
    simulated_duration: float

    def to_result(self) -> ResilienceRunResult:
        """Rebuild the full result object in the parent process."""
        return ResilienceRunResult(
            scheme=self.scheme,
            config=self.config,
            collector=ResponseTimeCollector.from_payload(self.collector),
            observations=list(self.observations),
            broken_flows=self.broken_flows,
            in_flight_at_churn=self.in_flight_at_churn,
            queries_hung=self.queries_hung,
            recovery_hunts=self.recovery_hunts,
            steering_misses=self.steering_misses,
            signals_relayed=self.signals_relayed,
            acceptances_learned=self.acceptances_learned,
            simulated_duration=self.simulated_duration,
        )


def _resolve_victim(tier, event: ChurnEvent):
    """The instance a kill event targets.

    When unnamed, the alive instance with the largest flow table is
    chosen — the most steering state at risk.  Flow tables are not
    expired mid-run, so the size counts every flow the instance ever
    owned, an upper bound on (and proxy for) its live flows.
    """
    if event.instance is not None:
        return tier.instance(event.instance)
    return max(tier.alive_instances(), key=lambda lb: len(lb.flow_table))


def _build_resilience_platform(config: ResilienceConfig, scheme: str) -> Testbed:
    """A fresh tier-fronted testbed for one scheme's churn run."""
    policy = config.policy_for(scheme)
    return build_testbed(
        config.testbed,
        policy,
        catalog=RequestCatalog(),
        run_name=f"resilience-{scheme}",
    )


def run_resilience_once(
    config: ResilienceConfig,
    scheme: str,
    trace: Optional[Trace] = None,
) -> ResilienceRunResult:
    """Run the churn schedule under one candidate-selection scheme."""
    if scheme == "random" and config.num_candidates < 2:
        raise ExperimentError("resilience runs need at least 2 candidates")
    if trace is None:
        trace = make_resilience_trace(config)

    testbed = _build_resilience_platform(config, scheme)
    tier = testbed.lb_tier
    if tier is None:
        raise ExperimentError(
            "resilience experiments require num_load_balancers >= 2"
        )

    observations: List[ChurnObservation] = []
    added = [0]

    def apply_churn(event: ChurnEvent) -> None:
        observation = ChurnObservation(
            event=event,
            at_time=testbed.simulator.now,
            instance="",
            in_flight_ids=set(testbed.client.outstanding_request_ids()),
        )
        if event.action == "kill":
            victim = _resolve_victim(tier, event)
            observation.instance = victim.name
            observation.flow_entries_lost = len(victim.flow_table)
            tier.kill_instance(victim.name)
        else:
            added[0] += 1
            # A fresh address well clear of the construction-time range.
            instance = tier.add_instance(tier.steering_address + 1_000 + added[0])
            observation.instance = instance.name
        observations.append(observation)

    for event in config.churn:
        testbed.simulator.schedule_at(
            trace.duration * event.at_fraction,
            lambda event=event: apply_churn(event),
            label=f"churn-{event.action}",
        )

    duration = testbed.run_trace(trace)

    completed_ids = {
        outcome.request_id for outcome in testbed.collector.outcomes()
    }
    exposed: Set[int] = set()
    for observation in observations:
        exposed |= observation.in_flight_ids
    broken = sum(1 for request_id in exposed if request_id not in completed_ids)

    return ResilienceRunResult(
        scheme=scheme,
        config=config,
        collector=testbed.collector,
        observations=observations,
        broken_flows=broken,
        in_flight_at_churn=len(exposed),
        queries_hung=testbed.client.queries_swept,
        recovery_hunts=tier.recovery_hunts(),
        steering_misses=testbed.total_steering_misses(),
        signals_relayed=tier.signals_relayed(),
        acceptances_learned=tier.acceptances_learned(),
        simulated_duration=duration,
    )


@dataclass
class ResilienceComparison:
    """All schemes of one resilience comparison, over the same workload."""

    config: ResilienceConfig
    runs: Dict[str, ResilienceRunResult] = field(default_factory=dict)

    def schemes(self) -> List[str]:
        """Scheme names, in configuration order."""
        return [scheme for scheme in self.config.selection_schemes]

    def run(self, scheme: str) -> ResilienceRunResult:
        """The run for one scheme."""
        try:
            return self.runs[scheme]
        except KeyError as exc:
            raise ExperimentError(f"no run for scheme {scheme!r}") from exc


class ResilienceScenario(ScenarioSpec):
    """The LB-churn comparison as a declarative scenario."""

    name = "resilience"
    title = "Broken flows under load-balancer churn, per selection scheme (§II-B)"

    def default_config(self) -> ResilienceConfig:
        return ResilienceConfig()

    def smoke_config(self) -> ResilienceConfig:
        return ResilienceConfig(
            testbed=TestbedConfig(
                num_servers=6,
                workers_per_server=8,
                num_load_balancers=4,
                request_spread=1.0,
                request_chunks=3,
                request_timeout=3.0,
            ),
            num_queries=400,
            service_mean=0.05,
        )

    def cells(self, config: ResilienceConfig) -> List[ScenarioCell]:
        return [
            ScenarioCell(key=scheme, params={"scheme": scheme})
            for scheme in config.selection_schemes
        ]

    # trace_key: the default (one shared trace for every scheme).

    def make_trace(self, config: ResilienceConfig, cell: ScenarioCell) -> Trace:
        return make_resilience_trace(config)

    def build_platform(
        self, config: ResilienceConfig, cell: ScenarioCell
    ) -> Testbed:
        return _build_resilience_platform(config, cell.param("scheme"))

    def run_once(
        self, config: ResilienceConfig, cell: ScenarioCell, trace: Trace
    ) -> ResilienceRunPayload:
        return run_resilience_once(
            config, cell.param("scheme"), trace=trace
        ).export_payload()

    def aggregate(
        self,
        config: ResilienceConfig,
        cells: Sequence[ScenarioCell],
        payloads: Sequence[ResilienceRunPayload],
        trace_for: TraceProvider,
    ) -> ResilienceComparison:
        comparison = ResilienceComparison(config=config)
        for payload in payloads:
            comparison.runs[payload.scheme] = payload.to_result()
        return comparison

    def render(self, result: ResilienceComparison) -> str:
        return render_resilience_table(result)


#: The registered spec instance (also reachable via ``registry.get``).
RESILIENCE_SCENARIO = registry.register(ResilienceScenario())


def run_resilience_comparison(
    config: ResilienceConfig, jobs: Optional[int] = 1
) -> ResilienceComparison:
    """Replay the same workload + churn under every configured scheme.

    ``jobs`` fans the per-scheme runs out over a process pool
    (``None``/``0`` = all cores); ``jobs=1`` keeps the historical
    in-process path.  Results are identical for any value — see
    :mod:`repro.experiments.runner` for the determinism contract.
    """
    return run_scenario(RESILIENCE_SCENARIO, config, jobs=jobs)


def render_resilience_table(comparison: ResilienceComparison) -> str:
    """Text table of the per-scheme broken-flow fractions."""
    config = comparison.config
    rows: List[List[object]] = []
    for scheme in comparison.schemes():
        run = comparison.run(scheme)
        totals = run.collector.totals
        rows.append(
            [
                scheme,
                run.in_flight_at_churn,
                run.broken_flows,
                f"{100 * run.broken_fraction:.1f}%",
                run.recovery_hunts,
                # The end-of-run sweep records hung queries as failed
                # outcomes, so the total already covers them.
                totals.failed,
                run.summary.mean,
                run.summary.p90,
            ]
        )
    kills = sum(1 for event in config.churn if event.action == "kill")
    adds = len(config.churn) - kills
    churn_text = " + ".join(
        part
        for part in (
            f"{kills} kill(s)" if kills else "",
            f"{adds} add(s)" if adds else "",
        )
        if part
    )
    return format_table(
        [
            "scheme",
            "in flight",
            "broken",
            "broken %",
            "recoveries",
            "failed total",
            "mean (s)",
            "p90 (s)",
        ],
        rows,
        title=(
            f"LB-churn resilience: {config.testbed.num_load_balancers} LBs, "
            f"{churn_text} mid-run, rho={config.load_factor:g}, "
            f"{config.num_queries} queries"
        ),
    )
