"""Figure-by-figure data extraction and text rendering.

Each ``figure*`` function takes experiment results and returns exactly
the series the corresponding figure of the paper plots, as plain Python
data structures; each ``render_figure*`` helper formats them as a text
table for the benchmark output and EXPERIMENTS.md.

The mapping to the paper (also recorded in DESIGN.md §4):

* Figure 2 — mean response time vs normalized request rate ρ, one series
  per policy (RR, SR4, SR8, SR16, SRdyn);
* Figures 3 and 5 — response-time CDF at ρ = 0.88 and ρ = 0.61;
* Figure 4 — instantaneous mean server load and Jain fairness index over
  time, RR vs SR4 at ρ = 0.88, EWMA-smoothed;
* Figure 6 — wiki-page query rate and median load time per 10-minute
  bin over the replayed day, RR vs SR4;
* Figure 7 — per-bin deciles 1–9 of the wiki-page load time;
* Figure 8 — whole-day CDF of wiki-page load times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.poisson_experiment import PoissonRunResult, PoissonSweepResult
from repro.experiments.wikipedia_experiment import WikipediaReplayResult
from repro.metrics.ewma import smooth_timeseries
from repro.metrics.reporting import format_table
from repro.metrics.stats import cdf_at, empirical_cdf


# ----------------------------------------------------------------------
# Registry-driven dispatch — any scenario family's headline figure
# ----------------------------------------------------------------------
def render_scenario_figure(scenario_name: str, result) -> str:
    """The headline figure of any registered scenario, as a text table.

    Dispatches through :mod:`repro.experiments.registry`, so figure code
    for a new workload family ships with its spec and is reachable here
    without touching this module.
    """
    from repro.experiments import registry

    return registry.get(scenario_name).render(result)


# ----------------------------------------------------------------------
# Figure 2 — mean response time vs load factor
# ----------------------------------------------------------------------
def figure2_series(sweep: PoissonSweepResult) -> Dict[str, List[Tuple[float, float]]]:
    """Per-policy ``(rho, mean response time)`` series."""
    return {
        policy_name: sweep.mean_response_series(policy_name)
        for policy_name in sweep.policies()
    }


def render_figure2(sweep: PoissonSweepResult) -> str:
    """Figure 2 as a text table (one row per load factor)."""
    series = figure2_series(sweep)
    load_factors = sorted({rho for points in series.values() for rho, _ in points})
    headers = ["rho"] + list(series)
    rows: List[List[object]] = []
    for rho in load_factors:
        row: List[object] = [rho]
        for policy_name in series:
            lookup = dict(series[policy_name])
            row.append(lookup.get(rho, float("nan")))
        rows.append(row)
    return format_table(
        headers, rows, title="Figure 2: mean response time (s) vs load factor"
    )


# ----------------------------------------------------------------------
# Figures 3 and 5 — response-time CDFs
# ----------------------------------------------------------------------
#: Thresholds (seconds) at which the CDF tables are evaluated.
CDF_THRESHOLDS: Tuple[float, ...] = (
    0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0, 1.5, 2.0,
)


def figure_cdf_series(
    runs: Dict[str, PoissonRunResult]
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Per-policy empirical CDF of response times."""
    return {
        name: empirical_cdf(run.response_times()) for name, run in runs.items()
    }


def render_figure_cdf(
    runs: Dict[str, PoissonRunResult],
    title: str,
    thresholds: Sequence[float] = CDF_THRESHOLDS,
) -> str:
    """A CDF comparison rendered as a table of P(T <= t) rows."""
    headers = ["t (s)"] + list(runs)
    rows: List[List[object]] = []
    per_policy = {
        name: run.response_times() for name, run in runs.items()
    }
    for threshold in thresholds:
        row: List[object] = [threshold]
        for name in runs:
            row.append(cdf_at(per_policy[name], [threshold])[0])
        rows.append(row)
    return format_table(headers, rows, title=title)


# ----------------------------------------------------------------------
# Figure 4 — instantaneous load and fairness
# ----------------------------------------------------------------------
@dataclass
class LoadFairnessSeries:
    """One policy's Figure 4 panels."""

    policy: str
    mean_load: List[Tuple[float, float]]
    fairness: List[Tuple[float, float]]


def figure4_series(
    runs: Dict[str, PoissonRunResult], smoothing_time_constant: float = 1.0
) -> Dict[str, LoadFairnessSeries]:
    """EWMA-smoothed mean-load and fairness series for each policy."""
    series: Dict[str, LoadFairnessSeries] = {}
    for name, run in runs.items():
        if run.load_sampler is None:
            raise ExperimentError(
                f"run {name!r} was executed without load sampling; "
                "pass sample_load=True to run_poisson_once"
            )
        sampler = run.load_sampler
        series[name] = LoadFairnessSeries(
            policy=name,
            mean_load=smooth_timeseries(
                sampler.mean_load_series(), smoothing_time_constant
            ),
            fairness=smooth_timeseries(
                sampler.fairness_series(), smoothing_time_constant
            ),
        )
    return series


def render_figure4(
    runs: Dict[str, PoissonRunResult], num_rows: int = 20
) -> str:
    """Figure 4 rendered as a table sub-sampled to ``num_rows`` time points."""
    series = figure4_series(runs)
    headers = ["time (s)"]
    for name in series:
        headers.extend([f"{name} mean load", f"{name} fairness"])
    # Use the first policy's timeline as the reference grid.
    reference = next(iter(series.values()))
    times = [time for time, _ in reference.mean_load]
    if not times:
        raise ExperimentError("load sampler produced no samples")
    stride = max(1, len(times) // num_rows)
    rows: List[List[object]] = []
    for index in range(0, len(times), stride):
        row: List[object] = [times[index]]
        for data in series.values():
            row.append(data.mean_load[index][1] if index < len(data.mean_load) else float("nan"))
            row.append(data.fairness[index][1] if index < len(data.fairness) else float("nan"))
        rows.append(row)
    return format_table(
        headers, rows, title="Figure 4: instantaneous server load (mean and fairness)"
    )


# ----------------------------------------------------------------------
# Figures 6, 7, 8 — Wikipedia replay
# ----------------------------------------------------------------------
def figure6_series(
    replay: WikipediaReplayResult,
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Per-policy query-rate and median-load-time series (10-minute bins)."""
    series: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for name in replay.policies():
        run = replay.run(name)
        series[name] = {
            "rate": run.rate_series(),
            "median": run.median_series(),
        }
    return series


def _equivalent_hour(bin_center: float, replay: WikipediaReplayResult) -> float:
    """Map a (possibly time-compressed) bin centre to its time of day in hours.

    The synthetic trace traverses one diurnal cycle over
    ``replay.config.duration`` seconds, so the equivalent UTC hour is the
    fraction of the replay elapsed so far times 24.
    """
    return (bin_center / replay.config.duration) * 24.0


def render_figure6(replay: WikipediaReplayResult) -> str:
    """Figure 6 as a table: one row per bin, rate plus per-policy medians."""
    series = figure6_series(replay)
    policies = list(series)
    reference = series[policies[0]]["rate"]
    headers = ["time of day (h)", "wiki pages/s"] + [
        f"{name} median (s)" for name in policies
    ]
    rows: List[List[object]] = []
    for index, (bin_center, rate) in enumerate(reference):
        row: List[object] = [_equivalent_hour(bin_center, replay), rate]
        for name in policies:
            medians = series[name]["median"]
            row.append(medians[index][1] if index < len(medians) else float("nan"))
        rows.append(row)
    return format_table(
        headers,
        rows,
        title="Figure 6: wiki-page query rate and median load time per bin",
    )


def figure7_series(
    replay: WikipediaReplayResult,
) -> Dict[str, List[Tuple[float, List[float]]]]:
    """Per-policy, per-bin deciles 1–9 of the wiki-page load time."""
    return {name: replay.run(name).decile_series() for name in replay.policies()}


def render_figure7(replay: WikipediaReplayResult, policy_name: str) -> str:
    """Figure 7 (one policy panel) as a table of per-bin deciles."""
    deciles_by_bin = figure7_series(replay)[policy_name]
    headers = ["time of day (h)"] + [f"d{k}" for k in range(1, 10)]
    rows: List[List[object]] = []
    for bin_center, decile_values in deciles_by_bin:
        rows.append([_equivalent_hour(bin_center, replay)] + list(decile_values))
    return format_table(
        headers,
        rows,
        title=f"Figure 7 ({policy_name}): deciles 1-9 of wiki page load time per bin",
    )


def figure8_series(
    replay: WikipediaReplayResult,
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Per-policy whole-day CDF of wiki-page load times."""
    return {
        name: empirical_cdf(replay.run(name).wiki_response_times())
        for name in replay.policies()
    }


def render_figure8(
    replay: WikipediaReplayResult,
    thresholds: Sequence[float] = CDF_THRESHOLDS,
) -> str:
    """Figure 8 as a table of P(T <= t), plus the median/quartile comparison."""
    headers = ["t (s)"] + list(replay.policies())
    per_policy = {
        name: replay.run(name).wiki_response_times() for name in replay.policies()
    }
    rows: List[List[object]] = []
    for threshold in thresholds:
        row: List[object] = [threshold]
        for name in replay.policies():
            row.append(cdf_at(per_policy[name], [threshold])[0])
        rows.append(row)
    table = format_table(
        headers, rows, title="Figure 8: whole-day CDF of wiki page load time"
    )
    quartile_lines = []
    for name in replay.policies():
        q1, median, q3 = replay.run(name).wiki_quartiles()
        quartile_lines.append(
            f"{name}: median={median:.3f}s, third quartile={q3:.3f}s (q1={q1:.3f}s)"
        )
    return table + "\n" + "\n".join(quartile_lines)
