"""Saturation-rate (λ₀) calibration.

The paper's bootstrap step identifies "λ₀, the max rate sustainable by
the 12-servers swarm, i.e. the smallest value of λ for which some TCP
connections were dropped" (§V-A), and then sweeps the normalized rate
ρ = λ/λ₀.

Two estimators are provided:

* :func:`analytic_saturation_rate` — the CPU-capacity bound
  ``total cores / mean service demand``, which is what the fleet can
  sustain in steady state; it is cheap and is the default normalisation
  used by the experiments.
* :func:`find_empirical_saturation_rate` — the paper's procedure: run
  short experiments at increasing rates and binary-search the smallest
  rate at which connections get reset, using the RR baseline (as the
  paper does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.queueing import saturation_rate as _analytic_rate
from repro.experiments.config import PolicySpec, TestbedConfig, rr_policy
from repro.experiments.platform import build_testbed
from repro.workload.poisson import PoissonWorkload
from repro.workload.requests import RequestCatalog
from repro.workload.service_models import ExponentialServiceTime

import numpy as np


def analytic_saturation_rate(
    config: TestbedConfig, service_mean: float = 0.1
) -> float:
    """CPU-capacity estimate of λ₀ (queries per second).

    Uses the speed-weighted core capacity, so heterogeneous fleets
    (``server_speed_factors``) normalise against what the mixed fleet
    can actually sustain; for homogeneous fleets this is exactly the
    core count.
    """
    return _analytic_rate(config.total_capacity, service_mean)


@dataclass
class CalibrationProbe:
    """Result of one probe run at a candidate rate."""

    rate: float
    queries: int
    drops: int

    @property
    def dropped(self) -> bool:
        """Whether any connection was reset at this rate."""
        return self.drops > 0


@dataclass
class CalibrationResult:
    """Outcome of the empirical λ₀ search."""

    saturation_rate: float
    analytic_rate: float
    probes: List[CalibrationProbe]

    @property
    def ratio_to_analytic(self) -> float:
        """Empirical λ₀ relative to the analytic capacity bound."""
        return self.saturation_rate / self.analytic_rate


def _probe_drops(
    config: TestbedConfig,
    policy: PolicySpec,
    rate: float,
    num_queries: int,
    service_mean: float,
    seed: int,
) -> CalibrationProbe:
    """Run one short experiment and count reset connections."""
    workload = PoissonWorkload(
        rate=rate,
        num_queries=num_queries,
        service_model=ExponentialServiceTime(service_mean),
    )
    trace = workload.generate(np.random.default_rng([seed, int(rate * 1000)]))
    testbed = build_testbed(config, policy, catalog=RequestCatalog())
    testbed.run_trace(trace)
    drops = testbed.collector.totals.failed
    return CalibrationProbe(rate=rate, queries=num_queries, drops=drops)


def find_empirical_saturation_rate(
    config: Optional[TestbedConfig] = None,
    service_mean: float = 0.1,
    num_queries: int = 4_000,
    num_iterations: int = 6,
    policy: Optional[PolicySpec] = None,
    seed: int = 7,
) -> CalibrationResult:
    """Binary-search the smallest rate at which connections are dropped.

    The search brackets the analytic capacity estimate (from 0.7× to
    1.6×); if no drops occur even at the upper bound the bound itself is
    returned, which keeps the procedure total.
    """
    config = config or TestbedConfig()
    policy = policy or rr_policy()
    analytic = analytic_saturation_rate(config, service_mean)
    low, high = 0.7 * analytic, 1.6 * analytic
    probes: List[CalibrationProbe] = []

    high_probe = _probe_drops(config, policy, high, num_queries, service_mean, seed)
    probes.append(high_probe)
    if not high_probe.dropped:
        return CalibrationResult(
            saturation_rate=high, analytic_rate=analytic, probes=probes
        )

    low_probe = _probe_drops(config, policy, low, num_queries, service_mean, seed)
    probes.append(low_probe)
    if low_probe.dropped:
        # Even the conservative bracket drops: report it rather than
        # searching below; the caller can lower the bracket explicitly.
        return CalibrationResult(
            saturation_rate=low, analytic_rate=analytic, probes=probes
        )

    for _ in range(num_iterations):
        mid = (low + high) / 2.0
        probe = _probe_drops(config, policy, mid, num_queries, service_mean, seed)
        probes.append(probe)
        if probe.dropped:
            high = mid
        else:
            low = mid

    return CalibrationResult(
        saturation_rate=high, analytic_rate=analytic, probes=probes
    )
