"""Fault injection against the SRLB tier: the ``chaos`` scenario family.

Every other family runs over a perfect network.  This one replays one
legitimate Poisson workload through a :mod:`repro.net.faults` pipeline
installed on the fabric's delivery channel, one impairment recipe per
cell:

* ``baseline`` — the pipeline is installed but every injector is
  *disabled*.  This cell exists to pin, as a golden fingerprint, that an
  idle fault plane is bit-identical to no fault plane at all;
* ``loss`` — i.i.d. packet loss plus corruption-as-drop plus a
  Gilbert–Elliott burst process.  The headline robustness cell: with the
  client's SYN retransmission and bounded retries armed, ≥ 99 % of
  queries must still complete under 1 % loss, and every query that does
  not must be accounted for by ``gave_up``;
* ``flap`` — scheduled link-down windows during which the fabric drops
  everything, exercising recovery after total (but bounded) outages;
* ``jitter`` — latency jitter plus bounded reordering: nothing is lost,
  but timing shifts everywhere and spurious client timeouts retry flows
  onto fresh ECMP paths.

The testbed arms client retransmission/retries and server load-shedding
(see :class:`~repro.experiments.config.ChaosConfig`), so the cells
measure *recovery*, not just damage.  Per-cell fingerprints are SHA-256
over the sorted per-query outcome matrix — computed in the worker so the
jobs=1 and jobs=2 paths hash exactly the same data.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments import registry
from repro.experiments.calibration import analytic_saturation_rate
from repro.experiments.config import ChaosConfig, TestbedConfig
from repro.experiments.platform import Testbed, build_testbed
from repro.experiments.scenario import (
    ScenarioCell,
    ScenarioSpec,
    TraceProvider,
    run_scenario,
)
from repro.metrics.collector import CollectorPayload, ResponseTimeCollector
from repro.metrics.reporting import format_table
from repro.metrics.stats import SummaryStatistics
from repro.net.faults import FaultConfig, install_fault_channel
from repro.workload.poisson import PoissonWorkload
from repro.workload.requests import RequestCatalog
from repro.workload.service_models import ExponentialServiceTime
from repro.workload.trace import Trace


def make_chaos_trace(config: ChaosConfig) -> Trace:
    """The legitimate Poisson trace shared by every chaos cell."""
    saturation = analytic_saturation_rate(config.testbed, config.service_mean)
    workload = PoissonWorkload.from_load_factor(
        rho=config.load_factor,
        saturation_rate=saturation,
        num_queries=config.num_queries,
        service_model=ExponentialServiceTime(config.service_mean),
    )
    rng = np.random.default_rng([config.workload_seed, config.num_queries])
    return workload.generate(rng)


def _flap_windows(
    config: ChaosConfig, trace_duration: float
) -> Tuple[Tuple[float, float], ...]:
    """``flap_count`` down-windows spread evenly over the trace."""
    count = config.flap_count
    if count <= 0:
        return ()
    half = config.flap_down / 2.0
    windows = []
    for index in range(count):
        center = trace_duration * (index + 1) / (count + 1)
        windows.append((max(0.0, center - half), center + half))
    return tuple(windows)


def fault_config_for(
    config: ChaosConfig, mode: str, trace_duration: float
) -> FaultConfig:
    """The fault recipe one cell installs on the fabric."""
    if mode == "baseline":
        # Installed but fully disabled: pins that an idle pipeline is
        # bit-identical to no pipeline.
        return FaultConfig()
    if mode == "loss":
        return FaultConfig(
            loss_rate=config.loss_rate,
            corruption_rate=config.corruption_rate,
            burst_enter=config.burst_enter,
            burst_exit=config.burst_exit,
            burst_loss=config.burst_loss,
        )
    if mode == "flap":
        return FaultConfig(
            flap_windows=_flap_windows(config, trace_duration)
        )
    if mode == "jitter":
        return FaultConfig(
            jitter_mean=config.jitter_mean,
            jitter_cap=config.jitter_cap,
            reorder_rate=config.reorder_rate,
            reorder_window=config.reorder_window,
        )
    raise ExperimentError(f"unknown chaos mode {mode!r}")


def outcome_fingerprint(collector: ResponseTimeCollector) -> str:
    """SHA-256 over the sorted per-query outcome matrix.

    One float64 row per recorded query — ``(request_id, sent_at,
    response_time | -1, retries, gave_up, failed)`` sorted by request
    id — so the fingerprint is invariant to completion order (and hence
    to the jobs fan-out) but pins every outcome bit the chaos cells care
    about, including the retry accounting that the compact collector
    payload does not round-trip.
    """
    outcomes = collector.outcomes() + collector.failures()
    rows = sorted(
        (
            float(outcome.request_id),
            outcome.sent_at,
            outcome.response_time if outcome.response_time is not None else -1.0,
            float(outcome.retries),
            float(outcome.gave_up),
            float(outcome.failed),
        )
        for outcome in outcomes
    )
    matrix = np.asarray(rows, dtype=np.float64)
    return hashlib.sha256(matrix.tobytes()).hexdigest()


@dataclass
class ChaosRunResult:
    """Outcome of one (impairment mode, legitimate trace) run."""

    mode: str
    config: ChaosConfig
    collector: ResponseTimeCollector
    requests_served: int
    connections_reset: int
    connections_shed: int
    connections_timed_out: int
    queries_retried: int
    queries_gave_up: int
    queries_swept: int
    syn_retransmits: int
    #: Fault-pipeline counters (the pipeline's LinkStats, by reason).
    fault_packets_seen: int
    fault_packets_dropped: int
    fault_dropped_loss: int
    fault_dropped_burst: int
    fault_dropped_corrupted: int
    fault_dropped_link_down: int
    fault_delayed_jitter: int
    fault_reordered: int
    simulated_duration: float
    #: SHA-256 of the per-query outcome matrix, computed in the worker.
    fingerprint: str
    #: Full pipeline ``LinkStats.snapshot()`` — every reason counter by
    #: name, so new drop reasons surface without a new named field.
    fault_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def completion_rate(self) -> float:
        """Fraction of queries that completed."""
        return self.collector.totals.completed / self.config.num_queries

    @property
    def summary(self) -> SummaryStatistics:
        """Response-time summary of the queries that completed."""
        return self.collector.summary()

    def export_payload(self) -> "ChaosRunPayload":
        """Compact, picklable export of this run (for the scenario runner)."""
        return ChaosRunPayload(
            mode=self.mode,
            config=self.config,
            collector=self.collector.export_payload(),
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            connections_shed=self.connections_shed,
            connections_timed_out=self.connections_timed_out,
            queries_retried=self.queries_retried,
            queries_gave_up=self.queries_gave_up,
            queries_swept=self.queries_swept,
            syn_retransmits=self.syn_retransmits,
            fault_packets_seen=self.fault_packets_seen,
            fault_packets_dropped=self.fault_packets_dropped,
            fault_dropped_loss=self.fault_dropped_loss,
            fault_dropped_burst=self.fault_dropped_burst,
            fault_dropped_corrupted=self.fault_dropped_corrupted,
            fault_dropped_link_down=self.fault_dropped_link_down,
            fault_delayed_jitter=self.fault_delayed_jitter,
            fault_reordered=self.fault_reordered,
            simulated_duration=self.simulated_duration,
            fingerprint=self.fingerprint,
            fault_stats=dict(self.fault_stats),
        )


@dataclass
class ChaosRunPayload:
    """Picklable compact form of a :class:`ChaosRunResult`.

    The fingerprint travels as a string because the compact collector
    payload does not round-trip ``retries``/``gave_up`` — it must be
    computed worker-side, before the pickle boundary.
    """

    mode: str
    config: ChaosConfig
    collector: CollectorPayload
    requests_served: int
    connections_reset: int
    connections_shed: int
    connections_timed_out: int
    queries_retried: int
    queries_gave_up: int
    queries_swept: int
    syn_retransmits: int
    fault_packets_seen: int
    fault_packets_dropped: int
    fault_dropped_loss: int
    fault_dropped_burst: int
    fault_dropped_corrupted: int
    fault_dropped_link_down: int
    fault_delayed_jitter: int
    fault_reordered: int
    simulated_duration: float
    fingerprint: str
    fault_stats: Dict[str, int] = field(default_factory=dict)

    def to_result(self) -> ChaosRunResult:
        """Rebuild the full result object in the parent process."""
        return ChaosRunResult(
            mode=self.mode,
            config=self.config,
            collector=ResponseTimeCollector.from_payload(self.collector),
            requests_served=self.requests_served,
            connections_reset=self.connections_reset,
            connections_shed=self.connections_shed,
            connections_timed_out=self.connections_timed_out,
            queries_retried=self.queries_retried,
            queries_gave_up=self.queries_gave_up,
            queries_swept=self.queries_swept,
            syn_retransmits=self.syn_retransmits,
            fault_packets_seen=self.fault_packets_seen,
            fault_packets_dropped=self.fault_packets_dropped,
            fault_dropped_loss=self.fault_dropped_loss,
            fault_dropped_burst=self.fault_dropped_burst,
            fault_dropped_corrupted=self.fault_dropped_corrupted,
            fault_dropped_link_down=self.fault_dropped_link_down,
            fault_delayed_jitter=self.fault_delayed_jitter,
            fault_reordered=self.fault_reordered,
            simulated_duration=self.simulated_duration,
            fingerprint=self.fingerprint,
            fault_stats=dict(self.fault_stats),
        )


def _build_chaos_platform(config: ChaosConfig, mode: str) -> Testbed:
    """A fresh tier-fronted testbed for one chaos cell's run."""
    return build_testbed(
        config.testbed,
        config.policy,
        catalog=RequestCatalog(),
        run_name=f"chaos-{mode}",
    )


def run_chaos_once(
    config: ChaosConfig,
    mode: str,
    trace: Optional[Trace] = None,
) -> ChaosRunResult:
    """Replay the legitimate workload under one impairment mode."""
    if mode not in config.modes:
        raise ExperimentError(
            f"mode {mode!r} is not in the configuration's modes {config.modes!r}"
        )
    if trace is None:
        trace = make_chaos_trace(config)
    testbed = _build_chaos_platform(config, mode)
    if testbed.lb_tier is None:
        raise ExperimentError("chaos experiments require num_load_balancers >= 2")

    pipeline = install_fault_channel(
        testbed.simulator,
        testbed.fabric,
        fault_config_for(config, mode, trace.duration),
    )
    testbed.fault_pipeline = pipeline
    if testbed.telemetry is not None:
        testbed.telemetry.watch_faults(pipeline)

    duration = testbed.run_trace(trace)

    client = testbed.client
    stats = pipeline.stats
    return ChaosRunResult(
        mode=mode,
        config=config,
        collector=testbed.collector,
        requests_served=testbed.total_requests_served(),
        connections_reset=testbed.total_resets(),
        connections_shed=sum(
            server.app.stats.connections_shed for server in testbed.servers
        ),
        connections_timed_out=sum(
            server.app.stats.connections_timed_out for server in testbed.servers
        ),
        queries_retried=client.queries_retried,
        queries_gave_up=client.queries_gave_up,
        queries_swept=client.queries_swept,
        syn_retransmits=client.syn_retransmits,
        fault_packets_seen=stats.packets_sent,
        fault_packets_dropped=stats.packets_dropped,
        fault_dropped_loss=stats.packets_dropped_loss,
        fault_dropped_burst=stats.packets_dropped_burst,
        fault_dropped_corrupted=stats.packets_dropped_corrupted,
        fault_dropped_link_down=stats.packets_dropped_link_down,
        fault_delayed_jitter=stats.packets_delayed_jitter,
        fault_reordered=stats.packets_reordered,
        simulated_duration=duration,
        fingerprint=outcome_fingerprint(testbed.collector),
        fault_stats=stats.snapshot(),
    )


@dataclass
class ChaosComparison:
    """All impairment modes of one comparison, over the same workload."""

    config: ChaosConfig
    runs: Dict[str, ChaosRunResult] = field(default_factory=dict)

    def modes(self) -> List[str]:
        """Mode names, in configuration order."""
        return list(self.config.modes)

    def run(self, mode: str) -> ChaosRunResult:
        """The run for one impairment mode."""
        try:
            return self.runs[mode]
        except KeyError as exc:
            raise ExperimentError(f"no run for mode {mode!r}") from exc


class ChaosScenario(ScenarioSpec):
    """The fault-injection comparison as a declarative scenario."""

    name = "chaos"
    title = "Query recovery under packet loss, link flaps and jitter"

    def default_config(self) -> ChaosConfig:
        return ChaosConfig()

    def smoke_config(self) -> ChaosConfig:
        return ChaosConfig(
            testbed=TestbedConfig(
                num_servers=4,
                workers_per_server=8,
                cores_per_server=2,
                backlog_capacity=16,
                num_load_balancers=2,
                flow_idle_timeout=5.0,
                request_timeout=2.0,
                syn_retransmit_timeout=0.2,
                syn_retransmit_cap=2.0,
                syn_retransmit_limit=4,
                retry_timeout=1.5,
                max_retries=3,
                backlog_shed_watermark=14,
            ),
            num_queries=600,
        )

    def cells(self, config: ChaosConfig) -> List[ScenarioCell]:
        return [
            ScenarioCell(key=mode, params={"mode": mode})
            for mode in config.modes
        ]

    # trace_key: the default (one shared trace for every mode).

    def make_trace(self, config: ChaosConfig, cell: ScenarioCell) -> Trace:
        return make_chaos_trace(config)

    def build_platform(self, config: ChaosConfig, cell: ScenarioCell) -> Testbed:
        return _build_chaos_platform(config, cell.param("mode"))

    def run_once(
        self, config: ChaosConfig, cell: ScenarioCell, trace: Trace
    ) -> ChaosRunPayload:
        return run_chaos_once(config, cell.param("mode"), trace=trace).export_payload()

    def aggregate(
        self,
        config: ChaosConfig,
        cells: Sequence[ScenarioCell],
        payloads: Sequence[ChaosRunPayload],
        trace_for: TraceProvider,
    ) -> ChaosComparison:
        comparison = ChaosComparison(config=config)
        for payload in payloads:
            comparison.runs[payload.mode] = payload.to_result()
        return comparison

    def render(self, result: ChaosComparison) -> str:
        return render_chaos_table(result)


#: The registered spec instance (also reachable via ``registry.get``).
CHAOS_SCENARIO = registry.register(ChaosScenario())


def run_chaos(config: ChaosConfig, jobs: Optional[int] = 1) -> ChaosComparison:
    """Replay the workload under every configured impairment mode.

    ``jobs`` fans the per-mode runs out over a process pool
    (``None``/``0`` = all cores); results are identical for any value —
    see :mod:`repro.experiments.runner` for the determinism contract.
    """
    return run_scenario(CHAOS_SCENARIO, config, jobs=jobs)


def render_chaos_table(comparison: ChaosComparison) -> str:
    """Text table of the per-mode chaos comparison."""
    config = comparison.config
    rows: List[List[object]] = []
    for mode in comparison.modes():
        run = comparison.run(mode)
        rows.append(
            [
                mode,
                f"{100 * run.completion_rate:.1f}%",
                run.collector.totals.failed,
                run.queries_retried,
                run.queries_gave_up,
                run.syn_retransmits,
                run.summary.p99,
                run.fault_packets_dropped,
                run.fault_delayed_jitter + run.fault_reordered,
                run.connections_shed,
            ]
        )
    return format_table(
        [
            "mode",
            "done",
            "failed",
            "retried",
            "gave up",
            "SYN rtx",
            "p99 (s)",
            "net drops",
            "net delays",
            "sheds",
        ],
        rows,
        title=(
            f"Chaos: {config.testbed.num_load_balancers} LBs, "
            f"{config.testbed.num_servers} servers, rho={config.load_factor:g}, "
            f"loss={config.loss_rate:g}, flaps={config.flap_count} x "
            f"{config.flap_down:g}s, jitter mean={config.jitter_mean:g}s"
        ),
    )
