"""Declarative scenario framework: one experiment pipeline, many families.

The paper's evaluation — and every workload family grown on top of it —
is structurally the same experiment: *build a trace, replay it against a
fresh testbed per cell, collect response-time/load metrics, aggregate
into figures*.  This module captures that pipeline once, so a scenario
family is a small declarative spec instead of ~300 lines of bespoke
sweep plumbing.

A family subclasses :class:`ScenarioSpec` and provides:

* ``cells(config, **options)`` — the grid of independent runs, each a
  picklable :class:`ScenarioCell` (e.g. one per (policy, load factor));
* ``make_trace(config, cell)`` — the deterministic workload trace of a
  cell (cells may share a trace, see :meth:`ScenarioSpec.trace_key`);
* ``build_platform(config, cell)`` — a fresh simulated testbed;
* ``run_once(config, cell, trace)`` — replay the trace on the platform
  and return a compact, picklable payload;
* ``aggregate(config, cells, payloads, trace_for)`` — fold the payloads
  into the family's result object (often a :class:`ScenarioResult`).

:func:`run_scenario` is the single driver: it resolves the spec (by name
through :mod:`repro.experiments.registry`), enumerates the cells, and
fans them out through :class:`~repro.experiments.runner.SweepRunner`.
``jobs=`` dispatch lives *here and only here* — the per-family entry
points (``PoissonSweep.run``, ``WikipediaReplay.run``,
``run_resilience_comparison``, and every new family's CLI sub-command)
are thin shims over this function.

Determinism contract
--------------------
The framework inherits the runner's contract: ``jobs`` never changes
results.  A serial run shares each trace across the cells that declare
the same :meth:`~ScenarioSpec.trace_key`; a parallel run regenerates the
trace inside the worker from ``(config, cell)`` — which must be (and for
every built-in family is) bit-for-bit the same trace.  An explicit
``trace=`` handed to :func:`run_scenario` is shipped to the workers
verbatim instead.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.errors import ExperimentError
from repro.experiments.runner import SweepRunner
from repro.workload.trace import Trace


@dataclass(frozen=True)
class ScenarioCell:
    """One independent run of a scenario.

    ``key`` identifies the cell inside its family's result (e.g.
    ``("SR4", 0.75)`` for a Poisson sweep cell, ``"consistent-hash"``
    for a resilience cell); ``params`` carries whatever the spec's
    ``make_trace``/``run_once`` need to execute the cell.  Both must be
    picklable — cells cross the process boundary when ``jobs > 1``.
    """

    key: Any
    params: Mapping[str, Any] = field(default_factory=dict)

    def param(self, name: str) -> Any:
        """A required parameter of the cell (loud when missing)."""
        try:
            return self.params[name]
        except KeyError as exc:
            raise ExperimentError(
                f"scenario cell {self.key!r} has no parameter {name!r}"
            ) from exc


#: ``aggregate`` receives this callable to obtain the parent-side trace
#: of a cell on demand (cached per trace key, generated lazily so a
#: parallel run does not regenerate traces it never reads).
TraceProvider = Callable[[ScenarioCell], Trace]


@dataclass
class ScenarioResult:
    """Generic aggregate of a scenario run: one entry per cell key.

    Families with bespoke result classes (the three paper families keep
    theirs for API stability) aggregate into those instead; new families
    can use this container directly and hang scenario-wide figures off
    ``meta``.
    """

    scenario: str
    config: Any
    runs: Dict[Any, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def run(self, key: Any) -> Any:
        """The run recorded under ``key``."""
        try:
            return self.runs[key]
        except KeyError as exc:
            raise ExperimentError(
                f"scenario {self.scenario!r} has no run for key {key!r}"
            ) from exc

    def keys(self) -> List[Any]:
        """Cell keys, in execution order."""
        return list(self.runs)


class ScenarioSpec(ABC):
    """Declarative description of one experiment family.

    Subclasses set :attr:`name` (the registry key, also the CLI-facing
    identifier) and :attr:`title`, implement the abstract pipeline
    methods, and register themselves via
    :func:`repro.experiments.registry.register`.
    """

    #: Registry key; stable, CLI-facing (e.g. ``"flash-crowd"``).
    name: str = ""
    #: One-line human description shown by ``srlb-repro scenarios``.
    title: str = ""

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @abstractmethod
    def default_config(self) -> Any:
        """The family's paper-faithful default configuration."""

    @abstractmethod
    def smoke_config(self) -> Any:
        """A deliberately tiny configuration for tests and smoke runs."""

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------
    @abstractmethod
    def cells(self, config: Any, **options: Any) -> List[ScenarioCell]:
        """The grid of independent runs described by ``config``.

        ``options`` are family-specific run-time switches (e.g. the
        Poisson sweep's ``sample_load``); they must round-trip into the
        cells' ``params`` because workers only see the cells.
        """

    @abstractmethod
    def make_trace(self, config: Any, cell: ScenarioCell) -> Trace:
        """The cell's workload trace.

        Must be a pure, deterministic function of ``(config, cell)`` —
        pool workers regenerate the trace from exactly these arguments,
        and the determinism contract requires both paths to agree.
        """

    def trace_key(self, config: Any, cell: ScenarioCell) -> Hashable:
        """Cells with equal trace keys share one trace in a serial run.

        The default (a single shared key) matches families that replay
        one trace under every cell; the Poisson sweep keys by load
        factor instead.
        """
        return None

    @abstractmethod
    def build_platform(self, config: Any, cell: ScenarioCell) -> Any:
        """A fresh simulated testbed for one cell."""

    @abstractmethod
    def run_once(self, config: Any, cell: ScenarioCell, trace: Trace) -> Any:
        """Replay ``trace`` for one cell and return a picklable payload."""

    @abstractmethod
    def aggregate(
        self,
        config: Any,
        cells: Sequence[ScenarioCell],
        payloads: Sequence[Any],
        trace_for: TraceProvider,
    ) -> Any:
        """Fold per-cell payloads (in cell order) into the family result."""

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def render(self, result: Any) -> str:
        """The family's headline figure, as a text table."""
        raise ExperimentError(f"scenario {self.name!r} defines no figure")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass(frozen=True)
class ScenarioTask:
    """Picklable description of one cell's run, shipped to pool workers.

    Only the scenario *name* crosses the boundary; the worker re-resolves
    the spec through the registry (built-in families are imported on
    demand, so this works under any multiprocessing start method).
    """

    scenario: str
    config: Any
    cell: ScenarioCell
    trace: Optional[Trace] = None


@dataclass(frozen=True)
class _CellOutcome:
    """Worker return wrapper carrying the telemetry published by a cell.

    Only used when telemetry is enabled (the wrapper itself must not
    perturb the telemetry-off pickle traffic).  ``telemetry`` is the
    worker-side publish buffer drained right after ``run_once`` — a
    tuple of ``(run_name, TelemetryPayload)`` pairs.
    """

    payload: Any
    telemetry: Sequence[Any] = ()


def _run_scenario_cell(task: ScenarioTask) -> Any:
    """Pool worker: resolve the spec, rebuild the trace, run one cell."""
    from repro.experiments import registry
    from repro.telemetry import runtime as telemetry_runtime

    spec = registry.get(task.scenario)
    trace = (
        task.trace
        if task.trace is not None
        else spec.make_trace(task.config, task.cell)
    )
    payload = spec.run_once(task.config, task.cell, trace)
    if telemetry_runtime.telemetry_enabled():
        return _CellOutcome(payload, tuple(telemetry_runtime.drain()))
    return payload


def run_scenario(
    scenario: Union[str, ScenarioSpec],
    config: Any = None,
    jobs: Optional[int] = 1,
    trace: Optional[Trace] = None,
    **options: Any,
) -> Any:
    """Run a scenario end to end and return its aggregated result.

    Parameters
    ----------
    scenario:
        A registered scenario name or a :class:`ScenarioSpec` instance.
    config:
        The family's configuration; ``None`` uses its default.
    jobs:
        Worker processes for the independent cells (``1`` = in-process,
        ``None``/``0`` = all cores).  Results are identical for any
        value — see :mod:`repro.experiments.runner`.
    trace:
        Optional explicit workload trace replayed by *every* cell
        (shipped to workers verbatim); ``None`` lets the spec generate
        per-cell traces.
    options:
        Family-specific switches forwarded to
        :meth:`ScenarioSpec.cells`.
    """
    from repro.experiments import registry

    spec = scenario if isinstance(scenario, ScenarioSpec) else registry.get(scenario)
    if config is None:
        config = spec.default_config()
    cells = list(spec.cells(config, **options))
    if not cells:
        raise ExperimentError(f"scenario {spec.name!r} produced no cells to run")

    trace_cache: Dict[Hashable, Trace] = {}

    def trace_for(cell: ScenarioCell) -> Trace:
        key = spec.trace_key(config, cell)
        if key not in trace_cache:
            trace_cache[key] = (
                trace if trace is not None else spec.make_trace(config, cell)
            )
        return trace_cache[key]

    from repro.telemetry import runtime as telemetry_runtime

    telemetry_on = telemetry_runtime.telemetry_enabled()
    report = telemetry_runtime.TelemetryReport() if telemetry_on else None

    runner = SweepRunner(jobs=jobs)
    if runner.serial:
        payloads = []
        for cell in cells:
            payloads.append(spec.run_once(config, cell, trace_for(cell)))
            if report is not None:
                report.add(cell.key, telemetry_runtime.drain())
    else:
        tasks = [
            ScenarioTask(scenario=spec.name, config=config, cell=cell, trace=trace)
            for cell in cells
        ]
        outcomes = runner.map(_run_scenario_cell, tasks)
        if telemetry_on:
            payloads = []
            for cell, outcome in zip(cells, outcomes):
                if isinstance(outcome, _CellOutcome):
                    payloads.append(outcome.payload)
                    if report is not None:
                        report.add(cell.key, list(outcome.telemetry))
                else:  # pragma: no cover - worker raced the env flag off
                    payloads.append(outcome)
        else:
            payloads = outcomes
    if report is not None:
        telemetry_runtime.set_last_report(report)
    return spec.aggregate(config, cells, payloads, trace_for)
